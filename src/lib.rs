//! Umbrella crate for the ScaleDeep reproduction: re-exports the workspace
//! crates so examples and integration tests can use one import root.
pub use scaledeep as core;
pub use scaledeep_arch as arch;
pub use scaledeep_baselines as baselines;
pub use scaledeep_compiler as compiler;
pub use scaledeep_dnn as dnn;
pub use scaledeep_isa as isa;
pub use scaledeep_sim as sim;
pub use scaledeep_tensor as tensor;
