//! The ScaleDeep compiler front-end (paper §4, Figure 13).
//!
//! Takes a [`scaledeep_dnn::Network`] and a [`scaledeep_arch::NodeConfig`]
//! and produces:
//!
//! * a [`Mapping`] — the result of the workload-mapping phase
//!   (STEP 1–6 of Figure 13): layer → chip-column allocation, network-state
//!   partitioning across MemHeavy tiles, CompHeavy array configuration, and
//!   weight-residency decisions; and
//! * compiled [`scaledeep_isa::Program`]s for the FP/BP/WG CompHeavy tiles
//!   of each allocated column (the code-generation phase), instantiated
//!   from parameterized templates per layer type.
//!
//! The mapping feeds the performance simulator; the programs feed the
//! functional ISA simulator.
//!
//! # Example
//!
//! ```
//! use scaledeep_arch::presets;
//! use scaledeep_compiler::Compiler;
//! use scaledeep_dnn::zoo;
//!
//! # fn main() -> Result<(), scaledeep_compiler::Error> {
//! let net = zoo::alexnet();
//! let node = presets::single_precision();
//! let mapping = Compiler::new(&node).map(&net)?;
//! assert!(mapping.conv_cols_used() > 0);
//! assert!(mapping.chips_spanned() >= 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact_io;
pub mod codegen;
mod error;
mod mapping;
pub mod pipeline;
mod report;

pub use error::{Error, Result};
pub use mapping::{
    ArrayPlan, Compiler, FailedTiles, LayerPlan, Mapping, Placement, Side, StateBudget, TileCoord,
};
pub use pipeline::{CompileOptions, CompiledArtifact, Provenance};
pub use report::{MappingReport, UtilizationWaterfall};
