//! Disk serialization for [`CompiledArtifact`] — the artifact cache's
//! storage layer.
//!
//! A compiled artifact is fully determined by its provenance (network +
//! node fingerprints, options), so a session that finds a stored artifact
//! with matching provenance can skip the entire pipeline. This module
//! round-trips every field **exactly**:
//!
//! * `u64` values (fingerprints, FLOP and byte counts) are stored as
//!   decimal *strings* — the zero-dependency JSON layer models numbers as
//!   `f64`, which cannot represent all of `u64`.
//! * `f64` utilization factors are stored as decimal strings of their IEEE
//!   bit pattern ([`f64::to_bits`]) so reload is bit-identical.
//! * Programs are stored as hex of their canonical [`Program::encode`]
//!   wire form, which already round-trips all 28 instruction forms.
//! * The lower phase's micro-op streams are **not** stored: lowering is a
//!   pure function of the programs, so [`load`] re-derives them with
//!   [`scaledeep_isa::micro::lower`] — cheaper than parsing them and
//!   immune to drift between the stored stream and the lowering rules.
//!
//! Everything else (`u32`/`u16`/`usize` fields) fits `f64` exactly and is
//! stored as a plain JSON number.

use crate::codegen::{BufferLoc, CompiledNetwork, FuncTargetOptions, LayerBuffers, TrackerSpec};
use crate::mapping::{ArrayPlan, FailedTiles, LayerPlan, Mapping, Placement};
use crate::pipeline::{CompiledArtifact, Provenance};
use crate::{Error, Result};
use scaledeep_arch::{DesignPoint, Precision};
use scaledeep_dnn::LayerId;
use scaledeep_isa::Program;
use scaledeep_trace::json::{self, obj, Json};
use std::path::Path;

/// On-disk format version. Bumped on any schema change; [`load`] rejects
/// files written by other versions rather than guessing.
///
/// * v1 — initial format.
/// * v2 — provenance carries the full node configuration as a structural
///   `design` document; `node_fingerprint` is the FNV-1a hash of that
///   document's canonical rendering and is re-derived (and checked) on
///   load.
pub const ARTIFACT_FORMAT_VERSION: u32 = 2;

/// Serializes an artifact to its JSON document form.
pub fn to_json(artifact: &CompiledArtifact) -> Json {
    let functional = match artifact.functional() {
        Ok(net) => obj([("ok", network_to_json(net))]),
        Err(e) => obj([("err", error_to_json(&e))]),
    };
    obj([
        ("format_version", num(ARTIFACT_FORMAT_VERSION as usize)),
        ("provenance", provenance_to_json(artifact.provenance())),
        ("mapping", mapping_to_json(artifact.mapping())),
        ("functional", functional),
    ])
}

/// Deserializes an artifact from its JSON document form, re-deriving the
/// lowered micro-op streams.
///
/// # Errors
///
/// Returns [`Error::Codegen`] on a malformed document or a format-version
/// mismatch.
pub fn from_json(doc: &Json) -> Result<CompiledArtifact> {
    let version = get_usize(doc, "format_version")?;
    if version != ARTIFACT_FORMAT_VERSION as usize {
        return Err(bad(format!(
            "artifact format version {version} (this build reads {ARTIFACT_FORMAT_VERSION})"
        )));
    }
    let provenance = provenance_from_json(field(doc, "provenance")?)?;
    let mapping = mapping_from_json(field(doc, "mapping")?)?;
    let f = field(doc, "functional")?;
    let functional = if let Some(ok) = f.get("ok") {
        Ok(network_from_json(ok)?)
    } else if let Some(err) = f.get("err") {
        Err(error_from_json(err)?)
    } else {
        return Err(bad("`functional` has neither `ok` nor `err`".into()));
    };
    let lowered = functional.as_ref().ok().map(|net: &CompiledNetwork| {
        net.programs
            .iter()
            .map(scaledeep_isa::micro::lower)
            .collect()
    });
    Ok(CompiledArtifact::from_parts(
        mapping, functional, lowered, provenance,
    ))
}

/// Writes an artifact to `path` as pretty-printed JSON, atomically: the
/// document lands in a process-unique sibling temp file first and is
/// renamed into place, so a concurrent reader (or a crash mid-write)
/// never observes a torn half-document at `path` — it sees either the
/// old artifact or the new one.
///
/// # Errors
///
/// Returns [`Error::Codegen`] describing any I/O failure; the temp file
/// is removed on a failed rename.
pub fn save(artifact: &CompiledArtifact, path: &Path) -> Result<()> {
    static WRITE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let text = to_json(artifact).render_pretty();
    // Unique per process *and* per call, so two threads publishing the
    // same key never race on one temp file.
    let seq = WRITE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let tmp = path.with_extension(format!("tmp.{}.{seq}", std::process::id()));
    std::fs::write(&tmp, text)
        .map_err(|e| bad(format!("writing artifact {}: {e}", tmp.display())))?;
    std::fs::rename(&tmp, path).map_err(|e| {
        std::fs::remove_file(&tmp).ok();
        bad(format!(
            "publishing artifact {} -> {}: {e}",
            tmp.display(),
            path.display()
        ))
    })
}

/// Reads an artifact previously written by [`save`].
///
/// # Errors
///
/// Returns [`Error::Codegen`] on I/O failure, malformed JSON, or a
/// format-version mismatch.
pub fn load(path: &Path) -> Result<CompiledArtifact> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| bad(format!("reading artifact {}: {e}", path.display())))?;
    let doc =
        json::parse(&text).map_err(|e| bad(format!("parsing artifact {}: {e}", path.display())))?;
    from_json(&doc)
}

// ---------------------------------------------------------------- helpers

fn bad(detail: String) -> Error {
    Error::Codegen {
        detail: format!("artifact: {detail}"),
    }
}

fn num(v: usize) -> Json {
    Json::Num(v as f64)
}

fn u64s(v: u64) -> Json {
    Json::Str(v.to_string())
}

fn f64s(v: f64) -> Json {
    Json::Str(v.to_bits().to_string())
}

fn field<'j>(j: &'j Json, key: &str) -> Result<&'j Json> {
    j.get(key).ok_or_else(|| bad(format!("missing `{key}`")))
}

fn get_usize(j: &Json, key: &str) -> Result<usize> {
    let n = field(j, key)?
        .as_num()
        .ok_or_else(|| bad(format!("`{key}` is not a number")))?;
    if n.fract() != 0.0 || !(0.0..9.007_199_254_740_992e15).contains(&n) {
        return Err(bad(format!("`{key}` = {n} is not a valid index")));
    }
    Ok(n as usize)
}

fn get_u32(j: &Json, key: &str) -> Result<u32> {
    u32::try_from(get_usize(j, key)?).map_err(|_| bad(format!("`{key}` exceeds u32")))
}

fn get_u16(j: &Json, key: &str) -> Result<u16> {
    u16::try_from(get_usize(j, key)?).map_err(|_| bad(format!("`{key}` exceeds u16")))
}

fn get_str<'j>(j: &'j Json, key: &str) -> Result<&'j str> {
    field(j, key)?
        .as_str()
        .ok_or_else(|| bad(format!("`{key}` is not a string")))
}

fn get_bool(j: &Json, key: &str) -> Result<bool> {
    match field(j, key)? {
        Json::Bool(b) => Ok(*b),
        _ => Err(bad(format!("`{key}` is not a bool"))),
    }
}

fn get_u64(j: &Json, key: &str) -> Result<u64> {
    get_str(j, key)?
        .parse()
        .map_err(|_| bad(format!("`{key}` is not a decimal u64")))
}

fn get_f64_bits(j: &Json, key: &str) -> Result<f64> {
    Ok(f64::from_bits(get_u64(j, key)?))
}

fn get_arr<'j>(j: &'j Json, key: &str) -> Result<&'j [Json]> {
    field(j, key)?
        .as_arr()
        .ok_or_else(|| bad(format!("`{key}` is not an array")))
}

fn usize_arr(j: &Json, key: &str) -> Result<Vec<usize>> {
    get_arr(j, key)?
        .iter()
        .map(|v| {
            let n = v
                .as_num()
                .ok_or_else(|| bad(format!("`{key}` holds a non-number")))?;
            Ok(n as usize)
        })
        .collect()
}

fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

fn hex_decode(s: &str) -> Result<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return Err(bad("odd-length hex program".into()));
    }
    (0..s.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(&s[i..i + 2], 16).map_err(|_| bad("non-hex program byte".into()))
        })
        .collect()
}

// ------------------------------------------------------------- provenance

fn provenance_to_json(p: &Provenance) -> Json {
    obj([
        ("network", Json::Str(p.network.clone())),
        ("net_fingerprint", u64s(p.net_fingerprint)),
        ("node_fingerprint", u64s(p.node_fingerprint)),
        ("design", p.design.to_json()),
        (
            "precision",
            Json::Str(
                match p.precision {
                    Precision::Single => "single",
                    Precision::Half => "half",
                }
                .into(),
            ),
        ),
        (
            "failed_cols",
            Json::Arr(p.failed.columns().map(num).collect()),
        ),
        (
            "failed_func_tiles",
            Json::Arr(p.failed.func_tiles().map(|t| num(t as usize)).collect()),
        ),
        ("func_mem_tiles", num(p.func.mem_tiles)),
        (
            "func_tile_capacity_elems",
            num(p.func.tile_capacity_elems as usize),
        ),
        ("minibatch", num(p.minibatch)),
    ])
}

fn provenance_from_json(j: &Json) -> Result<Provenance> {
    let precision = match get_str(j, "precision")? {
        "single" => Precision::Single,
        "half" => Precision::Half,
        other => return Err(bad(format!("unknown precision `{other}`"))),
    };
    let cols = usize_arr(j, "failed_cols")?;
    let tiles: Vec<u16> = get_arr(j, "failed_func_tiles")?
        .iter()
        .map(|v| {
            let n = v
                .as_num()
                .ok_or_else(|| bad("`failed_func_tiles` holds a non-number".into()))?;
            u16::try_from(n as u64).map_err(|_| bad("failed func tile exceeds u16".into()))
        })
        .collect::<Result<_>>()?;
    let design = DesignPoint::from_json(field(j, "design")?)
        .map_err(|e| bad(format!("provenance design: {e}")))?;
    let node_fingerprint = get_u64(j, "node_fingerprint")?;
    // The fingerprint is derivable from the design document; a stored
    // value that disagrees means the file was edited or corrupted, and
    // trusting it would poison every cache keyed on it.
    if design.fingerprint() != node_fingerprint {
        return Err(bad(format!(
            "stored node_fingerprint {node_fingerprint:016x} does not match \
             the design document ({:016x})",
            design.fingerprint()
        )));
    }
    Ok(Provenance {
        network: get_str(j, "network")?.to_string(),
        net_fingerprint: get_u64(j, "net_fingerprint")?,
        node_fingerprint,
        design,
        precision,
        failed: FailedTiles::from_sets(cols, tiles),
        func: FuncTargetOptions {
            mem_tiles: get_usize(j, "func_mem_tiles")?,
            tile_capacity_elems: get_u32(j, "func_tile_capacity_elems")?,
        },
        minibatch: get_usize(j, "minibatch")?,
    })
}

// ---------------------------------------------------------------- mapping

fn placement_to_json(p: Placement) -> Json {
    match p {
        Placement::Conv { first_col, cols } => obj([
            ("kind", Json::Str("conv".into())),
            ("first_col", num(first_col)),
            ("cols", num(cols)),
        ]),
        Placement::Fc { first_col, cols } => obj([
            ("kind", Json::Str("fc".into())),
            ("first_col", num(first_col)),
            ("cols", num(cols)),
        ]),
        Placement::Inline => obj([("kind", Json::Str("inline".into()))]),
    }
}

fn placement_from_json(j: &Json) -> Result<Placement> {
    match get_str(j, "kind")? {
        "conv" => Ok(Placement::Conv {
            first_col: get_usize(j, "first_col")?,
            cols: get_usize(j, "cols")?,
        }),
        "fc" => Ok(Placement::Fc {
            first_col: get_usize(j, "first_col")?,
            cols: get_usize(j, "cols")?,
        }),
        "inline" => Ok(Placement::Inline),
        other => Err(bad(format!("unknown placement `{other}`"))),
    }
}

fn array_to_json(a: &ArrayPlan) -> Json {
    obj([
        ("cols", num(a.cols)),
        ("lanes", num(a.lanes)),
        ("row_split", Json::Bool(a.row_split)),
        ("util_rows", f64s(a.util_rows)),
        ("util_kernel", f64s(a.util_kernel)),
        ("util_lanes", f64s(a.util_lanes)),
        ("batches_per_image", num(a.batches_per_image)),
        ("streaming_fits", Json::Bool(a.streaming_fits)),
    ])
}

fn array_from_json(j: &Json) -> Result<ArrayPlan> {
    Ok(ArrayPlan {
        cols: get_usize(j, "cols")?,
        lanes: get_usize(j, "lanes")?,
        row_split: get_bool(j, "row_split")?,
        util_rows: get_f64_bits(j, "util_rows")?,
        util_kernel: get_f64_bits(j, "util_kernel")?,
        util_lanes: get_f64_bits(j, "util_lanes")?,
        batches_per_image: get_usize(j, "batches_per_image")?,
        streaming_fits: get_bool(j, "streaming_fits")?,
    })
}

fn u64_triple(j: &Json, key: &str) -> Result<[u64; 3]> {
    let arr = get_arr(j, key)?;
    if arr.len() != 3 {
        return Err(bad(format!("`{key}` is not a 3-array")));
    }
    let mut out = [0u64; 3];
    for (o, v) in out.iter_mut().zip(arr) {
        *o = v
            .as_str()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad(format!("`{key}` holds a non-u64-string")))?;
    }
    Ok(out)
}

fn plan_to_json(p: &LayerPlan) -> Json {
    obj([
        ("id", num(p.id.index())),
        ("name", Json::Str(p.name.clone())),
        ("placement", placement_to_json(p.placement)),
        (
            "comp_flops",
            Json::Arr(p.comp_flops.iter().map(|&f| u64s(f)).collect()),
        ),
        (
            "mem_flops",
            Json::Arr(p.mem_flops.iter().map(|&f| u64s(f)).collect()),
        ),
        ("state_bytes", u64s(p.state_bytes)),
        ("weight_bytes", u64s(p.weight_bytes)),
        ("weights_on_chip", Json::Bool(p.weights_on_chip)),
        ("tiles_total", num(p.tiles_total)),
        ("tiles_used", num(p.tiles_used)),
        ("out_features", num(p.out_features)),
        ("feature_elems", num(p.feature_elems)),
        ("in_bytes", u64s(p.in_bytes)),
        ("out_bytes", u64s(p.out_bytes)),
        ("array", array_to_json(&p.array)),
        ("conv_kernel", p.conv_kernel.map_or(Json::Null, num)),
    ])
}

fn plan_from_json(j: &Json) -> Result<LayerPlan> {
    let conv_kernel = match field(j, "conv_kernel")? {
        Json::Null => None,
        v => Some(
            v.as_num()
                .ok_or_else(|| bad("`conv_kernel` is not a number".into()))? as usize,
        ),
    };
    Ok(LayerPlan {
        id: LayerId::from_index(get_usize(j, "id")?),
        name: get_str(j, "name")?.to_string(),
        placement: placement_from_json(field(j, "placement")?)?,
        comp_flops: u64_triple(j, "comp_flops")?,
        mem_flops: u64_triple(j, "mem_flops")?,
        state_bytes: get_u64(j, "state_bytes")?,
        weight_bytes: get_u64(j, "weight_bytes")?,
        weights_on_chip: get_bool(j, "weights_on_chip")?,
        tiles_total: get_usize(j, "tiles_total")?,
        tiles_used: get_usize(j, "tiles_used")?,
        out_features: get_usize(j, "out_features")?,
        feature_elems: get_usize(j, "feature_elems")?,
        in_bytes: get_u64(j, "in_bytes")?,
        out_bytes: get_u64(j, "out_bytes")?,
        array: array_from_json(field(j, "array")?)?,
        conv_kernel,
    })
}

fn mapping_to_json(m: &Mapping) -> Json {
    obj([
        ("net_name", Json::Str(m.net_name.clone())),
        (
            "plans",
            Json::Arr(m.plans.iter().map(plan_to_json).collect()),
        ),
        ("conv_cols_used", num(m.conv_cols_used)),
        ("fc_cols_used", num(m.fc_cols_used)),
        ("chips_spanned", num(m.chips_spanned)),
        ("clusters_spanned", num(m.clusters_spanned)),
        ("conv_cols_per_chip", num(m.conv_cols_per_chip)),
        ("wheel_batch", num(m.wheel_batch)),
        ("elem_bytes", u64s(m.elem_bytes)),
        (
            "col_map",
            Json::Arr(m.col_map.iter().map(|&c| num(c)).collect()),
        ),
        (
            "failed_cols",
            Json::Arr(m.failed_cols.iter().map(|&c| num(c)).collect()),
        ),
    ])
}

fn mapping_from_json(j: &Json) -> Result<Mapping> {
    Ok(Mapping {
        net_name: get_str(j, "net_name")?.to_string(),
        plans: get_arr(j, "plans")?
            .iter()
            .map(plan_from_json)
            .collect::<Result<_>>()?,
        conv_cols_used: get_usize(j, "conv_cols_used")?,
        fc_cols_used: get_usize(j, "fc_cols_used")?,
        chips_spanned: get_usize(j, "chips_spanned")?,
        clusters_spanned: get_usize(j, "clusters_spanned")?,
        conv_cols_per_chip: get_usize(j, "conv_cols_per_chip")?,
        wheel_batch: get_usize(j, "wheel_batch")?,
        elem_bytes: get_u64(j, "elem_bytes")?,
        col_map: usize_arr(j, "col_map")?,
        failed_cols: usize_arr(j, "failed_cols")?,
    })
}

// ------------------------------------------------------------- functional

fn loc_to_json(l: &BufferLoc) -> Json {
    obj([
        ("tile", num(l.tile as usize)),
        ("offset", num(l.offset as usize)),
        ("len", num(l.len as usize)),
    ])
}

fn loc_from_json(j: &Json) -> Result<BufferLoc> {
    Ok(BufferLoc {
        tile: get_u16(j, "tile")?,
        offset: get_u32(j, "offset")?,
        len: get_u32(j, "len")?,
    })
}

fn opt_loc_to_json(l: &Option<BufferLoc>) -> Json {
    l.as_ref().map_or(Json::Null, loc_to_json)
}

fn opt_loc_from_json(j: &Json) -> Result<Option<BufferLoc>> {
    match j {
        Json::Null => Ok(None),
        v => Ok(Some(loc_from_json(v)?)),
    }
}

fn buffers_to_json(b: &LayerBuffers) -> Json {
    obj([
        ("output", opt_loc_to_json(&b.output)),
        ("pre", opt_loc_to_json(&b.pre)),
        ("err", opt_loc_to_json(&b.err)),
        ("dz", opt_loc_to_json(&b.dz)),
        ("weights", opt_loc_to_json(&b.weights)),
        ("weights_t", opt_loc_to_json(&b.weights_t)),
        ("wgrad", opt_loc_to_json(&b.wgrad)),
        ("golden", opt_loc_to_json(&b.golden)),
    ])
}

fn buffers_from_json(j: &Json) -> Result<LayerBuffers> {
    Ok(LayerBuffers {
        output: opt_loc_from_json(field(j, "output")?)?,
        pre: opt_loc_from_json(field(j, "pre")?)?,
        err: opt_loc_from_json(field(j, "err")?)?,
        dz: opt_loc_from_json(field(j, "dz")?)?,
        weights: opt_loc_from_json(field(j, "weights")?)?,
        weights_t: opt_loc_from_json(field(j, "weights_t")?)?,
        wgrad: opt_loc_from_json(field(j, "wgrad")?)?,
        golden: opt_loc_from_json(field(j, "golden")?)?,
    })
}

fn network_to_json(net: &CompiledNetwork) -> Json {
    obj([
        ("net_name", Json::Str(net.net_name.clone())),
        (
            "buffers",
            Json::Arr(net.buffers.iter().map(buffers_to_json).collect()),
        ),
        (
            "programs",
            Json::Arr(
                net.programs
                    .iter()
                    .map(|p| {
                        obj([
                            ("name", Json::Str(p.name().to_string())),
                            ("hex", Json::Str(hex_encode(&p.encode()))),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "trackers",
            Json::Arr(
                net.trackers
                    .iter()
                    .map(|t| {
                        obj([
                            ("tile", num(t.tile as usize)),
                            ("addr", num(t.addr as usize)),
                            ("len", num(t.len as usize)),
                            ("num_updates", num(t.num_updates as usize)),
                            ("num_reads", num(t.num_reads as usize)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("mem_tiles", num(net.mem_tiles)),
        ("const_neg_one", loc_to_json(&net.const_neg_one)),
        ("dropped_biases", num(net.dropped_biases)),
        ("minibatch", num(net.minibatch)),
        ("zeros", opt_loc_to_json(&net.zeros)),
    ])
}

fn network_from_json(j: &Json) -> Result<CompiledNetwork> {
    let programs = get_arr(j, "programs")?
        .iter()
        .map(|p| {
            let name = get_str(p, "name")?;
            let bytes = hex_decode(get_str(p, "hex")?)?;
            Program::decode(name, &bytes)
                .map_err(|e| bad(format!("decoding program `{name}`: {e}")))
        })
        .collect::<Result<Vec<_>>>()?;
    let trackers = get_arr(j, "trackers")?
        .iter()
        .map(|t| {
            Ok(TrackerSpec {
                tile: get_u16(t, "tile")?,
                addr: get_u32(t, "addr")?,
                len: get_u32(t, "len")?,
                num_updates: get_u16(t, "num_updates")?,
                num_reads: get_u16(t, "num_reads")?,
            })
        })
        .collect::<Result<Vec<_>>>()?;
    Ok(CompiledNetwork {
        net_name: get_str(j, "net_name")?.to_string(),
        buffers: get_arr(j, "buffers")?
            .iter()
            .map(buffers_from_json)
            .collect::<Result<_>>()?,
        programs,
        trackers,
        mem_tiles: get_usize(j, "mem_tiles")?,
        const_neg_one: loc_from_json(field(j, "const_neg_one")?)?,
        dropped_biases: get_usize(j, "dropped_biases")?,
        minibatch: get_usize(j, "minibatch")?,
        zeros: opt_loc_from_json(field(j, "zeros")?)?,
    })
}

// ------------------------------------------------------------------ error

fn error_to_json(e: &Error) -> Json {
    match e {
        Error::DoesNotFit {
            required_cols,
            available_cols,
        } => obj([
            ("kind", Json::Str("does_not_fit".into())),
            ("required_cols", num(*required_cols)),
            ("available_cols", num(*available_cols)),
        ]),
        Error::NoCapacity {
            required_cols,
            live_cols,
            failed_cols,
        } => obj([
            ("kind", Json::Str("no_capacity".into())),
            ("required_cols", num(*required_cols)),
            ("live_cols", num(*live_cols)),
            ("failed_cols", num(*failed_cols)),
        ]),
        Error::NoRoute { chip } => {
            obj([("kind", Json::Str("no_route".into())), ("chip", num(*chip))])
        }
        Error::Codegen { detail } => obj([
            ("kind", Json::Str("codegen".into())),
            ("detail", Json::Str(detail.clone())),
        ]),
        // Wrapped foreign errors carry types this layer cannot rebuild;
        // their rendered message survives as a codegen diagnostic.
        other => obj([
            ("kind", Json::Str("codegen".into())),
            ("detail", Json::Str(other.to_string())),
        ]),
    }
}

fn error_from_json(j: &Json) -> Result<Error> {
    match get_str(j, "kind")? {
        "does_not_fit" => Ok(Error::DoesNotFit {
            required_cols: get_usize(j, "required_cols")?,
            available_cols: get_usize(j, "available_cols")?,
        }),
        "no_capacity" => Ok(Error::NoCapacity {
            required_cols: get_usize(j, "required_cols")?,
            live_cols: get_usize(j, "live_cols")?,
            failed_cols: get_usize(j, "failed_cols")?,
        }),
        "no_route" => Ok(Error::NoRoute {
            chip: get_usize(j, "chip")?,
        }),
        "codegen" => Ok(Error::Codegen {
            detail: get_str(j, "detail")?.to_string(),
        }),
        other => Err(bad(format!("unknown error kind `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{compile, CompileOptions};
    use crate::TileCoord;
    use scaledeep_arch::presets;
    use scaledeep_dnn::zoo;

    fn small_net() -> scaledeep_dnn::Network {
        zoo::by_name("cnn-s").expect("zoo has cnn-s")
    }

    #[test]
    fn artifact_round_trips_through_json() {
        let node = presets::single_precision();
        let net = small_net();
        let a = compile(&node, &net, &CompileOptions::default()).expect("compiles");
        let doc = to_json(&a);
        let b = from_json(&doc).expect("parses back");
        assert_eq!(a.mapping(), b.mapping());
        assert_eq!(a.provenance(), b.provenance());
        match (a.functional(), b.functional()) {
            (Ok(x), Ok(y)) => assert_eq!(x, y),
            (Err(x), Err(y)) => assert_eq!(x, y),
            (x, y) => panic!("functional verdict flipped: {x:?} vs {y:?}"),
        }
        // The lowered streams are re-derived, not stored — still identical.
        assert_eq!(a.lowered(), b.lowered());
    }

    #[test]
    fn artifact_round_trips_through_disk() {
        let node = presets::single_precision();
        let net = small_net();
        let a = compile(&node, &net, &CompileOptions::default()).expect("compiles");
        let dir = std::env::temp_dir().join("scaledeep-artifact-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cnn-s.artifact.json");
        save(&a, &path).expect("saves");
        let b = load(&path).expect("loads");
        std::fs::remove_file(&path).ok();
        assert_eq!(a.mapping(), b.mapping());
        assert_eq!(a.provenance(), b.provenance());
        assert_eq!(a.lowered(), b.lowered());
    }

    #[test]
    fn degraded_artifact_preserves_failed_tiles_and_error() {
        let node = presets::single_precision();
        let net = small_net();
        let opts = CompileOptions {
            failed: FailedTiles::from_coords(
                &[TileCoord {
                    chip: 0,
                    col: 0,
                    row: 0,
                }],
                node.cluster.conv_chip.cols,
            ),
            ..CompileOptions::default()
        };
        let a = compile(&node, &net, &opts).expect("degraded compile succeeds");
        let b = from_json(&to_json(&a)).expect("parses back");
        assert!(b.is_degraded());
        assert_eq!(a.provenance(), b.provenance());
        assert_eq!(
            a.provenance().failed.columns().collect::<Vec<_>>(),
            b.provenance().failed.columns().collect::<Vec<_>>()
        );
    }

    #[test]
    fn save_is_atomic_and_leaves_no_temp_files() {
        let node = presets::single_precision();
        let net = small_net();
        let a = compile(&node, &net, &CompileOptions::default()).expect("compiles");
        let dir =
            std::env::temp_dir().join(format!("scaledeep-atomic-save-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cnn-s.artifact.json");
        // Save twice (fresh + overwrite); both must publish via rename.
        save(&a, &path).expect("saves");
        save(&a, &path).expect("overwrites");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n.contains("tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        load(&path).expect("published artifact loads");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_or_garbage_files_fail_to_load() {
        let node = presets::single_precision();
        let net = small_net();
        let a = compile(&node, &net, &CompileOptions::default()).expect("compiles");
        let dir = std::env::temp_dir().join(format!("scaledeep-torn-load-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.artifact.json");
        // A torn write: the front half of a valid document.
        let text = to_json(&a).render_pretty();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert!(load(&path).is_err(), "half a document must not parse");
        // Valid JSON that is not an artifact.
        std::fs::write(&path, "{\"not\": \"an artifact\"}").unwrap();
        assert!(load(&path).is_err(), "wrong shape must be rejected");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let node = presets::single_precision();
        let net = small_net();
        let a = compile(&node, &net, &CompileOptions::default()).expect("compiles");
        let mut doc = to_json(&a);
        if let Json::Obj(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "format_version" {
                    *v = Json::Num(999.0);
                }
            }
        }
        let err = from_json(&doc).expect_err("version 999 must be rejected");
        assert!(matches!(err, Error::Codegen { .. }), "{err:?}");
    }

    #[test]
    fn tampered_design_document_is_rejected() {
        // Editing the stored design without re-deriving node_fingerprint
        // must fail the load: the fingerprint is the cache identity, and
        // a file claiming one identity while describing another config
        // would poison every cache keyed on it.
        let node = presets::single_precision();
        let net = small_net();
        let a = compile(&node, &net, &CompileOptions::default()).expect("compiles");
        let mut doc = to_json(&a);
        let mut patched = false;
        if let Json::Obj(fields) = &mut doc {
            for (_, v) in fields.iter_mut().filter(|(k, _)| k == "provenance") {
                if let Json::Obj(prov) = v {
                    for (_, pv) in prov.iter_mut().filter(|(k, _)| k == "design") {
                        if let Json::Obj(design) = pv {
                            for (dk, dv) in design.iter_mut() {
                                if dk == "clusters" {
                                    *dv = Json::Num(2.0);
                                    patched = true;
                                }
                            }
                        }
                    }
                }
            }
        }
        assert!(patched, "document layout changed; test needs updating");
        let err = from_json(&doc).expect_err("tampered design must be rejected");
        assert!(
            err.to_string().contains("node_fingerprint"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn exact_u64_and_f64_fields_survive() {
        let node = presets::single_precision();
        let net = small_net();
        let a = compile(&node, &net, &CompileOptions::default()).expect("compiles");
        let b = from_json(&to_json(&a)).expect("parses back");
        for (x, y) in a.mapping().plans().iter().zip(b.mapping().plans()) {
            assert_eq!(x.comp_flops, y.comp_flops);
            assert_eq!(x.state_bytes, y.state_bytes);
            assert_eq!(x.array.util_rows.to_bits(), y.array.util_rows.to_bits());
            assert_eq!(x.array.util_lanes.to_bits(), y.array.util_lanes.to_bits());
        }
        assert_eq!(
            a.provenance().net_fingerprint,
            b.provenance().net_fingerprint
        );
    }
}
