//! Code generation (paper §4.2): instantiates parameterized templates for
//! the FP / BP / WG steps of every layer into ScaleDeep ISA programs.
//!
//! The functional target compiles a network for the **functional ISA
//! simulator**: every layer's state (features, pre-activations, errors,
//! weights, gradients) is assigned a concrete region in a MemHeavy tile
//! scratchpad, and one program is emitted per (layer, step). All programs
//! run concurrently; ordering is enforced *only* by MEMTRACK data-flow
//! trackers, exactly the paper's synchronization story (§3.2.4):
//!
//! * a consumer's read of a tracked range blocks until the range has
//!   received its declared number of updates;
//! * accumulating writes are commutative, so gradient and partial-feature
//!   accumulations may arrive in any order.
//!
//! Functional-target restrictions (documented in DESIGN.md): convolutions
//! must have stride 1 (the BP transposed convolution is then expressible as
//! `NDCONV` with flipped kernels and complementary padding — pooling layers
//! provide downsampling, as in LeNet-style validation networks), and biases
//! are dropped (the paper's CONV/FC formulation carries no bias term).

mod emit;
mod layout;

pub use emit::{conv_grads_to_output_major, conv_weights_to_input_major, fc_weights_transpose};
// The compile entry points are crate-internal: the codegen phase runs only
// inside the pipeline (`crate::pipeline::compile`), which is the single
// compile entry point of the whole system.
pub(crate) use emit::compile_functional_degraded;
pub use layout::{BufferLoc, LayerBuffers, TrackerSpec};

use scaledeep_isa::Program;

/// Options for the functional compilation target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuncTargetOptions {
    /// Number of MemHeavy tiles on the (reduced) functional chip.
    pub mem_tiles: usize,
    /// Scratchpad capacity per tile, in f32 elements.
    pub tile_capacity_elems: u32,
}

impl Default for FuncTargetOptions {
    fn default() -> Self {
        Self {
            mem_tiles: 8,
            tile_capacity_elems: 1 << 20,
        }
    }
}

/// A network compiled for the functional simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledNetwork {
    /// The source network's name.
    pub net_name: String,
    /// Per-layer buffer assignments, indexed by `LayerId`.
    pub buffers: Vec<LayerBuffers>,
    /// One program per (layer, step) that needs one, named
    /// `"L<idx>.<FP|BP|WG>"`.
    pub programs: Vec<Program>,
    /// Data-flow trackers to arm at program load (the MEMTRACK preamble of
    /// each producer program, collected for the simulator).
    pub trackers: Vec<TrackerSpec>,
    /// MemHeavy tile count of the target.
    pub mem_tiles: usize,
    /// Location of the constants region (holds the -1.0 used by the loss
    /// program's golden-output subtraction).
    pub const_neg_one: BufferLoc,
    /// Number of bias vectors dropped during compilation (the paper's
    /// formulation has no bias term; validation networks use `bias: false`
    /// so this is 0 for exact functional equivalence).
    pub dropped_biases: usize,
    /// Minibatch size the programs loop over (1 = straight-line per-image
    /// programs driven by the host; >1 = scalar-loop programs that walk
    /// the input/golden arrays with register-indirect addressing and rely
    /// on tracker generation-wrap for cross-image buffer reuse).
    pub minibatch: usize,
    /// A zeros region used by self-clearing BP scatter targets in the
    /// minibatch-looped mode.
    pub zeros: Option<BufferLoc>,
}

impl CompiledNetwork {
    /// Looks a program up by name.
    pub fn program(&self, name: &str) -> Option<&Program> {
        self.programs.iter().find(|p| p.name() == name)
    }

    /// Total instruction count across all programs.
    pub fn total_insts(&self) -> usize {
        self.programs.iter().map(|p| p.len()).sum()
    }
}
