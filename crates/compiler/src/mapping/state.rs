//! STEP 3a / STEP 4: on-chip state budgets and feature distribution.

use scaledeep_arch::ChipConfig;
use scaledeep_dnn::{Analysis, Layer, LayerId, Network};

/// The on-chip storage a layer requires (STEP 3a).
///
/// Because execution is pipelined, a layer's MemHeavy tiles must
/// cumulatively hold **two copies of its features and errors** (the copy
/// being produced and the copy being consumed by the next pipeline stage),
/// **two copies of the partial feature/error batch under evaluation**, and
/// its weights + weight gradients when those are kept on chip (paper §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateBudget {
    /// Feature + error pipeline copies plus partial batches, bytes.
    pub state_bytes: u64,
    /// Weight bytes (gradients double this when resident).
    pub weight_bytes: u64,
    /// Memory-floor column count on the owning chip.
    pub min_cols: usize,
}

/// Computes the STEP 3a budget for one layer.
pub(crate) fn state_budget(
    net: &Network,
    analysis: &Analysis,
    id: LayerId,
    chip: &ChipConfig,
    elem_bytes: u64,
) -> StateBudget {
    let node = net.node(id);
    let out = node.output_shape();
    let feat_bytes = out.elems() as u64 * elem_bytes;
    let is_training_state = matches!(
        node.layer(),
        Layer::Conv(_)
            | Layer::Pool(_)
            | Layer::Fc(_)
            | Layer::EltwiseAdd(_)
            | Layer::EltwiseMul(_)
            | Layer::Act(_)
            | Layer::Shortcut { .. }
    );
    if !is_training_state {
        return StateBudget {
            state_bytes: 0,
            weight_bytes: 0,
            min_cols: 0,
        };
    }
    // Two copies of features and errors: 2 * (features + errors).
    let pipeline_copies = 4 * feat_bytes;
    // Two copies of the partial output-feature batch under evaluation
    // (lanes features at a time).
    let lanes = chip.comp_heavy.lanes.max(1) as u64;
    let partial_batch = 2 * lanes * out.feature_elems() as u64 * elem_bytes;
    let state_bytes = pipeline_copies + partial_batch;
    let weight_bytes = analysis.layer(id).weights * elem_bytes;
    let col_cap = chip.col_mem_capacity() as u64;
    let min_cols = usize::try_from(state_bytes.div_ceil(col_cap))
        .unwrap_or(usize::MAX)
        .max(1);
    StateBudget {
        state_bytes,
        weight_bytes,
        min_cols,
    }
}

/// STEP 4: distributes `features` output features across `tiles` MemHeavy
/// tiles, returning `(tiles_used, features_per_tile)`.
///
/// * When there are at least as many features as tiles, each tile holds
///   `ceil(features / tiles)` whole features and the final tiles may be
///   left empty (the paper's AlexNet C3/C4 case, "2 tiles unused").
/// * When features are fewer than tiles (large initial-CONV features),
///   each feature is split into `floor(tiles / features)` parts so every
///   part-holding tile participates.
pub(crate) fn distribute_features(features: usize, tiles: usize) -> (usize, usize) {
    if tiles == 0 || features == 0 {
        return (0, 0);
    }
    if features >= tiles {
        let per_tile = features.div_ceil(tiles);
        let used = features.div_ceil(per_tile);
        (used, per_tile)
    } else {
        let parts = tiles / features;
        (features * parts, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scaledeep_arch::presets;
    use scaledeep_dnn::zoo;

    #[test]
    fn whole_feature_distribution_leaves_remainder_tiles_idle() {
        // AlexNet C3: 384 features over (4 cols x 6 rows = 24 tiles):
        // 16/tile, all used. With 22 tiles: ceil(384/22)=18 -> uses 22.
        assert_eq!(distribute_features(384, 24), (24, 16));
        // The paper's C3 example: 384 features, 4 cols allocated but tiles
        // shared: feature count not a multiple -> some tiles unused.
        let (used, per) = distribute_features(96, 36);
        assert_eq!(per, 3); // ceil(96/36)
        assert_eq!(used, 32); // 96/3 -> 4 tiles idle
    }

    #[test]
    fn split_distribution_uses_part_tiles() {
        // 3 big features over 24 tiles: 8 parts each, all 24 used.
        assert_eq!(distribute_features(3, 24), (24, 1));
        // 5 features over 24 tiles: 4 parts each -> 20 used, 4 idle.
        assert_eq!(distribute_features(5, 24), (20, 1));
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(distribute_features(0, 10), (0, 0));
        assert_eq!(distribute_features(10, 0), (0, 0));
    }

    #[test]
    fn budget_scales_with_feature_size() {
        let net = zoo::overfeat_fast();
        let node = presets::single_precision();
        let a = net.analyze();
        let chip = node.cluster.conv_chip;
        let c1 = net.node_by_name("c1").unwrap().id();
        let c3 = net.node_by_name("c3").unwrap().id();
        let b1 = state_budget(&net, &a, c1, &chip, 4);
        let b3 = state_budget(&net, &a, c3, &chip, 4);
        // C1: 96 x 56x56 floats = 1.2MB of features -> ~4.8MB state.
        assert!(b1.state_bytes > 4 * 1024 * 1024);
        assert!(b1.state_bytes > b3.state_bytes);
        assert!(b1.min_cols >= 2);
    }

    #[test]
    fn input_and_loss_need_no_state() {
        let net = zoo::alexnet();
        let node = presets::single_precision();
        let a = net.analyze();
        let chip = node.cluster.conv_chip;
        let input = net.input().id();
        let b = state_budget(&net, &a, input, &chip, 4);
        assert_eq!(b.min_cols, 0);
        assert_eq!(b.state_bytes, 0);
    }
}
