//! STEP 5: CompHeavy array configuration and its residue utilization.
//!
//! The 2D array is reconfigurable at runtime (paper §3.1.1): columns and
//! vector lanes can be redistributed keeping their product constant, and
//! the array can split horizontally into two half-height arrays running
//! two batch convolutions in parallel. The configuration is chosen per
//! layer to maximize the product of three residue utilizations:
//!
//! * **rows** — feature rows vs. (possibly split) array rows;
//! * **kernel** — kernel rows vs. array columns;
//! * **lanes** — the layer's per-column output features vs. the lane
//!   count of the final batch iteration.

use scaledeep_arch::ChipConfig;
use scaledeep_dnn::{Layer, LayerNode, Network};

/// The chosen array configuration for one layer and the utilization it
/// achieves (Figure 19's "2D-array residue" factor).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrayPlan {
    /// Array columns after redistribution.
    pub cols: usize,
    /// Lanes per 2D-PE after redistribution.
    pub lanes: usize,
    /// Whether the array is split into two half-height arrays.
    pub row_split: bool,
    /// Row-residue utilization.
    pub util_rows: f64,
    /// Kernel-residue utilization.
    pub util_kernel: f64,
    /// Lane-residue utilization.
    pub util_lanes: f64,
    /// Output-feature batches each column processes per image
    /// (drives the inter-feature pipeline and instruction overhead).
    pub batches_per_image: usize,
    /// Whether the layer's working set fits the tile's streaming memories
    /// (one input row per array row in the left SM; the active kernels in
    /// the top/bottom SMs — Figure 7a). The Figure 14 SM capacities are
    /// sized so every benchmark layer fits; layers that do not would
    /// re-stream operands from the MemHeavy tiles each pass.
    pub streaming_fits: bool,
}

impl ArrayPlan {
    /// Combined 2D-array residue utilization.
    pub fn utilization(&self) -> f64 {
        self.util_rows * self.util_kernel * self.util_lanes
    }

    /// A unit plan for layers that do not use the 2D array.
    pub fn unit() -> Self {
        Self {
            cols: 1,
            lanes: 1,
            row_split: false,
            util_rows: 1.0,
            util_kernel: 1.0,
            util_lanes: 1.0,
            batches_per_image: 1,
            streaming_fits: true,
        }
    }
}

fn residue(work: usize, capacity: usize) -> f64 {
    if work == 0 || capacity == 0 {
        return 1.0;
    }
    let passes = work.div_ceil(capacity);
    work as f64 / (passes * capacity) as f64
}

/// Chooses the best array configuration for a layer mapped onto `cols`
/// chip columns of `chip`.
pub(crate) fn configure(
    net: &Network,
    node: &LayerNode,
    cols: usize,
    chip: &ChipConfig,
) -> ArrayPlan {
    let out = node.output_shape();
    match node.layer() {
        Layer::Conv(c) => {
            // Output features handled per column.
            let feats_per_col = out.features.div_ceil(cols.max(1));
            let base = &chip.comp_heavy;
            let mut best = ArrayPlan::unit();
            let mut best_u = -1.0f64;
            for (acols, lanes) in base.column_lane_configs() {
                for split in [false, true] {
                    let rows_eff = if split {
                        (base.array_rows / 2).max(1)
                    } else {
                        base.array_rows
                    };
                    let parallel = if split { 2 } else { 1 };
                    let lane_cap = lanes * parallel;
                    let util_rows = residue(out.height, rows_eff);
                    let util_kernel = residue(c.kernel, acols);
                    let util_lanes = residue(feats_per_col, lane_cap);
                    let u = util_rows * util_kernel * util_lanes;
                    if u > best_u {
                        best_u = u;
                        let batches = feats_per_col.div_ceil(lane_cap);
                        // Streaming-memory fit (Figure 7a / Figure 14):
                        // the left SM holds one input row per array row;
                        // the top+bottom SMs hold the kernels of the
                        // active lanes.
                        let in_shape = net.input_shapes(node.id())[0];
                        let elem = 4; // SP sizing; HP halves both sides
                        let left_need = rows_eff * in_shape.width * elem;
                        let kernel_need = lane_cap * c.kernel * c.kernel * elem;
                        let streaming_fits = left_need <= base.left_mem_bytes
                            && kernel_need <= base.top_mem_bytes + base.bottom_mem_bytes;
                        best = ArrayPlan {
                            cols: acols,
                            lanes,
                            row_split: split,
                            util_rows,
                            util_kernel,
                            util_lanes,
                            batches_per_image: batches.max(1),
                            streaming_fits,
                        };
                    }
                }
            }
            best
        }
        Layer::Fc(_) => {
            // Matrix multiply: single lane; output neurons stream through
            // the whole array (rows x cols dot-product slots per pass).
            let base = &chip.comp_heavy;
            let neurons_per_col = out.features.div_ceil(cols.max(1));
            let slots = base.array_rows * base.array_cols;
            let util = residue(neurons_per_col, slots);
            ArrayPlan {
                cols: base.array_cols,
                lanes: 1,
                row_split: false,
                util_rows: util,
                util_kernel: 1.0,
                util_lanes: 1.0,
                batches_per_image: neurons_per_col.div_ceil(slots).max(1),
                // FC inputs stream elementwise; a vector chunk per array
                // row always fits the FcLayer chip's larger top/bottom SMs.
                streaming_fits: true,
            }
        }
        Layer::Pool(_)
        | Layer::EltwiseAdd(_)
        | Layer::EltwiseMul(_)
        | Layer::Act(_)
        | Layer::Shortcut { .. } => {
            // SFU work: batches follow the feature count per column so the
            // inter-feature pipeline still has stages to fill.
            let feats_per_col = out.features.div_ceil(cols.max(1));
            ArrayPlan {
                batches_per_image: feats_per_col.max(1),
                ..ArrayPlan::unit()
            }
        }
        _ => ArrayPlan::unit(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scaledeep_arch::presets;
    use scaledeep_dnn::zoo;

    fn conv_chip() -> ChipConfig {
        presets::single_precision().cluster.conv_chip
    }

    #[test]
    fn residue_is_one_for_exact_fit() {
        assert_eq!(residue(8, 8), 1.0);
        assert_eq!(residue(16, 8), 1.0);
    }

    #[test]
    fn residue_penalizes_partial_passes() {
        // 13 rows on an 8-row array: 2 passes, 13/16 busy.
        assert!((residue(13, 8) - 13.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn alexnet_c2_prefers_row_split() {
        // The paper's Figure 19: C2 (27x27 features on an 8-row array)
        // leverages the horizontal split to run 2 batch convolutions.
        // 27 rows: unsplit residue 27/32; split (4-row halves) 27/28.
        let net = zoo::alexnet();
        let c2 = net.node_by_name("c2").unwrap();
        let plan = configure(&net, c2, 4, &conv_chip());
        assert!(plan.row_split, "27-row features should split the array");
        assert!(plan.utilization() > 0.5);
    }

    #[test]
    fn kernel_residue_hits_5x5_kernels() {
        // K=5 on a 3-column array: 2 passes, 5/6 kernel utilization unless
        // the configuration search finds a better redistribution.
        let net = zoo::alexnet();
        let c3 = net.node_by_name("c3").unwrap();
        let plan = configure(&net, c3, 4, &conv_chip());
        // 3x3 kernels on 3 columns fit exactly.
        assert_eq!(plan.util_kernel, 1.0);
    }

    #[test]
    fn pool_layers_use_unit_array() {
        let net = zoo::alexnet();
        let s1 = net.node_by_name("s1").unwrap();
        let plan = configure(&net, s1, 1, &conv_chip());
        assert_eq!(plan.utilization(), 1.0);
        assert!(plan.batches_per_image >= 96);
    }

    #[test]
    fn fc_uses_single_lane() {
        let node = presets::single_precision();
        let net = zoo::alexnet();
        let f6 = net.node_by_name("f6").unwrap();
        let plan = configure(&net, f6, 4, &node.cluster.fc_chip);
        assert_eq!(plan.lanes, 1);
        assert!(plan.batches_per_image > 1);
    }
}
