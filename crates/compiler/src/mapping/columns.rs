//! STEP 3: column allocation — memory floor (3a) then load balancing (3b).

use super::state::StateBudget;
use super::{FailedTiles, Placement};
use crate::error::{Error, Result};
use scaledeep_arch::ChipConfig;
use scaledeep_dnn::{Analysis, LayerId};

/// The outcome of column allocation.
#[derive(Debug, Clone)]
pub(crate) struct Allocation {
    /// Placement per layer, indexed by `LayerId`.
    placements: Vec<Placement>,
    pub conv_cols_used: usize,
    pub fc_cols_used: usize,
    pub chips_spanned: usize,
    pub clusters_spanned: usize,
    /// Logical→physical conv-column indirection: placements use logical
    /// columns `0..`, and `col_map[logical]` names the live physical
    /// column backing each one (identity when nothing failed).
    pub col_map: Vec<usize>,
    /// Physical columns within the span condemned by the failed-tile set.
    pub failed_cols: Vec<usize>,
}

impl Allocation {
    pub(crate) fn placement(&self, id: LayerId) -> Placement {
        self.placements[id.index()]
    }
}

/// Training FLOPs of a layer (all three steps) — the load metric of 3b.
fn load_flops(analysis: &Analysis, id: LayerId) -> u64 {
    let c = analysis.layer(id);
    c.training_flops()
}

/// Greedy load balancing: repeatedly grant one extra column to the layer
/// with the highest column load (normalized FLOPs / normalized columns).
fn balance(cols: &mut [usize], flops: &[u64], budget: usize) {
    let mut used: usize = cols.iter().sum();
    let total_flops: u64 = flops.iter().sum();
    if total_flops == 0 {
        return;
    }
    while used < budget {
        let total_cols: usize = cols.iter().sum();
        // With `total_flops > 0` some layer carries FLOPs, but stay
        // graceful regardless: leftover budget is preferable to a panic
        // inside a degraded remap.
        let Some((best, _)) = cols
            .iter()
            .enumerate()
            .filter(|&(i, _)| flops[i] > 0)
            .map(|(i, &c)| {
                let norm_ops = flops[i] as f64 / total_flops as f64;
                let norm_cols = c as f64 / total_cols as f64;
                (i, norm_ops / norm_cols)
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
        else {
            return;
        };
        cols[best] += 1;
        used += 1;
    }
}

/// Rounds a raw chip requirement to a deployable span: 1–4 chips stay
/// within one wheel; beyond that, whole clusters (multiples of the wheel
/// size) are taken so the ring carries the CONV features (paper §6.3's
/// VGG-D/E case).
fn round_span(raw_chips: usize, wheel: usize, clusters: usize) -> (usize, usize) {
    // Even a CONV-free network (autoencoder, RNN) occupies one rim chip to
    // stream its inputs toward the hub.
    let raw_chips = raw_chips.max(1);
    if raw_chips <= wheel {
        (raw_chips, 1)
    } else {
        let n_clusters = raw_chips.div_ceil(wheel).min(clusters);
        (n_clusters * wheel, n_clusters)
    }
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn allocate(
    conv_ids: &[LayerId],
    fc_ids: &[LayerId],
    budgets: &[StateBudget],
    analysis: &Analysis,
    conv_chip: &ChipConfig,
    fc_chip: &ChipConfig,
    wheel: usize,
    clusters: usize,
    failed: &FailedTiles,
) -> Result<Allocation> {
    let mut placements = vec![Placement::Inline; budgets.len()];

    // ---- Conv side ----
    // Column sharing: consecutive layers whose combined state fits one
    // column share a column group (the paper maps at column granularity
    // but treats each inception module / residual block as one layer;
    // grouping small consecutive layers recovers that granularity — and is
    // the "layer occupies part of the column" optimization §6.1 sketches).
    let col_cap = conv_chip.col_mem_capacity() as u64;
    let mut groups: Vec<Vec<LayerId>> = Vec::new();
    let mut current: Vec<LayerId> = Vec::new();
    let mut current_state: u64 = 0;
    for &id in conv_ids {
        let s = budgets[id.index()].state_bytes.max(1);
        if !current.is_empty() && current_state + s > col_cap {
            groups.push(std::mem::take(&mut current));
            current_state = 0;
        }
        current.push(id);
        current_state += s;
    }
    if !current.is_empty() {
        groups.push(current);
    }

    let group_state =
        |g: &[LayerId]| -> u64 { g.iter().map(|id| budgets[id.index()].state_bytes).sum() };
    let mut group_cols: Vec<usize> = groups
        .iter()
        .map(|g| {
            usize::try_from(group_state(g).div_ceil(col_cap))
                .unwrap_or(usize::MAX)
                .max(1)
        })
        .collect();
    let min_total: usize = group_cols.iter().sum();
    let available_total = clusters * wheel * conv_chip.cols;
    let failed_in_node = failed.columns().filter(|&c| c < available_total).count();
    let live_total = available_total - failed_in_node;
    if min_total > live_total {
        // "The network never fit" and "the failures ate the headroom" are
        // different operator problems; report them as different errors.
        return Err(if failed.is_empty() {
            Error::DoesNotFit {
                required_cols: min_total,
                available_cols: available_total,
            }
        } else {
            Error::NoCapacity {
                required_cols: min_total,
                live_cols: live_total,
                failed_cols: failed_in_node,
            }
        });
    }

    // Grow the span until it holds `min_total` *live* columns (on a
    // healthy node the first candidate already does).
    let live_within = |chips: usize| {
        let span_cols = chips * conv_chip.cols;
        span_cols - failed.columns().filter(|&c| c < span_cols).count()
    };
    let (mut chips_spanned, mut clusters_spanned) =
        round_span(min_total.div_ceil(conv_chip.cols), wheel, clusters);
    while live_within(chips_spanned) < min_total {
        let next = round_span(chips_spanned + 1, wheel, clusters);
        if next.0 == chips_spanned {
            // Capped at the node and still short — unreachable given the
            // live_total check above, but degrade gracefully regardless.
            return Err(Error::NoCapacity {
                required_cols: min_total,
                live_cols: live_within(chips_spanned),
                failed_cols: failed_in_node,
            });
        }
        (chips_spanned, clusters_spanned) = next;
    }

    // A rim chip with every column dead breaks the wheel's spoke/arc
    // route through it; no column re-allocation can compensate.
    for chip in 0..chips_spanned {
        let base = chip * conv_chip.cols;
        if (base..base + conv_chip.cols).all(|c| failed.contains(c)) {
            return Err(Error::NoRoute { chip });
        }
    }

    let budget = live_within(chips_spanned);
    let group_flops: Vec<u64> = groups
        .iter()
        .map(|g| g.iter().map(|id| load_flops(analysis, *id)).sum())
        .collect();
    balance(&mut group_cols, &group_flops, budget);

    let mut cursor = 0;
    for (g, group) in groups.iter().enumerate() {
        for &id in group {
            placements[id.index()] = Placement::Conv {
                first_col: cursor,
                cols: group_cols[g],
            };
        }
        cursor += group_cols[g];
    }
    let conv_cols_used = cursor;

    // ---- FC side (the hub chip's columns) ----
    let mut fc_cols_used = 0;
    if !fc_ids.is_empty() {
        let mut fc_cols: Vec<usize> = fc_ids.iter().map(|_| 1).collect();
        let fc_flops: Vec<u64> = fc_ids.iter().map(|id| load_flops(analysis, *id)).collect();
        let fc_budget = fc_chip.cols.max(fc_ids.len());
        balance(&mut fc_cols, &fc_flops, fc_budget);
        let mut cursor = 0;
        for (i, id) in fc_ids.iter().enumerate() {
            placements[id.index()] = Placement::Fc {
                first_col: cursor,
                cols: fc_cols[i],
            };
            cursor += fc_cols[i];
        }
        fc_cols_used = cursor;
    }

    let span_cols = chips_spanned * conv_chip.cols;
    let col_map: Vec<usize> = (0..span_cols).filter(|&c| !failed.contains(c)).collect();
    let failed_cols: Vec<usize> = (0..span_cols).filter(|&c| failed.contains(c)).collect();

    Ok(Allocation {
        placements,
        conv_cols_used,
        fc_cols_used,
        chips_spanned,
        clusters_spanned,
        col_map,
        failed_cols,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balance_prefers_heavy_layers() {
        let mut cols = vec![1, 1, 1];
        balance(&mut cols, &[100, 10, 10], 9);
        assert!(cols[0] > cols[1] && cols[0] > cols[2]);
        assert_eq!(cols.iter().sum::<usize>(), 9);
    }

    #[test]
    fn balance_is_noop_at_budget() {
        let mut cols = vec![2, 3];
        balance(&mut cols, &[5, 5], 5);
        assert_eq!(cols, vec![2, 3]);
    }

    #[test]
    fn zero_flop_layers_get_no_extra_columns() {
        let mut cols = vec![1, 1];
        balance(&mut cols, &[10, 0], 6);
        assert_eq!(cols, vec![5, 1]);
    }

    #[test]
    fn span_rounds_to_clusters_beyond_the_wheel() {
        assert_eq!(round_span(0, 4, 4), (1, 1)); // CONV-free networks
        assert_eq!(round_span(1, 4, 4), (1, 1));
        assert_eq!(round_span(3, 4, 4), (3, 1));
        assert_eq!(round_span(5, 4, 4), (8, 2));
        assert_eq!(round_span(13, 4, 4), (16, 4));
    }

    #[test]
    fn span_is_capped_at_node_size() {
        assert_eq!(round_span(40, 4, 4), (16, 4));
    }
}
