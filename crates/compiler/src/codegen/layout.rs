//! Buffer layout: assigns every network-state buffer a region in a
//! MemHeavy tile scratchpad (STEP 4's "home tile" assignment, concretized
//! for the functional target).

use crate::error::{Error, Result};
use scaledeep_isa::{MemRef, TileRef};

/// A concrete buffer location: tile + element offset + element length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferLoc {
    /// Home MemHeavy tile index.
    pub tile: u16,
    /// Element offset within the tile scratchpad.
    pub offset: u32,
    /// Length in elements.
    pub len: u32,
}

impl BufferLoc {
    /// A [`MemRef`] to the buffer start.
    pub fn mem(&self) -> MemRef {
        MemRef::at(TileRef(self.tile), self.offset)
    }

    /// A [`MemRef`] `elems` into the buffer.
    ///
    /// # Panics
    ///
    /// Panics when `elems > len` (points past the buffer).
    pub fn mem_at(&self, elems: u32) -> MemRef {
        assert!(
            elems <= self.len,
            "offset {elems} past buffer of {}",
            self.len
        );
        MemRef::at(TileRef(self.tile), self.offset + elems)
    }
}

/// All buffers owned by one layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LayerBuffers {
    /// Post-activation output features (FP result; the input image for the
    /// input layer).
    pub output: Option<BufferLoc>,
    /// Pre-activation values (CONV / FC / ELTWISE), kept for BP.
    pub pre: Option<BufferLoc>,
    /// Error at this layer's output (written by consumers during BP).
    pub err: Option<BufferLoc>,
    /// Error after the activation derivative (`dz`), input to BP/WG math.
    pub dz: Option<BufferLoc>,
    /// Kernel weights, input-major `[in][out][kh][kw]` for CONV (so the
    /// `lanes` kernels of one NDCONV are contiguous) or row-major
    /// `[out][in]` for FC.
    pub weights: Option<BufferLoc>,
    /// FC only: the transposed weight copy `[in][out]` used by BP.
    pub weights_t: Option<BufferLoc>,
    /// Weight gradients, same layout as `weights`.
    pub wgrad: Option<BufferLoc>,
    /// Loss only: the golden output vector (written by the host).
    pub golden: Option<BufferLoc>,
}

/// A data-flow tracker to arm: the MEMTRACK parameters for one range
/// (paper Eq. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrackerSpec {
    /// Tracked tile.
    pub tile: u16,
    /// Element offset of the tracked range.
    pub addr: u32,
    /// Element length of the tracked range.
    pub len: u32,
    /// Updates required before the range becomes readable.
    pub num_updates: u16,
    /// Reads allowed before the range may be overwritten.
    pub num_reads: u16,
}

/// First-fit bump allocator over the functional chip's MemHeavy tiles.
#[derive(Debug)]
pub(super) struct Allocator {
    next_free: Vec<u32>,
    capacity: u32,
    cursor: usize,
}

impl Allocator {
    pub(super) fn new(tiles: usize, capacity: u32) -> Self {
        Self {
            next_free: vec![0; tiles],
            capacity,
            cursor: 0,
        }
    }

    /// An allocator that never places a buffer on the `dead` tiles: they
    /// start full, so the rotate-first-fit probe skips them while every
    /// live tile keeps its index (degraded layouts stay address-compatible
    /// with healthy ones on the surviving tiles).
    pub(super) fn new_excluding(tiles: usize, capacity: u32, dead: &[u16]) -> Self {
        let mut a = Self::new(tiles, capacity);
        for &d in dead {
            if let Some(slot) = a.next_free.get_mut(d as usize) {
                *slot = capacity;
            }
        }
        a
    }

    /// Number of tiles that can still accept at least one element.
    pub(super) fn live_tiles(&self) -> usize {
        self.next_free
            .iter()
            .filter(|&&n| n < self.capacity)
            .count()
    }

    /// Allocates `len` elements, preferring to rotate across tiles so the
    /// layout spreads like the paper's even feature distribution.
    pub(super) fn alloc(&mut self, len: u32) -> Result<BufferLoc> {
        let tiles = self.next_free.len();
        for probe in 0..tiles {
            let t = (self.cursor + probe) % tiles;
            if self.next_free[t] + len <= self.capacity {
                let offset = self.next_free[t];
                self.next_free[t] += len;
                self.cursor = (t + 1) % tiles;
                return Ok(BufferLoc {
                    tile: t as u16,
                    offset,
                    len,
                });
            }
        }
        Err(Error::Codegen {
            detail: format!(
                "buffer of {len} elements does not fit any tile (capacity {}, {} tiles)",
                self.capacity, tiles
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocator_rotates_tiles() {
        let mut a = Allocator::new(3, 100);
        let b0 = a.alloc(10).unwrap();
        let b1 = a.alloc(10).unwrap();
        let b2 = a.alloc(10).unwrap();
        let tiles = [b0.tile, b1.tile, b2.tile];
        assert_eq!(tiles, [0, 1, 2]);
    }

    #[test]
    fn allocator_bumps_within_tile() {
        let mut a = Allocator::new(1, 100);
        let b0 = a.alloc(30).unwrap();
        let b1 = a.alloc(30).unwrap();
        assert_eq!((b0.offset, b1.offset), (0, 30));
    }

    #[test]
    fn allocator_skips_full_tiles() {
        let mut a = Allocator::new(2, 50);
        a.alloc(45).unwrap(); // tile 0 nearly full
        let b = a.alloc(20).unwrap();
        assert_eq!(b.tile, 1);
    }

    #[test]
    fn allocator_excluding_never_places_on_dead_tiles() {
        let mut a = Allocator::new_excluding(4, 100, &[1, 2]);
        assert_eq!(a.live_tiles(), 2);
        for _ in 0..6 {
            let b = a.alloc(10).unwrap();
            assert!(b.tile == 0 || b.tile == 3, "placed on dead tile {}", b.tile);
        }
    }

    #[test]
    fn allocator_excluding_everything_is_exhausted() {
        let mut a = Allocator::new_excluding(2, 100, &[0, 1]);
        assert_eq!(a.live_tiles(), 0);
        assert!(a.alloc(1).is_err());
    }

    #[test]
    fn allocator_reports_exhaustion() {
        let mut a = Allocator::new(1, 10);
        assert!(a.alloc(11).is_err());
        a.alloc(10).unwrap();
        assert!(a.alloc(1).is_err());
    }

    #[test]
    fn mem_at_bounds_checked() {
        let b = BufferLoc {
            tile: 0,
            offset: 5,
            len: 10,
        };
        assert_eq!(b.mem_at(10), scaledeep_isa::MemRef::at(TileRef(0), 15));
    }

    #[test]
    #[should_panic(expected = "past buffer")]
    fn mem_at_panics_out_of_range() {
        let b = BufferLoc {
            tile: 0,
            offset: 0,
            len: 4,
        };
        let _ = b.mem_at(5);
    }
}
