//! Template instantiation: emits the FP / BP / WG programs of every layer.

use super::layout::{Allocator, BufferLoc, LayerBuffers, TrackerSpec};
use super::{CompiledNetwork, FuncTargetOptions};
use crate::error::{Error, Result};
use scaledeep_dnn::{Activation, Layer, LayerId, Network};
use scaledeep_isa::{ActKind, Addr, Inst, MemRef, PoolMode, Program, Reg, TileRef};
use std::collections::HashMap;

/// The codegen phase's worker: compiles a network for the functional ISA
/// simulator. Invoked only through the phase pipeline
/// (`crate::pipeline::compile`), which is the single compile entry point.
///
/// With `batch > 1` each program wraps its per-image body in an `LDRI` /
/// `SUBRI` / `BNEZ` loop, the first layer and the loss head walk the
/// input/golden arrays through register-indirect addressing, and all
/// intermediate buffers are *reused* across images — the data-flow
/// trackers' generation-wrap semantics provide the cross-image
/// synchronization (a consumer must drain a buffer before the producer may
/// write the next image into it, exactly the paper's pipelined hand-off).
///
/// With a non-empty `dead_tiles`, no buffer is placed on a member tile
/// (permanently failed MemHeavy tiles), while the surviving tiles keep
/// their indices so programs address them exactly as on a healthy chip.
///
/// # Errors
///
/// Returns [`Error::Codegen`] for constructs the functional target cannot
/// express: convolutions with stride > 1 or non-square error "kernels",
/// buffers exceeding the tile capacity, or tracker counts beyond the
/// 16-bit hardware counters. `batch > 1` additionally requires a
/// single-consumer graph (no residual fan-out): accumulating error
/// contributions from multiple consumers would need host-side zeroing
/// between images, which the looped mode by design does without. A
/// non-empty `dead_tiles` additionally fails when every tile is dead or
/// the survivors run out of scratchpad capacity.
pub fn compile_functional_degraded(
    net: &Network,
    opts: &FuncTargetOptions,
    batch: usize,
    dead_tiles: &[u16],
) -> Result<CompiledNetwork> {
    if batch == 0 {
        return Err(Error::Codegen {
            detail: "minibatch must be at least 1".into(),
        });
    }
    if batch > 1 {
        for node in net.layers() {
            if node.consumers().len() > 1 {
                return Err(Error::Codegen {
                    detail: format!(
                        "minibatch-looped target requires a single-consumer graph; `{}` has {} consumers",
                        node.name(),
                        node.consumers().len()
                    ),
                });
            }
        }
    }
    let mut cg = Codegen::new(net, opts)?;
    if !dead_tiles.is_empty() {
        cg.alloc = Allocator::new_excluding(opts.mem_tiles, opts.tile_capacity_elems, dead_tiles);
        if cg.alloc.live_tiles() == 0 {
            return Err(Error::Codegen {
                detail: format!(
                    "all {} MemHeavy tiles of the functional chip are dead",
                    opts.mem_tiles
                ),
            });
        }
    }
    cg.batch = batch;
    cg.allocate()?;
    cg.emit_all()?;
    cg.finish()
}

type BufKey = (u16, u32, u32);

fn key(b: BufferLoc) -> BufKey {
    (b.tile, b.offset, b.len)
}

struct Codegen<'n> {
    net: &'n Network,
    alloc: Allocator,
    buffers: Vec<LayerBuffers>,
    /// Tracked buffer -> (updates, reads) observed during emission.
    counts: HashMap<BufKey, (u32, u32)>,
    programs: Vec<(LayerId, &'static str, Vec<Inst>)>,
    const_neg_one: Option<BufferLoc>,
    dropped_biases: usize,
    mem_tiles: usize,
    batch: usize,
    zeros: Option<BufferLoc>,
    epoch_token: Option<BufferLoc>,
    token_scratch: Option<BufferLoc>,
    /// Set while emitting a program whose body indexes the input/golden
    /// arrays: (base element offset, per-image stride).
    image_reg: Option<(u32, u32)>,
}

impl<'n> Codegen<'n> {
    fn new(net: &'n Network, opts: &FuncTargetOptions) -> Result<Self> {
        if opts.mem_tiles == 0 {
            return Err(Error::Codegen {
                detail: "functional target needs at least one MemHeavy tile".into(),
            });
        }
        Ok(Self {
            net,
            alloc: Allocator::new(opts.mem_tiles, opts.tile_capacity_elems),
            buffers: vec![LayerBuffers::default(); net.len()],
            counts: HashMap::new(),
            programs: Vec::new(),
            const_neg_one: None,
            dropped_biases: 0,
            mem_tiles: opts.mem_tiles,
            batch: 1,
            zeros: None,
            epoch_token: None,
            token_scratch: None,
            image_reg: None,
        })
    }

    fn track(&mut self, b: Option<BufferLoc>) {
        if let Some(b) = b {
            self.counts.entry(key(b)).or_insert((0, 0));
        }
    }

    /// Allocates all buffers (home-tile assignment).
    fn allocate(&mut self) -> Result<()> {
        self.const_neg_one = Some(self.alloc.alloc(1)?);
        // Zeros region: clears self-zeroing scatter targets (looped mode)
        // and initializes element-wise-product accumulators.
        let largest = self
            .net
            .layers()
            .map(|n| n.output_shape().elems() as u32)
            .max()
            .unwrap_or(1);
        self.zeros = Some(self.alloc.alloc(largest)?);
        if self.looped() {
            self.epoch_token = Some(self.alloc.alloc(1)?);
            self.token_scratch = Some(self.alloc.alloc(1)?);
        }
        for node in self.net.layers() {
            let id = node.id();
            let out_elems = node.output_shape().elems() as u32;
            let mut b = LayerBuffers::default();
            match node.layer() {
                Layer::Input(_) => {
                    // In looped mode the input array is a host-owned,
                    // never-rewritten region read freely by every image's
                    // iteration: it stays untracked (see `track` below).
                    b.output = Some(self.alloc.alloc(out_elems * self.batch as u32)?);
                }
                Layer::Conv(c) => {
                    let in_shape = self.net.input_shapes(id)[0];
                    let w_len = (c.weights(in_shape.features)
                        - if c.bias { c.out_features as u64 } else { 0 })
                        as u32;
                    if c.bias {
                        self.dropped_biases += 1;
                    }
                    b.output = Some(self.alloc.alloc(out_elems)?);
                    b.pre = Some(self.alloc.alloc(out_elems)?);
                    b.err = Some(self.alloc.alloc(out_elems)?);
                    b.dz = Some(self.alloc.alloc(out_elems)?);
                    b.weights = Some(self.alloc.alloc(w_len)?);
                    b.wgrad = Some(self.alloc.alloc(w_len)?);
                }
                Layer::Fc(f) => {
                    let n_in = self.net.fan_in_elems(id) as u32;
                    let n_out = f.out_neurons as u32;
                    if f.bias {
                        self.dropped_biases += 1;
                    }
                    b.output = Some(self.alloc.alloc(n_out)?);
                    b.pre = Some(self.alloc.alloc(n_out)?);
                    b.err = Some(self.alloc.alloc(n_out)?);
                    b.dz = Some(self.alloc.alloc(n_out)?);
                    b.weights = Some(self.alloc.alloc(n_in * n_out)?);
                    b.weights_t = Some(self.alloc.alloc(n_in * n_out)?);
                    b.wgrad = Some(self.alloc.alloc(n_in * n_out)?);
                }
                Layer::Pool(_) | Layer::Concat | Layer::Shortcut { .. } => {
                    b.output = Some(self.alloc.alloc(out_elems)?);
                    b.err = Some(self.alloc.alloc(out_elems)?);
                }
                Layer::EltwiseAdd(_) | Layer::EltwiseMul(_) => {
                    b.output = Some(self.alloc.alloc(out_elems)?);
                    b.pre = Some(self.alloc.alloc(out_elems)?);
                    b.err = Some(self.alloc.alloc(out_elems)?);
                    b.dz = Some(self.alloc.alloc(out_elems)?);
                }
                Layer::Act(_) => {
                    // The pre-activation values are the producer's output;
                    // only the result, error and derivative need homes.
                    b.output = Some(self.alloc.alloc(out_elems)?);
                    b.err = Some(self.alloc.alloc(out_elems)?);
                    b.dz = Some(self.alloc.alloc(out_elems)?);
                }
                Layer::Loss => {
                    b.golden = Some(self.alloc.alloc(out_elems * self.batch as u32)?);
                }
                other => {
                    return Err(Error::Codegen {
                        detail: format!("unsupported layer kind {}", other.type_tag()),
                    })
                }
            }
            let host_owned_input = self.looped() && matches!(node.layer(), Layer::Input(_));
            if !host_owned_input {
                self.track(b.output);
            }
            self.track(b.pre);
            self.track(b.err);
            self.track(b.dz);
            self.buffers[id.index()] = b;
        }
        Ok(())
    }

    // --- access recording -------------------------------------------------

    fn read(&mut self, b: BufferLoc) {
        if let Some(c) = self.counts.get_mut(&key(b)) {
            c.1 += 1;
        }
    }

    fn write(&mut self, b: BufferLoc) {
        if let Some(c) = self.counts.get_mut(&key(b)) {
            c.0 += 1;
        }
    }

    // --- emission ----------------------------------------------------------

    fn bufs(&self, id: LayerId) -> LayerBuffers {
        self.buffers[id.index()]
    }

    fn looped(&self) -> bool {
        self.batch > 1
    }

    fn input_id(&self) -> LayerId {
        self.net.input().id()
    }

    /// A reference `elems` into `buf`. When the buffer belongs to the
    /// input layer (or the golden array) in looped mode, the reference is
    /// register-indirect off the per-image base in `r1` (computing the
    /// concrete address into `r2` first), and the program gets a loop
    /// wrapper advancing `r1` by the image stride.
    fn read_ref(
        &mut self,
        insts: &mut Vec<Inst>,
        owner: LayerId,
        buf: BufferLoc,
        elems: u32,
        per_image_len: u32,
    ) -> MemRef {
        if self.looped() && owner == self.input_id() {
            self.image_reg = Some((buf.offset, per_image_len));
            insts.push(Inst::Addri {
                rd: Reg::R2,
                rs: Reg::R1,
                imm: i64::from(elems),
            });
            MemRef {
                tile: TileRef(buf.tile),
                addr: Addr::Reg(Reg::R2),
            }
        } else {
            buf.mem_at(elems)
        }
    }

    /// Zeroes `len` elements at `dst` from the zeros region (looped-mode
    /// self-clearing before scatter accumulation). Counts as an update on
    /// the destination buffer `owner_buf`.
    fn emit_zero(&mut self, insts: &mut Vec<Inst>, dst: MemRef, len: u32, owner_buf: BufferLoc) {
        let zeros = self.zeros.expect("zeros region allocated in looped mode");
        assert!(len <= zeros.len, "zeros region sized to the largest buffer");
        insts.push(Inst::DmaLoad {
            src: zeros.mem(),
            dst,
            len,
            accumulate: false,
        });
        self.write(owner_buf);
    }

    fn emit_all(&mut self) -> Result<()> {
        let ids: Vec<LayerId> = self.net.layers().map(|n| n.id()).collect();
        for id in ids {
            match *self.net.node(id).layer() {
                Layer::Conv(c) => self.emit_conv(id, c)?,
                Layer::Pool(p) => self.emit_pool(id, p),
                Layer::Fc(f) => self.emit_fc(id, f),
                Layer::EltwiseAdd(act) => self.emit_eltwise(id, act),
                Layer::EltwiseMul(act) => self.emit_eltwise_mul(id, act),
                Layer::Act(act) => self.emit_standalone_act(id, act),
                Layer::Concat => self.emit_concat(id),
                Layer::Shortcut {
                    stride,
                    out_features,
                } => self.emit_shortcut(id, stride, out_features),
                Layer::Loss => self.emit_loss(id),
                _ => {}
            }
        }
        Ok(())
    }

    fn act_kind(a: Activation) -> Option<ActKind> {
        match a {
            Activation::None => None,
            Activation::Relu => Some(ActKind::Relu),
            Activation::Tanh => Some(ActKind::Tanh),
            Activation::Sigmoid => Some(ActKind::Sigmoid),
        }
    }

    /// Emits `dst = act(src)`, or a copy for the identity activation.
    fn emit_act(&mut self, insts: &mut Vec<Inst>, a: Activation, src: BufferLoc, dst: BufferLoc) {
        match Self::act_kind(a) {
            Some(kind) => insts.push(Inst::NdActFn {
                kind,
                src: src.mem(),
                len: src.len,
                dst: dst.mem(),
            }),
            None => insts.push(Inst::DmaLoad {
                src: src.mem(),
                dst: dst.mem(),
                len: src.len,
                accumulate: false,
            }),
        }
        self.read(src);
        self.write(dst);
    }

    /// Emits `dz = err * act'(pre)`, or a copy for the identity activation.
    fn emit_act_bwd(
        &mut self,
        insts: &mut Vec<Inst>,
        a: Activation,
        pre: Option<BufferLoc>,
        err: BufferLoc,
        dz: BufferLoc,
    ) {
        match (Self::act_kind(a), pre) {
            (Some(kind), Some(pre)) => {
                insts.push(Inst::NdActBwd {
                    kind,
                    pre: pre.mem(),
                    err: err.mem(),
                    len: err.len,
                    dst: dz.mem(),
                });
                self.read(pre);
                self.read(err);
                self.write(dz);
            }
            _ => {
                insts.push(Inst::DmaLoad {
                    src: err.mem(),
                    dst: dz.mem(),
                    len: err.len,
                    accumulate: false,
                });
                self.read(err);
                self.write(dz);
            }
        }
    }

    fn push_program(&mut self, id: LayerId, step: &'static str, insts: Vec<Inst>) {
        let mut insts = insts;
        if self.looped() && !insts.is_empty() {
            // Epoch barrier: every program announces the start of its
            // image by an accumulating write into the epoch token and
            // retires the image by reading it. The token's tracker
            // (updates = reads = #programs per generation) then gates each
            // program's next-image *start-write* on every program having
            // *finished* the previous image — a full inter-image barrier
            // built purely from MEMTRACK generation-wrap semantics. (The
            // paper instead double-buffers features/errors to pipeline
            // images; the functional target favors the simpler barrier —
            // pipelining is the performance simulator's concern.)
            let token = self.epoch_token.expect("token allocated in looped mode");
            let scratch = self.token_scratch.expect("scratch allocated");
            let zeros = self.zeros.expect("zeros allocated");
            let mut body = vec![Inst::DmaStore {
                src: zeros.mem(),
                dst: token.mem(),
                len: 1,
                accumulate: true,
            }];
            body.append(&mut insts);
            body.push(Inst::DmaLoad {
                src: token.mem(),
                dst: scratch.mem(),
                len: 1,
                accumulate: false,
            });
            insts = body;
            let image_reg = self.image_reg.take();
            let mut wrapped = vec![Inst::Ldri {
                rd: Reg::R0,
                value: self.batch as i64,
            }];
            if let Some((base, _)) = image_reg {
                wrapped.push(Inst::Ldri {
                    rd: Reg::R1,
                    value: i64::from(base),
                });
            }
            let top = wrapped.len();
            let body_len = insts.len();
            wrapped.append(&mut insts);
            if let Some((_, stride)) = image_reg {
                wrapped.push(Inst::Addri {
                    rd: Reg::R1,
                    rs: Reg::R1,
                    imm: i64::from(stride),
                });
            }
            wrapped.push(Inst::Subri {
                rd: Reg::R0,
                rs: Reg::R0,
                imm: 1,
            });
            // BNEZ at index `at` jumps to `at + 1 + offset`; target = top.
            let at = wrapped.len();
            let offset = top as i64 - at as i64 - 1;
            wrapped.push(Inst::Bnez {
                rs: Reg::R0,
                offset: i32::try_from(offset).expect("program fits i32 offsets"),
            });
            let _ = body_len;
            insts = wrapped;
        } else {
            self.image_reg = None;
        }
        insts.push(Inst::Halt);
        self.programs.push((id, step, insts));
    }

    fn emit_conv(&mut self, id: LayerId, c: scaledeep_dnn::Conv) -> Result<()> {
        let node = self.net.node(id);
        let prev_id = node.inputs()[0];
        let prev = self.bufs(prev_id);
        let me = self.bufs(id);
        let in_shape = self.net.input_shapes(id)[0];
        let out = node.output_shape();
        if c.stride != 1 {
            return Err(Error::Codegen {
                detail: format!(
                    "functional target requires stride-1 convolutions, `{}` has stride {}",
                    node.name(),
                    c.stride
                ),
            });
        }
        if out.height != out.width || out.height > u8::MAX as usize {
            return Err(Error::Codegen {
                detail: format!(
                    "WG needs square output features <= 255, `{}` is {}x{}",
                    node.name(),
                    out.height,
                    out.width
                ),
            });
        }
        let (ih, iw) = (in_shape.height as u16, in_shape.width as u16);
        let (oh, ow) = (out.height as u16, out.width as u16);
        let k = c.kernel as u8;
        let cin_g = in_shape.features / c.groups;
        let cout_g = c.out_features / c.groups;
        let fe_in = (in_shape.height * in_shape.width) as u32;
        let fe_out = (out.height * out.width) as u32;
        let k2 = (c.kernel * c.kernel) as u32;
        let prev_out = prev.output.expect("producer has an output buffer");
        let prev_out_len = in_shape.elems() as u32;
        let weights = me.weights.expect("conv has weights");
        let pre = me.pre.expect("conv has pre buffer");
        // Kernel index in input-major layout [i_global][o_in_group][k][k].
        let widx = |i: usize, o_local: usize| (i as u32 * cout_g as u32 + o_local as u32) * k2;

        // ---- FP ----
        let lanes = cout_g.min(4);
        let mut fp = Vec::new();
        for g in 0..c.groups {
            let mut ob = 0;
            while ob < cout_g {
                let nl = lanes.min(cout_g - ob);
                // Batch convolution: nl kernels per input feature, but the
                // kernels for distinct lanes must be contiguous — they are
                // for a fixed input feature in input-major layout only if
                // they sit at consecutive o_local. Emit per input feature.
                for (idx, ig) in (0..cin_g).enumerate() {
                    let i = g * cin_g + ig;
                    let input_ref =
                        self.read_ref(&mut fp, prev_id, prev_out, i as u32 * fe_in, prev_out_len);
                    fp.push(Inst::NdConv {
                        input: input_ref,
                        in_h: ih,
                        in_w: iw,
                        kernel: weights.mem_at(widx(i, ob)),
                        k,
                        stride: 1,
                        pad: c.pad as u8,
                        lanes: nl as u8,
                        output: pre.mem_at((g * cout_g + ob) as u32 * fe_out),
                        out_h: oh,
                        out_w: ow,
                        accumulate: idx > 0,
                        flip: false,
                    });
                    self.read(prev_out);
                    self.write(pre);
                }
                ob += nl;
            }
        }
        self.emit_act(
            &mut fp,
            c.activation,
            pre,
            me.output.expect("conv has output"),
        );
        self.push_program(id, "FP", fp);

        // ---- BP ----
        let mut bp = Vec::new();
        let dz = me.dz.expect("conv has dz");
        self.emit_act_bwd(&mut bp, c.activation, me.pre, me.err.expect("conv err"), dz);
        if let Some(prev_err) = prev.err {
            let bp_pad = (c.kernel - 1 - c.pad) as u8;
            for g in 0..c.groups {
                for ig in 0..cin_g {
                    let i = g * cin_g + ig;
                    for ol in 0..cout_g {
                        let o = g * cout_g + ol;
                        // In looped mode the error buffer is reused across
                        // images: the first contribution overwrites.
                        let accumulate = !(self.looped() && ol == 0);
                        bp.push(Inst::NdConv {
                            input: dz.mem_at(o as u32 * fe_out),
                            in_h: oh,
                            in_w: ow,
                            kernel: weights.mem_at(widx(i, ol)),
                            k,
                            stride: 1,
                            pad: bp_pad,
                            lanes: 1,
                            output: prev_err.mem_at(i as u32 * fe_in),
                            out_h: ih,
                            out_w: iw,
                            accumulate,
                            flip: true,
                        });
                        self.read(dz);
                        self.write(prev_err);
                    }
                }
            }
        }
        self.push_program(id, "BP", bp);

        // ---- WG ----
        let mut wg = Vec::new();
        let wgrad = me.wgrad.expect("conv has wgrad");
        for g in 0..c.groups {
            for ig in 0..cin_g {
                let i = g * cin_g + ig;
                for ol in 0..cout_g {
                    let o = g * cout_g + ol;
                    let input_ref =
                        self.read_ref(&mut wg, prev_id, prev_out, i as u32 * fe_in, prev_out_len);
                    wg.push(Inst::NdConv {
                        input: input_ref,
                        in_h: ih,
                        in_w: iw,
                        kernel: dz.mem_at(o as u32 * fe_out),
                        k: oh as u8,
                        stride: 1,
                        pad: c.pad as u8,
                        lanes: 1,
                        output: wgrad.mem_at(widx(i, ol)),
                        out_h: k as u16,
                        out_w: k as u16,
                        accumulate: true,
                        flip: false,
                    });
                    self.read(prev_out);
                    self.read(dz);
                }
            }
        }
        self.push_program(id, "WG", wg);
        Ok(())
    }

    fn emit_pool(&mut self, id: LayerId, p: scaledeep_dnn::Pool) {
        let node = self.net.node(id);
        let prev_id = node.inputs()[0];
        let prev = self.bufs(prev_id);
        let me = self.bufs(id);
        let in_shape = self.net.input_shapes(id)[0];
        let out = node.output_shape();
        let fe_in = (in_shape.height * in_shape.width) as u32;
        let fe_out = (out.height * out.width) as u32;
        let mode = match p.kind {
            scaledeep_dnn::PoolKind::Max => PoolMode::Max,
            scaledeep_dnn::PoolKind::Avg => PoolMode::Avg,
        };
        let prev_out = prev.output.expect("producer output");
        let prev_out_len = in_shape.elems() as u32;
        let output = me.output.expect("pool output");

        let mut fp = Vec::new();
        for f in 0..in_shape.features {
            let src = self.read_ref(&mut fp, prev_id, prev_out, f as u32 * fe_in, prev_out_len);
            fp.push(Inst::NdSubsamp {
                mode,
                src,
                in_h: in_shape.height as u16,
                in_w: in_shape.width as u16,
                window: p.window as u8,
                stride: p.stride as u8,
                pad: p.pad as u8,
                ceil: p.ceil_mode,
                dst: output.mem_at(f as u32 * fe_out),
            });
            self.read(prev_out);
            self.write(output);
        }
        self.push_program(id, "FP", fp);

        let mut bp = Vec::new();
        if let Some(prev_err) = prev.err {
            let err = me.err.expect("pool err");
            for f in 0..in_shape.features {
                if self.looped() {
                    // Scatter targets must start from zero each image.
                    let dst = prev_err.mem_at(f as u32 * fe_in);
                    self.emit_zero(&mut bp, dst, fe_in, prev_err);
                }
                let fwd = self.read_ref(&mut bp, prev_id, prev_out, f as u32 * fe_in, prev_out_len);
                bp.push(Inst::NdUpsamp {
                    mode,
                    err: err.mem_at(f as u32 * fe_out),
                    fwd,
                    in_h: in_shape.height as u16,
                    in_w: in_shape.width as u16,
                    window: p.window as u8,
                    stride: p.stride as u8,
                    pad: p.pad as u8,
                    ceil: p.ceil_mode,
                    dst: prev_err.mem_at(f as u32 * fe_in),
                });
                self.read(err);
                self.read(prev_out);
                self.write(prev_err);
            }
        }
        self.push_program(id, "BP", bp);
    }

    fn emit_fc(&mut self, id: LayerId, f: scaledeep_dnn::Fc) {
        let node = self.net.node(id);
        let prev_id = node.inputs()[0];
        let prev = self.bufs(prev_id);
        let me = self.bufs(id);
        let n_in = self.net.fan_in_elems(id) as u32;
        let n_out = f.out_neurons as u32;
        let prev_out = prev.output.expect("producer output");
        let weights = me.weights.expect("fc weights");
        let pre = me.pre.expect("fc pre");

        let mut fp = Vec::new();
        let input_ref = self.read_ref(&mut fp, prev_id, prev_out, 0, n_in);
        fp.push(Inst::MatMul {
            input: input_ref,
            n_in,
            matrix: weights.mem(),
            rows: n_out,
            output: pre.mem(),
            accumulate: false,
        });
        self.read(prev_out);
        self.write(pre);
        self.emit_act(&mut fp, f.activation, pre, me.output.expect("fc output"));
        self.push_program(id, "FP", fp);

        let mut bp = Vec::new();
        let dz = me.dz.expect("fc dz");
        self.emit_act_bwd(&mut bp, f.activation, me.pre, me.err.expect("fc err"), dz);
        if let Some(prev_err) = prev.err {
            bp.push(Inst::MatMul {
                input: dz.mem(),
                n_in: n_out,
                matrix: me.weights_t.expect("fc transposed weights").mem(),
                rows: n_in,
                output: prev_err.mem(),
                // Looped mode reuses the buffer: the single consumer's
                // write overwrites the previous image's errors.
                accumulate: !self.looped(),
            });
            self.read(dz);
            self.write(prev_err);
        }
        self.push_program(id, "BP", bp);

        let mut wg = Vec::new();
        let wgrad = me.wgrad.expect("fc wgrad");
        for o in 0..n_out {
            let src = self.read_ref(&mut wg, prev_id, prev_out, 0, n_in);
            wg.push(Inst::VecScaleAcc {
                src,
                len: n_in,
                scalar: dz.mem_at(o),
                dst: wgrad.mem_at(o * n_in),
                elementwise: false,
            });
            self.read(prev_out);
            self.read(dz);
        }
        self.push_program(id, "WG", wg);
    }

    fn emit_eltwise(&mut self, id: LayerId, act: Activation) {
        let node = self.net.node(id);
        let (a_id, b_id) = (node.inputs()[0], node.inputs()[1]);
        let a = self.bufs(a_id);
        let b = self.bufs(b_id);
        let me = self.bufs(id);
        let pre = me.pre.expect("eltwise pre");
        let a_out = a.output.expect("branch a output");
        let b_out = b.output.expect("branch b output");

        let mut fp = vec![
            Inst::DmaLoad {
                src: a_out.mem(),
                dst: pre.mem(),
                len: pre.len,
                accumulate: false,
            },
            Inst::NdAcc {
                dst: pre.mem(),
                src: b_out.mem(),
                len: pre.len,
            },
        ];
        self.read(a_out);
        self.write(pre);
        self.read(b_out);
        self.write(pre);
        self.emit_act(&mut fp, act, pre, me.output.expect("eltwise output"));
        self.push_program(id, "FP", fp);

        let mut bp = Vec::new();
        let dz = me.dz.expect("eltwise dz");
        self.emit_act_bwd(&mut bp, act, me.pre, me.err.expect("eltwise err"), dz);
        for branch in [a, b] {
            if let Some(err) = branch.err {
                bp.push(Inst::DmaStore {
                    src: dz.mem(),
                    dst: err.mem(),
                    len: dz.len,
                    accumulate: !self.looped(),
                });
                self.read(dz);
                self.write(err);
            }
        }
        self.push_program(id, "BP", bp);
    }

    fn emit_eltwise_mul(&mut self, id: LayerId, act: Activation) {
        let node = self.net.node(id);
        let (a_id, b_id) = (node.inputs()[0], node.inputs()[1]);
        let a = self.bufs(a_id);
        let b = self.bufs(b_id);
        let me = self.bufs(id);
        let pre = me.pre.expect("eltmul pre");
        let a_out = a.output.expect("branch a output");
        let b_out = b.output.expect("branch b output");

        // FP: pre = a (*) b via the SFU vector multiply, accumulated into
        // a zero-initialized buffer.
        let mut fp = Vec::new();
        self.emit_zero(&mut fp, pre.mem(), pre.len, pre);
        fp.push(Inst::VecScaleAcc {
            src: a_out.mem(),
            len: pre.len,
            scalar: b_out.mem(),
            dst: pre.mem(),
            elementwise: true,
        });
        self.read(a_out);
        self.read(b_out);
        self.write(pre);
        self.emit_act(&mut fp, act, pre, me.output.expect("eltmul output"));
        self.push_program(id, "FP", fp);

        // BP: da = dz (*) b, db = dz (*) a.
        let mut bp = Vec::new();
        let dz = me.dz.expect("eltmul dz");
        self.emit_act_bwd(&mut bp, act, me.pre, me.err.expect("eltmul err"), dz);
        for (branch, other_out) in [(a, b_out), (b, a_out)] {
            if let Some(err) = branch.err {
                if self.looped() {
                    self.emit_zero(&mut bp, err.mem(), err.len, err);
                }
                bp.push(Inst::VecScaleAcc {
                    src: dz.mem(),
                    len: dz.len,
                    scalar: other_out.mem(),
                    dst: err.mem(),
                    elementwise: true,
                });
                self.read(dz);
                self.read(other_out);
                self.write(err);
            }
        }
        self.push_program(id, "BP", bp);
    }

    fn emit_standalone_act(&mut self, id: LayerId, act: Activation) {
        let node = self.net.node(id);
        let prev_id = node.inputs()[0];
        let prev = self.bufs(prev_id);
        let me = self.bufs(id);
        let prev_out = prev.output.expect("producer output");

        let mut fp = Vec::new();
        self.emit_act(&mut fp, act, prev_out, me.output.expect("act output"));
        self.push_program(id, "FP", fp);

        // BP: the pre-activation values are the producer's output.
        let mut bp = Vec::new();
        let dz = me.dz.expect("act dz");
        self.emit_act_bwd(&mut bp, act, Some(prev_out), me.err.expect("act err"), dz);
        if let Some(prev_err) = prev.err {
            bp.push(Inst::DmaStore {
                src: dz.mem(),
                dst: prev_err.mem(),
                len: dz.len,
                accumulate: !self.looped(),
            });
            self.read(dz);
            self.write(prev_err);
        }
        self.push_program(id, "BP", bp);
    }

    fn emit_concat(&mut self, id: LayerId) {
        let node = self.net.node(id).clone();
        let me = self.bufs(id);
        let output = me.output.expect("concat output");
        let err = me.err.expect("concat err");

        let mut fp = Vec::new();
        let mut bp = Vec::new();
        let mut offset = 0u32;
        for &input in node.inputs() {
            let branch = self.bufs(input);
            let b_out = branch.output.expect("branch output");
            fp.push(Inst::DmaLoad {
                src: b_out.mem(),
                dst: output.mem_at(offset),
                len: b_out.len,
                accumulate: false,
            });
            self.read(b_out);
            self.write(output);
            if let Some(b_err) = branch.err {
                bp.push(Inst::DmaStore {
                    src: err.mem_at(offset),
                    dst: b_err.mem(),
                    len: b_err.len,
                    accumulate: !self.looped(),
                });
                self.read(err);
                self.write(b_err);
            }
            offset += b_out.len;
        }
        self.push_program(id, "FP", fp);
        self.push_program(id, "BP", bp);
    }

    fn emit_shortcut(&mut self, id: LayerId, stride: usize, _out_features: usize) {
        let node = self.net.node(id);
        let prev_id = node.inputs()[0];
        let prev = self.bufs(prev_id);
        let me = self.bufs(id);
        let in_shape = self.net.input_shapes(id)[0];
        let out = node.output_shape();
        let fe_in = (in_shape.height * in_shape.width) as u32;
        let fe_out = (out.height * out.width) as u32;
        let prev_out = prev.output.expect("producer output");
        let prev_out_len = in_shape.elems() as u32;
        let output = me.output.expect("shortcut output");

        // FP: 1x1 strided max-subsampling is an exact strided copy; the
        // zero-padded extra features stay at zero (host-cleared in
        // unrolled mode; self-cleared per image in looped mode).
        let mut fp = Vec::new();
        if self.looped() {
            self.emit_zero(&mut fp, output.mem(), output.len, output);
        }
        for f in 0..in_shape.features {
            let src = self.read_ref(&mut fp, prev_id, prev_out, f as u32 * fe_in, prev_out_len);
            fp.push(Inst::NdSubsamp {
                mode: PoolMode::Max,
                src,
                in_h: in_shape.height as u16,
                in_w: in_shape.width as u16,
                window: 1,
                stride: stride as u8,
                pad: 0,
                ceil: false,
                dst: output.mem_at(f as u32 * fe_out),
            });
            self.read(prev_out);
            self.write(output);
        }
        self.push_program(id, "FP", fp);

        let mut bp = Vec::new();
        if let Some(prev_err) = prev.err {
            let err = me.err.expect("shortcut err");
            for f in 0..in_shape.features {
                if self.looped() {
                    let dst = prev_err.mem_at(f as u32 * fe_in);
                    self.emit_zero(&mut bp, dst, fe_in, prev_err);
                }
                let fwd = self.read_ref(&mut bp, prev_id, prev_out, f as u32 * fe_in, prev_out_len);
                bp.push(Inst::NdUpsamp {
                    mode: PoolMode::Max,
                    err: err.mem_at(f as u32 * fe_out),
                    fwd,
                    in_h: in_shape.height as u16,
                    in_w: in_shape.width as u16,
                    window: 1,
                    stride: stride as u8,
                    pad: 0,
                    ceil: false,
                    dst: prev_err.mem_at(f as u32 * fe_in),
                });
                self.read(err);
                self.read(prev_out);
                self.write(prev_err);
            }
        }
        self.push_program(id, "BP", bp);
    }

    fn emit_loss(&mut self, id: LayerId) {
        let node = self.net.node(id);
        let prev_id = node.inputs()[0];
        let prev = self.bufs(prev_id);
        let me = self.bufs(id);
        let prev_out = prev.output.expect("classifier output");
        let prev_err = prev.err.expect("classifier error");
        let golden = me.golden.expect("loss golden");
        let neg_one = self.const_neg_one.expect("constant pool allocated");

        // err = output - golden. Unrolled mode accumulates into the
        // host-cleared buffer; looped mode overwrites and walks the golden
        // array register-indirectly.
        let per_image = self.net.node(prev_id).output_shape().elems() as u32;
        let mut bp = Vec::new();
        bp.push(Inst::DmaLoad {
            src: prev_out.mem(),
            dst: prev_err.mem(),
            len: prev_out.len,
            accumulate: !self.looped(),
        });
        let golden_ref = if self.looped() {
            self.image_reg = Some((golden.offset, per_image));
            bp.push(Inst::Addri {
                rd: Reg::R2,
                rs: Reg::R1,
                imm: 0,
            });
            MemRef {
                tile: TileRef(golden.tile),
                addr: Addr::Reg(Reg::R2),
            }
        } else {
            golden.mem()
        };
        bp.push(Inst::VecScaleAcc {
            src: golden_ref,
            len: per_image,
            scalar: neg_one.mem(),
            dst: prev_err.mem(),
            elementwise: false,
        });
        self.read(prev_out);
        self.write(prev_err);
        self.write(prev_err);
        self.push_program(id, "BP", bp);
    }

    // --- finalization -------------------------------------------------------

    fn finish(mut self) -> Result<CompiledNetwork> {
        // The epoch token is written once and read once by every program
        // per image (generation).
        if let Some(token) = self.epoch_token {
            let n = u32::try_from(self.programs.len()).expect("program count fits u32");
            self.counts.insert(key(token), (n, n));
        }
        // Build tracker specs from the observed access counts. Buffers with
        // zero observed updates (e.g. the input image) are host-written and
        // become immediately readable (num_updates = 0).
        let mut trackers = Vec::new();
        let mut by_buffer: HashMap<BufKey, TrackerSpec> = HashMap::new();
        for (&(tile, addr, len), &(updates, reads)) in &self.counts {
            let num_updates = u16::try_from(updates).map_err(|_| Error::Codegen {
                detail: format!("tracker update count {updates} exceeds 16-bit counter"),
            })?;
            let num_reads = u16::try_from(reads).map_err(|_| Error::Codegen {
                detail: format!("tracker read count {reads} exceeds 16-bit counter"),
            })?;
            let spec = TrackerSpec {
                tile,
                addr,
                len,
                num_updates,
                num_reads,
            };
            trackers.push(spec);
            by_buffer.insert((tile, addr, len), spec);
        }
        trackers.sort_by_key(|t| (t.tile, t.addr));

        // Prepend MEMTRACK preambles: each layer's first program arms the
        // trackers for the buffers that layer owns.
        let mut programs = Vec::new();
        let mut armed_for_layer: HashMap<usize, Vec<Inst>> = HashMap::new();
        for (idx, b) in self.buffers.iter().enumerate() {
            let mut pre = Vec::new();
            for buf in [b.output, b.pre, b.err, b.dz].into_iter().flatten() {
                if let Some(spec) = by_buffer.get(&key(buf)) {
                    pre.push(Inst::MemTrack {
                        tile: scaledeep_isa::TileRef(spec.tile),
                        addr: spec.addr,
                        len: spec.len,
                        num_updates: spec.num_updates,
                        num_reads: spec.num_reads,
                    });
                }
            }
            armed_for_layer.insert(idx, pre);
        }
        let mut first_program_of_layer: HashMap<usize, bool> = HashMap::new();
        for (id, step, mut insts) in self.programs {
            let idx = id.index();
            if !first_program_of_layer.get(&idx).copied().unwrap_or(false) {
                let preamble = armed_for_layer.remove(&idx).unwrap_or_default();
                let mut with_pre = preamble;
                with_pre.append(&mut insts);
                insts = with_pre;
                first_program_of_layer.insert(idx, true);
            }
            programs.push(Program::new(format!("L{idx}.{step}"), insts));
        }

        Ok(CompiledNetwork {
            net_name: self.net.name().to_string(),
            buffers: self.buffers,
            programs,
            trackers,
            mem_tiles: self.mem_tiles,
            const_neg_one: self.const_neg_one.expect("allocated"),
            dropped_biases: self.dropped_biases,
            minibatch: self.batch,
            zeros: self.zeros,
        })
    }
}

/// Converts reference-executor conv weights (`[out][in_g][k][k]`) to the
/// compiled input-major layout (`[in][out_g][k][k]`).
pub fn conv_weights_to_input_major(
    weights: &[f32],
    cin: usize,
    cout: usize,
    groups: usize,
    k: usize,
) -> Vec<f32> {
    let cin_g = cin / groups;
    let cout_g = cout / groups;
    let k2 = k * k;
    let mut out = vec![0.0; weights.len()];
    for o in 0..cout {
        let g = o / cout_g;
        let ol = o % cout_g;
        for igl in 0..cin_g {
            let i = g * cin_g + igl;
            let src = (o * cin_g + igl) * k2;
            let dst = (i * cout_g + ol) * k2;
            out[dst..dst + k2].copy_from_slice(&weights[src..src + k2]);
        }
    }
    out
}

/// Converts compiled input-major conv weight *gradients* back to the
/// reference layout (`[out][in_g][k][k]`).
pub fn conv_grads_to_output_major(
    grads: &[f32],
    cin: usize,
    cout: usize,
    groups: usize,
    k: usize,
) -> Vec<f32> {
    let cin_g = cin / groups;
    let cout_g = cout / groups;
    let k2 = k * k;
    let mut out = vec![0.0; grads.len()];
    for o in 0..cout {
        let g = o / cout_g;
        let ol = o % cout_g;
        for igl in 0..cin_g {
            let i = g * cin_g + igl;
            let src = (i * cout_g + ol) * k2;
            let dst = (o * cin_g + igl) * k2;
            out[dst..dst + k2].copy_from_slice(&grads[src..src + k2]);
        }
    }
    out
}

/// Transposes FC weights from row-major `[out][in]` to `[in][out]`.
pub fn fc_weights_transpose(weights: &[f32], n_in: usize, n_out: usize) -> Vec<f32> {
    let mut t = vec![0.0; weights.len()];
    for o in 0..n_out {
        for i in 0..n_in {
            t[i * n_out + o] = weights[o * n_in + i];
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Healthy single-image compile (the pipeline's codegen phase with
    /// default options).
    fn compile_functional(net: &Network, opts: &FuncTargetOptions) -> Result<CompiledNetwork> {
        compile_functional_degraded(net, opts, 1, &[])
    }
    use scaledeep_dnn::{Conv, Fc, FeatureShape, NetworkBuilder, Pool};

    fn tiny_net() -> Network {
        let mut b = NetworkBuilder::new("t", FeatureShape::new(1, 6, 6));
        b.conv(
            "c1",
            Conv {
                out_features: 2,
                kernel: 3,
                stride: 1,
                pad: 1,
                groups: 1,
                bias: false,
                activation: Activation::Relu,
            },
        )
        .unwrap();
        b.pool("s1", Pool::max(2, 2)).unwrap();
        let f = b
            .fc(
                "f1",
                Fc {
                    out_neurons: 3,
                    bias: false,
                    activation: Activation::None,
                },
            )
            .unwrap();
        b.finish_with_loss(f).unwrap()
    }

    #[test]
    fn compiles_tiny_network() {
        let net = tiny_net();
        let c = compile_functional(&net, &FuncTargetOptions::default()).unwrap();
        assert_eq!(c.dropped_biases, 0);
        // conv: FP+BP+WG, pool: FP+BP, fc: FP+BP+WG, loss: BP = 9 programs.
        assert_eq!(c.programs.len(), 9);
        assert!(c.total_insts() > 10);
    }

    #[test]
    fn programs_end_with_halt() {
        let net = tiny_net();
        let c = compile_functional(&net, &FuncTargetOptions::default()).unwrap();
        for p in &c.programs {
            assert_eq!(*p.insts().last().unwrap(), Inst::Halt, "{}", p.name());
        }
    }

    #[test]
    fn trackers_cover_dataflow_buffers() {
        let net = tiny_net();
        let c = compile_functional(&net, &FuncTargetOptions::default()).unwrap();
        // input.output, conv.{output,pre,err,dz}, pool.{output,err},
        // fc.{output,pre,err,dz}, = 11 tracked ranges.
        assert_eq!(c.trackers.len(), 11);
        // The input image has no program writes: readable immediately.
        let input_buf = c.buffers[0].output.unwrap();
        let t = c
            .trackers
            .iter()
            .find(|t| t.tile == input_buf.tile && t.addr == input_buf.offset)
            .unwrap();
        assert_eq!(t.num_updates, 0);
        assert!(t.num_reads > 0);
    }

    #[test]
    fn degraded_compile_avoids_dead_tiles() {
        let net = tiny_net();
        let opts = FuncTargetOptions::default();
        let c = compile_functional_degraded(&net, &opts, 1, &[0, 3]).unwrap();
        let on_dead = |b: &Option<BufferLoc>| b.is_some_and(|b| b.tile == 0 || b.tile == 3);
        for lb in &c.buffers {
            for loc in [
                &lb.output,
                &lb.pre,
                &lb.err,
                &lb.dz,
                &lb.weights,
                &lb.weights_t,
                &lb.wgrad,
                &lb.golden,
            ] {
                assert!(!on_dead(loc), "buffer placed on a dead tile: {loc:?}");
            }
        }
        assert!(c.const_neg_one.tile != 0 && c.const_neg_one.tile != 3);
        // Same program structure as the healthy compile.
        let healthy = compile_functional(&net, &opts).unwrap();
        assert_eq!(c.programs.len(), healthy.programs.len());
    }

    #[test]
    fn degraded_compile_with_no_live_tiles_is_an_error() {
        let net = tiny_net();
        let opts = FuncTargetOptions {
            mem_tiles: 2,
            ..FuncTargetOptions::default()
        };
        let err = compile_functional_degraded(&net, &opts, 1, &[0, 1]).unwrap_err();
        assert!(matches!(err, Error::Codegen { .. }));
    }

    #[test]
    fn stride_2_conv_is_rejected() {
        let mut b = NetworkBuilder::new("s2", FeatureShape::new(1, 8, 8));
        let c = b.conv("c", Conv::relu(2, 3, 2, 1)).unwrap();
        let net = b.finish_with_loss(c).unwrap();
        let err = compile_functional(&net, &FuncTargetOptions::default()).unwrap_err();
        assert!(matches!(err, Error::Codegen { .. }));
    }

    #[test]
    fn bias_layers_are_counted() {
        let mut b = NetworkBuilder::new("bias", FeatureShape::new(1, 6, 6));
        let c = b.conv("c", Conv::relu(2, 3, 1, 1)).unwrap(); // bias: true
        let net = b.finish_with_loss(c).unwrap();
        let c = compile_functional(&net, &FuncTargetOptions::default()).unwrap();
        assert_eq!(c.dropped_biases, 1);
    }

    #[test]
    fn weight_layout_round_trips() {
        let cin = 3;
        let cout = 4;
        let k = 2;
        let w: Vec<f32> = (0..cin * cout * k * k).map(|i| i as f32).collect();
        let im = conv_weights_to_input_major(&w, cin, cout, 1, k);
        let back = conv_grads_to_output_major(&im, cin, cout, 1, k);
        assert_eq!(w, back);
        // Input-major: kernels for consecutive outputs of one input are
        // contiguous.
        let k2 = k * k;
        assert_eq!(im[0..k2], w[0..k2]); // (i=0, o=0)
        assert_eq!(im[k2..2 * k2], w[cin * k2..cin * k2 + k2]); // (i=0, o=1)
    }

    #[test]
    fn grouped_weight_layout_round_trips() {
        let (cin, cout, groups, k) = (4, 6, 2, 3);
        let n = cout * (cin / groups) * k * k;
        let w: Vec<f32> = (0..n).map(|i| (i as f32).sin()).collect();
        let im = conv_weights_to_input_major(&w, cin, cout, groups, k);
        let back = conv_grads_to_output_major(&im, cin, cout, groups, k);
        assert_eq!(w, back);
    }

    #[test]
    fn fc_transpose_is_involution() {
        let w: Vec<f32> = (0..12).map(|i| i as f32).collect();
        let t = fc_weights_transpose(&w, 4, 3);
        let back = fc_weights_transpose(&t, 3, 4);
        assert_eq!(w, back);
        assert_eq!(t[0], w[0]);
        assert_eq!(t[1], w[4]); // t[i=0,o=1] = w[o=1,i=0]
    }
}
