//! Workload mapping (paper §4.1, Figure 13 STEP 1–6).

pub(crate) mod arrays;
pub(crate) mod columns;
pub(crate) mod state;

pub use arrays::ArrayPlan;
pub use state::StateBudget;

use crate::error::Result;
use scaledeep_arch::NodeConfig;
use scaledeep_dnn::{Layer, LayerId, Network};

/// Which chip family a layer executes on (STEP 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// CONV / SAMP / element-wise layers → ConvLayer chips.
    Conv,
    /// FC layers → the FcLayer hub chip.
    Fc,
    /// Input / loss / pure-placement nodes: no column allocation.
    None,
}

/// The column placement of one layer (STEP 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Columns on the ConvLayer chip sequence. `first_col` is a global
    /// column index across the chips the network spans (column 16 is the
    /// first column of the second rim chip, and so on).
    Conv {
        /// First allocated global column.
        first_col: usize,
        /// Number of allocated columns.
        cols: usize,
    },
    /// Columns on the FcLayer hub chip.
    Fc {
        /// First allocated column on the hub chip.
        first_col: usize,
        /// Number of allocated columns.
        cols: usize,
    },
    /// No dedicated columns (input, loss, concat — pure data placement).
    Inline,
}

impl Placement {
    /// Number of columns allocated (0 for [`Placement::Inline`]).
    pub const fn cols(&self) -> usize {
        match self {
            Placement::Conv { cols, .. } | Placement::Fc { cols, .. } => *cols,
            Placement::Inline => 0,
        }
    }

    /// The side this placement lives on.
    pub const fn side(&self) -> Side {
        match self {
            Placement::Conv { .. } => Side::Conv,
            Placement::Fc { .. } => Side::Fc,
            Placement::Inline => Side::None,
        }
    }
}

/// A concrete MemHeavy tile coordinate within the ConvLayer chip
/// sequence: which rim chip, which column on it, which row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileCoord {
    /// Rim-chip index along the network's span (0-based).
    pub chip: usize,
    /// Column within that chip.
    pub col: usize,
    /// Row within the column.
    pub row: usize,
}

/// The set of permanently failed tiles a degraded compile must route
/// around, expressed at both failure granularities the pipeline knows:
///
/// * whole ConvLayer-chip columns for the workload mapping (a column
///   shares its memory ports and CompHeavy neighbours, so one dead tile
///   condemns its column) — *physical* global indices across the
///   rim-chip sequence, the same numbering [`Placement::Conv`] uses on a
///   healthy node; and
/// * MemHeavy tile indices of the reduced functional chip for the
///   code-generation phase (no buffer is placed on a dead tile).
///
/// Both sets flow through [`crate::pipeline::compile`] as one input, so a
/// degraded recompile is the same pipeline run with a non-empty set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FailedTiles {
    cols: std::collections::BTreeSet<usize>,
    func_tiles: std::collections::BTreeSet<u16>,
}

impl FailedTiles {
    /// No failures: the degraded pipeline degenerates to the healthy one.
    pub fn none() -> Self {
        Self::default()
    }

    /// Condemns the given physical global columns.
    pub fn from_columns<I: IntoIterator<Item = usize>>(cols: I) -> Self {
        Self {
            cols: cols.into_iter().collect(),
            func_tiles: std::collections::BTreeSet::new(),
        }
    }

    /// Condemns the columns containing the given tile coordinates.
    pub fn from_coords(coords: &[TileCoord], cols_per_chip: usize) -> Self {
        Self::from_columns(coords.iter().map(|t| t.chip * cols_per_chip.max(1) + t.col))
    }

    /// Condemns MemHeavy tiles of the reduced *functional* chip: the
    /// code-generation phase places no buffer on them. The workload
    /// mapping is unaffected (its failure unit is the column).
    pub fn from_func_tiles<I: IntoIterator<Item = u16>>(tiles: I) -> Self {
        Self {
            cols: std::collections::BTreeSet::new(),
            func_tiles: tiles.into_iter().collect(),
        }
    }

    /// Whether no tiles are condemned at either granularity.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty() && self.func_tiles.is_empty()
    }

    /// Number of condemned columns.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// Whether a physical global column is condemned.
    pub fn contains(&self, col: usize) -> bool {
        self.cols.contains(&col)
    }

    /// The condemned physical global columns, ascending.
    pub fn columns(&self) -> impl Iterator<Item = usize> + '_ {
        self.cols.iter().copied()
    }

    /// The condemned functional-chip MemHeavy tiles, ascending.
    pub fn func_tiles(&self) -> impl Iterator<Item = u16> + '_ {
        self.func_tiles.iter().copied()
    }

    /// Reassembles a set from both granularities at once
    /// (artifact deserialization — [`crate::artifact_io`]).
    pub(crate) fn from_sets(
        cols: impl IntoIterator<Item = usize>,
        func_tiles: impl IntoIterator<Item = u16>,
    ) -> Self {
        Self {
            cols: cols.into_iter().collect(),
            func_tiles: func_tiles.into_iter().collect(),
        }
    }
}

/// The complete plan for one layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerPlan {
    /// The planned layer.
    pub id: LayerId,
    /// Its name in the network.
    pub name: String,
    /// Chip side and columns (STEP 1 + 3).
    pub placement: Placement,
    /// FLOPs per image on CompHeavy arrays, per step [FP, BP, WG].
    pub comp_flops: [u64; 3],
    /// FLOPs per image on MemHeavy SFUs, per step [FP, BP, WG].
    pub mem_flops: [u64; 3],
    /// On-chip state requirement in bytes (STEP 3a; excludes weights).
    pub state_bytes: u64,
    /// Learned weight bytes (including biases).
    pub weight_bytes: u64,
    /// Whether weights + gradients reside on chip (STEP 6).
    pub weights_on_chip: bool,
    /// MemHeavy tiles available to this layer (cols × rows).
    pub tiles_total: usize,
    /// MemHeavy tiles actually holding features (STEP 4).
    pub tiles_used: usize,
    /// Output feature count.
    pub out_features: usize,
    /// Elements per output feature.
    pub feature_elems: usize,
    /// Bytes read from the previous layer's tiles per image.
    pub in_bytes: u64,
    /// Bytes written to this layer's home tiles per image.
    pub out_bytes: u64,
    /// CompHeavy array configuration and its residue utilization (STEP 5).
    pub array: ArrayPlan,
    /// Kernel edge for CONV layers (None otherwise) — lets the simulator
    /// apply Winograd's 3x3 FLOP reduction (paper §6.1 future work).
    pub conv_kernel: Option<usize>,
}

impl LayerPlan {
    /// Total compute-array FLOPs per image over a full training iteration.
    pub fn comp_flops_training(&self) -> u64 {
        self.comp_flops.iter().sum()
    }

    /// Total SFU FLOPs per image over a full training iteration.
    pub fn mem_flops_training(&self) -> u64 {
        self.mem_flops.iter().sum()
    }

    /// The concrete home tiles of this layer's features (STEP 4): the
    /// first `tiles_used` MemHeavy tiles of its column range, walked
    /// column-major. Layers sharing a column group return overlapping
    /// coordinates — they time-multiplex the same tiles.
    ///
    /// Returns an empty vector for [`Placement::Inline`] and FC-side
    /// layers (hub-chip tile coordinates use a separate numbering).
    pub fn home_tiles(&self, cols_per_chip: usize, rows: usize) -> Vec<TileCoord> {
        let Placement::Conv { first_col, cols } = self.placement else {
            return Vec::new();
        };
        let mut tiles = Vec::with_capacity(self.tiles_used);
        'outer: for c in first_col..first_col + cols {
            for row in 0..rows {
                if tiles.len() == self.tiles_used {
                    break 'outer;
                }
                tiles.push(TileCoord {
                    chip: c / cols_per_chip.max(1),
                    col: c % cols_per_chip.max(1),
                    row,
                });
            }
        }
        tiles
    }

    /// Fraction of the layer's MemHeavy tiles holding features
    /// (Figure 19's second utilization factor).
    pub fn feature_distribution_util(&self) -> f64 {
        if self.tiles_total == 0 {
            1.0
        } else {
            self.tiles_used as f64 / self.tiles_total as f64
        }
    }
}

/// The result of the workload-mapping phase.
///
/// Constructed only by the pipeline's assign-compute phase
/// ([`crate::pipeline`]); every consumer receives it through
/// [`crate::pipeline::compile`] or the [`Compiler`] facade.
#[derive(Debug, Clone, PartialEq)]
pub struct Mapping {
    pub(crate) net_name: String,
    pub(crate) plans: Vec<LayerPlan>,
    pub(crate) conv_cols_used: usize,
    pub(crate) fc_cols_used: usize,
    pub(crate) chips_spanned: usize,
    pub(crate) clusters_spanned: usize,
    pub(crate) conv_cols_per_chip: usize,
    pub(crate) wheel_batch: usize,
    pub(crate) elem_bytes: u64,
    pub(crate) col_map: Vec<usize>,
    pub(crate) failed_cols: Vec<usize>,
}

impl Mapping {
    /// The mapped network's name.
    pub fn network_name(&self) -> &str {
        &self.net_name
    }

    /// Per-layer plans, indexed by [`LayerId`] order.
    pub fn plans(&self) -> &[LayerPlan] {
        &self.plans
    }

    /// The plan for one layer.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to the mapped network.
    pub fn plan(&self, id: LayerId) -> &LayerPlan {
        &self.plans[id.index()]
    }

    /// Columns used on the ConvLayer chip sequence.
    pub fn conv_cols_used(&self) -> usize {
        self.conv_cols_used
    }

    /// Columns used on the FcLayer hub chip.
    pub fn fc_cols_used(&self) -> usize {
        self.fc_cols_used
    }

    /// ConvLayer chips the CONV stack spans (1 for networks that fit one
    /// chip; up to 16 for VGG-D/E).
    pub fn chips_spanned(&self) -> usize {
        self.chips_spanned
    }

    /// Chip clusters the network spans.
    pub fn clusters_spanned(&self) -> usize {
        self.clusters_spanned
    }

    /// Concurrent training pipelines per cluster: rim chips divided by the
    /// chips each pipeline occupies.
    pub fn pipelines_per_cluster(&self, conv_chips_per_cluster: usize) -> usize {
        if self.chips_spanned >= conv_chips_per_cluster {
            1
        } else {
            conv_chips_per_cluster / self.chips_spanned
        }
    }

    /// The effective FC input batch aggregated by the wheel: one input per
    /// concurrently running pipeline feeding the hub (reduced when the CONV
    /// stack spans several rim chips — paper §3.3.1), multiplied across
    /// clusters by FC model parallelism (§3.3.2).
    pub fn fc_batch(&self, conv_chips_per_cluster: usize, clusters: usize) -> usize {
        self.pipelines_per_cluster(conv_chips_per_cluster) * clusters
    }

    /// Bytes per element of the mapped precision.
    pub fn elem_bytes(&self) -> u64 {
        self.elem_bytes
    }

    /// Columns per ConvLayer chip in the target (for chip-boundary math).
    pub fn conv_cols_per_chip(&self) -> usize {
        self.conv_cols_per_chip
    }

    /// ConvLayer chips per cluster wheel in the target.
    pub fn wheel_size(&self) -> usize {
        self.wheel_batch
    }

    /// The physical conv column backing logical column `logical`.
    /// Placements number *logical* columns `0..conv_cols_used`; on a
    /// degraded mapping the indirection skips the failed physical
    /// columns. Identity on a healthy mapping.
    pub fn physical_col(&self, logical: usize) -> usize {
        self.col_map.get(logical).copied().unwrap_or(logical)
    }

    /// The full logical→physical conv-column map (ascending; length is
    /// the live columns within the span).
    pub fn col_map(&self) -> &[usize] {
        &self.col_map
    }

    /// Physical columns within the span condemned by the failed-tile
    /// set this mapping was compiled against (empty when healthy).
    pub fn failed_cols(&self) -> &[usize] {
        &self.failed_cols
    }

    /// Whether this mapping routes around failed tiles.
    pub fn is_degraded(&self) -> bool {
        !self.failed_cols.is_empty()
    }

    /// Sum of a closure over conv-side plans.
    pub fn conv_plans(&self) -> impl Iterator<Item = &LayerPlan> + '_ {
        self.plans
            .iter()
            .filter(|p| p.placement.side() == Side::Conv)
    }

    /// Iterator over FC-side plans.
    pub fn fc_plans(&self) -> impl Iterator<Item = &LayerPlan> + '_ {
        self.plans.iter().filter(|p| p.placement.side() == Side::Fc)
    }

    /// Checks the mapping's structural invariants: conv-side placements
    /// tile `[0, conv_cols_used)` contiguously (column groups repeat their
    /// range), tile usage stays within each allocation, and the span is
    /// deployable. The compiler upholds these by construction; the check
    /// exists for downstream tools that transform mappings.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::Codegen`] describing the first violated
    /// invariant.
    pub fn validate(&self) -> crate::Result<()> {
        let fail = |detail: String| crate::Error::Codegen { detail };
        let mut expected = 0usize;
        let mut last_range = None;
        for p in self.conv_plans() {
            let Placement::Conv { first_col, cols } = p.placement else {
                return Err(fail(format!(
                    "conv-side `{}` lacks a conv placement",
                    p.name
                )));
            };
            if cols == 0 {
                return Err(fail(format!("`{}` allocated zero columns", p.name)));
            }
            if last_range != Some((first_col, cols)) {
                if first_col != expected {
                    return Err(fail(format!(
                        "`{}` starts at column {first_col}, expected {expected}",
                        p.name
                    )));
                }
                expected = first_col + cols;
                last_range = Some((first_col, cols));
            }
            if p.tiles_used > p.tiles_total {
                return Err(fail(format!(
                    "`{}` uses {} of {} tiles",
                    p.name, p.tiles_used, p.tiles_total
                )));
            }
        }
        if expected != self.conv_cols_used {
            return Err(fail(format!(
                "placements cover {expected} columns, mapping claims {}",
                self.conv_cols_used
            )));
        }
        if self.chips_spanned * self.conv_cols_per_chip < self.conv_cols_used {
            return Err(fail(format!(
                "{} columns exceed the {}-chip span",
                self.conv_cols_used, self.chips_spanned
            )));
        }
        if self.col_map.len() < self.conv_cols_used {
            return Err(fail(format!(
                "column map covers {} physical columns, {} logical columns placed",
                self.col_map.len(),
                self.conv_cols_used
            )));
        }
        if self.col_map.windows(2).any(|w| w[0] >= w[1]) {
            return Err(fail("column map is not strictly ascending".to_string()));
        }
        if let Some(&c) = self.col_map.iter().find(|c| self.failed_cols.contains(c)) {
            return Err(fail(format!("column map routes through failed column {c}")));
        }
        if let Some(&last) = self.col_map.last() {
            if last >= self.chips_spanned * self.conv_cols_per_chip {
                return Err(fail(format!(
                    "column map reaches physical column {last}, outside the {}-chip span",
                    self.chips_spanned
                )));
            }
        }
        Ok(())
    }
}

/// The ScaleDeep compiler front-end, parameterized by the target node.
///
/// ```
/// use scaledeep_arch::presets;
/// use scaledeep_compiler::Compiler;
/// use scaledeep_dnn::zoo;
///
/// # fn main() -> Result<(), scaledeep_compiler::Error> {
/// let compiler = Compiler::new(&presets::single_precision());
/// let mapping = compiler.map(&zoo::overfeat_fast())?;
/// assert_eq!(mapping.chips_spanned(), 1); // fits one ConvLayer chip
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Compiler {
    node: NodeConfig,
}

impl Compiler {
    /// Creates a compiler for the given node configuration.
    pub fn new(node: &NodeConfig) -> Self {
        Self { node: *node }
    }

    /// The target node configuration.
    pub fn node(&self) -> &NodeConfig {
        &self.node
    }

    /// Runs the workload-mapping phase (STEP 1–6).
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::DoesNotFit`] when the per-layer memory floor
    /// exceeds the node's total ConvLayer columns, or validation errors for
    /// malformed configurations.
    pub fn map(&self, net: &Network) -> Result<Mapping> {
        self.map_degraded(net, &FailedTiles::none())
    }

    /// Runs the workload-mapping phase around a set of failed tiles:
    /// column allocation excludes the condemned physical columns and the
    /// resulting mapping carries a logical→physical indirection
    /// ([`Mapping::physical_col`]). With [`FailedTiles::none`] this is
    /// exactly [`Compiler::map`].
    ///
    /// This is a facade over the mapping prefix of the phase pipeline
    /// (analyze → allocate-columns → partition-state → assign-compute);
    /// [`crate::pipeline::compile`] runs the same phases plus code
    /// generation and bundles everything into a
    /// [`crate::pipeline::CompiledArtifact`].
    ///
    /// # Errors
    ///
    /// In addition to [`Compiler::map`]'s errors, returns
    /// [`crate::Error::NoCapacity`] when the surviving columns cannot hold
    /// the memory floor and [`crate::Error::NoRoute`] when an entire rim
    /// chip inside the required span is dead.
    pub fn map_degraded(&self, net: &Network, failed: &FailedTiles) -> Result<Mapping> {
        crate::pipeline::map_phases(&self.node, net, failed)
    }
}

/// STEP 1: designate each layer to a chip family.
pub(crate) fn classify(layer: &Layer) -> Side {
    match layer {
        Layer::Conv(_)
        | Layer::Pool(_)
        | Layer::EltwiseAdd(_)
        | Layer::EltwiseMul(_)
        | Layer::Act(_)
        | Layer::Shortcut { .. } => Side::Conv,
        Layer::Fc(_) => Side::Fc,
        _ => Side::None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scaledeep_arch::presets;
    use scaledeep_dnn::zoo;

    fn map(name: &str) -> Mapping {
        let net = zoo::by_name(name).unwrap();
        Compiler::new(&presets::single_precision())
            .map(&net)
            .unwrap()
    }

    #[test]
    fn alexnet_fits_one_chip() {
        let m = map("alexnet");
        assert_eq!(m.chips_spanned(), 1);
        assert_eq!(m.conv_cols_used(), 16);
        assert_eq!(m.clusters_spanned(), 1);
        assert_eq!(m.pipelines_per_cluster(4), 4);
    }

    #[test]
    fn vgg_d_spans_multiple_clusters() {
        let m = map("vgg-d");
        assert!(m.chips_spanned() > 4, "chips {}", m.chips_spanned());
        assert!(m.clusters_spanned() >= 2);
        assert_eq!(m.pipelines_per_cluster(4), 1);
    }

    #[test]
    fn conv_layers_go_to_conv_chips() {
        let net = zoo::alexnet();
        let m = Compiler::new(&presets::single_precision())
            .map(&net)
            .unwrap();
        for node in net.layers() {
            let plan = m.plan(node.id());
            match node.layer().type_tag() {
                "CONV" | "SAMP" => assert_eq!(plan.placement.side(), Side::Conv, "{}", plan.name),
                "FC" => assert_eq!(plan.placement.side(), Side::Fc, "{}", plan.name),
                _ => assert_eq!(plan.placement.side(), Side::None, "{}", plan.name),
            }
        }
    }

    #[test]
    fn fc_batch_shrinks_when_conv_spans_chips() {
        let alexnet = map("alexnet");
        let vgg = map("vgg-d");
        assert!(alexnet.fc_batch(4, 4) > vgg.fc_batch(4, 4));
    }

    #[test]
    fn column_allocation_covers_all_conv_layers() {
        let m = map("overfeat-fast");
        let mut covered = vec![false; m.conv_cols_used()];
        for p in m.conv_plans() {
            if let Placement::Conv { first_col, cols } = p.placement {
                for slot in covered.iter_mut().skip(first_col).take(cols) {
                    *slot = true;
                }
            }
        }
        assert!(covered.iter().all(|&c| c), "all columns owned by a layer");
    }

    #[test]
    fn big_conv_layers_get_more_columns() {
        let net = zoo::overfeat_fast();
        let m = Compiler::new(&presets::single_precision())
            .map(&net)
            .unwrap();
        let c5 = m.plan(net.node_by_name("c5").unwrap().id());
        let s1 = m.plan(net.node_by_name("s1").unwrap().id());
        assert!(
            c5.placement.cols() >= s1.placement.cols(),
            "heavy conv should outrank pooling"
        );
    }

    #[test]
    fn small_conv_weights_live_on_chip_fc_weights_do_not() {
        let net = zoo::alexnet();
        let m = Compiler::new(&presets::single_precision())
            .map(&net)
            .unwrap();
        let f6 = m.plan(net.node_by_name("f6").unwrap().id());
        assert!(
            !f6.weights_on_chip,
            "37M-weight FC layer cannot fit on chip"
        );
    }

    #[test]
    fn all_benchmarks_map_successfully() {
        for name in zoo::BENCHMARK_NAMES {
            let m = map(name);
            assert!(m.conv_cols_used() > 0, "{name}");
            assert!(m.fc_cols_used() > 0, "{name}");
        }
    }

    #[test]
    fn home_tiles_stay_within_the_allocation() {
        let node = presets::single_precision();
        let net = zoo::alexnet();
        let m = Compiler::new(&node).map(&net).unwrap();
        let cols_per_chip = node.cluster.conv_chip.cols;
        let rows = node.cluster.conv_chip.rows;
        for p in m.conv_plans() {
            let tiles = p.home_tiles(cols_per_chip, rows);
            assert_eq!(tiles.len(), p.tiles_used, "{}", p.name);
            let Placement::Conv { first_col, cols } = p.placement else {
                unreachable!()
            };
            for t in &tiles {
                let global_col = t.chip * cols_per_chip + t.col;
                assert!(
                    (first_col..first_col + cols).contains(&global_col),
                    "{}: tile outside its columns",
                    p.name
                );
                assert!(t.row < rows);
                assert!(t.chip < m.chips_spanned());
            }
            // Coordinates are unique per layer.
            let mut sorted = tiles.clone();
            sorted.sort_unstable_by_key(|t| (t.chip, t.col, t.row));
            sorted.dedup();
            assert_eq!(sorted.len(), tiles.len(), "{}", p.name);
        }
    }

    #[test]
    fn fc_layers_have_no_conv_home_tiles() {
        let node = presets::single_precision();
        let net = zoo::alexnet();
        let m = Compiler::new(&node).map(&net).unwrap();
        let f6 = m.plan(net.node_by_name("f6").unwrap().id());
        assert!(f6.home_tiles(16, 6).is_empty());
    }

    #[test]
    fn every_benchmark_mapping_validates() {
        for name in zoo::BENCHMARK_NAMES {
            map(name).validate().unwrap();
        }
    }

    #[test]
    fn healthy_mapping_has_identity_column_map() {
        let m = map("alexnet");
        assert!(!m.is_degraded());
        assert!(m.failed_cols().is_empty());
        for logical in 0..m.conv_cols_used() {
            assert_eq!(m.physical_col(logical), logical);
        }
    }

    #[test]
    fn degraded_map_routes_around_a_dead_column() {
        let node = presets::single_precision();
        let net = zoo::alexnet();
        let failed = FailedTiles::from_columns([3]);
        let m = Compiler::new(&node).map_degraded(&net, &failed).unwrap();
        m.validate().unwrap();
        assert!(m.is_degraded());
        assert_eq!(m.failed_cols(), &[3]);
        // Logical columns skip the dead physical column...
        assert!(m.col_map().iter().all(|&c| c != 3));
        assert_eq!(m.physical_col(2), 2);
        assert_eq!(m.physical_col(3), 4);
        // ...and the healthy variant of the same network still fits the
        // span, one live column poorer.
        let healthy = Compiler::new(&node).map(&net).unwrap();
        assert_eq!(m.chips_spanned(), healthy.chips_spanned());
        assert_eq!(m.conv_cols_used(), healthy.conv_cols_used() - 1);
    }

    #[test]
    fn degraded_map_from_tile_coords_condemns_the_column() {
        let node = presets::single_precision();
        let coords = [TileCoord {
            chip: 0,
            col: 5,
            row: 2,
        }];
        let failed = FailedTiles::from_coords(&coords, node.cluster.conv_chip.cols);
        assert!(failed.contains(5));
        assert_eq!(failed.len(), 1);
        let m = Compiler::new(&node)
            .map_degraded(&zoo::alexnet(), &failed)
            .unwrap();
        assert!(m.col_map().iter().all(|&c| c != 5));
    }

    #[test]
    fn degraded_map_grows_the_span_when_failures_crowd_a_chip() {
        let node = presets::single_precision();
        let net = zoo::vgg_a();
        let healthy = Compiler::new(&node).map(&net).unwrap();
        // Kill columns off the end of the healthy span: the remap must
        // still validate (VGG-A needs most of its span's columns, so the
        // allocator either absorbs the loss or widens the span).
        let cols = node.cluster.conv_chip.cols;
        let last_chip = healthy.chips_spanned() - 1;
        let failed = FailedTiles::from_columns([last_chip * cols, last_chip * cols + 1]);
        let m = Compiler::new(&node).map_degraded(&net, &failed).unwrap();
        m.validate().unwrap();
        assert!(m.chips_spanned() >= healthy.chips_spanned());
    }

    #[test]
    fn remap_without_capacity_is_a_typed_error() {
        let node = presets::single_precision();
        let total = node.clusters * node.cluster.conv_chips * node.cluster.conv_chip.cols;
        // Condemn every column but one: VGG-E's memory floor cannot fit.
        let failed = FailedTiles::from_columns(1..total);
        let err = Compiler::new(&node)
            .map_degraded(&zoo::vgg_e(), &failed)
            .unwrap_err();
        assert!(
            matches!(err, crate::Error::NoCapacity { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn fully_dead_rim_chip_breaks_the_route() {
        let node = presets::single_precision();
        let cols = node.cluster.conv_chip.cols;
        // Chip 1 entirely dead; VGG-A spans several chips, so its span
        // includes the dead one.
        let failed = FailedTiles::from_columns(cols..2 * cols);
        let err = Compiler::new(&node)
            .map_degraded(&zoo::vgg_a(), &failed)
            .unwrap_err();
        assert!(
            matches!(err, crate::Error::NoRoute { chip: 1 }),
            "got {err:?}"
        );
    }

    #[test]
    fn empty_failed_set_maps_identically() {
        let node = presets::single_precision();
        let net = zoo::overfeat_fast();
        let healthy = Compiler::new(&node).map(&net).unwrap();
        let degraded = Compiler::new(&node)
            .map_degraded(&net, &FailedTiles::none())
            .unwrap();
        assert_eq!(healthy, degraded);
    }

    #[test]
    fn half_precision_maps_with_fewer_state_bytes() {
        let net = zoo::vgg_a();
        let sp = Compiler::new(&presets::single_precision())
            .map(&net)
            .unwrap();
        let hp = Compiler::new(&presets::half_precision()).map(&net).unwrap();
        assert!(hp.elem_bytes() < sp.elem_bytes());
        // HP chips have 24 columns; spanning should not exceed SP's.
        assert!(hp.chips_spanned() <= sp.chips_spanned());
    }
}
