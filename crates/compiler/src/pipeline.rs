//! The phase-structured compilation pipeline (paper §4, Figure 13 + §4.2).
//!
//! Compilation is one explicit pipeline of six phases, each consuming and
//! producing a typed intermediate artifact:
//!
//! 1. **analyze** — validate the node, run the network's FLOP/byte
//!    analysis at the target precision, classify each layer to a chip
//!    family (STEP 1–2) and compute the per-layer memory floor (STEP 3a),
//!    yielding an [`AnalyzedNetwork`];
//! 2. **allocate-columns** — memory floor + load balancing over the
//!    surviving chip columns (STEP 3), yielding a [`ColumnPlan`];
//! 3. **partition-state** — distribute each layer's features over its
//!    columns' MemHeavy tiles (STEP 4) and decide weight residency
//!    (STEP 6), yielding a [`StatePartition`];
//! 4. **assign-compute** — configure the CompHeavy 2D arrays (STEP 5) and
//!    assemble + validate the [`Mapping`];
//! 5. **codegen** — instantiate the per-layer ISA program templates for
//!    the functional target (§4.2);
//! 6. **lower** — pre-decode each generated program into its dense
//!    micro-op stream ([`scaledeep_isa::LoweredProgram`]): operand ranges
//!    resolved to typed locations, geometry unpacked, dispatch costs
//!    pre-classified. This is the compiled execution tier's input — the
//!    per-dispatch decode work the interpreter repeats is paid once here.
//!
//! The pipeline terminates in one [`CompiledArtifact`] bundling the
//! mapping (the performance simulator's input), the functional
//! [`CompiledNetwork`] (the functional simulator's input, or the typed
//! reason it cannot be expressed on the reduced functional chip), and
//! [`Provenance`] — everything that went *into* the compile, which is what
//! session-level caches key on. Degraded recompiles are not a parallel
//! path: a [`FailedTiles`] set is a phase input like any other.
//!
//! Each phase can be traced: [`compile_traced`] emits one
//! [`Payload::Phase`] span per phase on a `"compile"` track, stamped with
//! the phase *ordinal* (compilation happens on the host, outside simulated
//! time, and wall-clock stamps would break byte-identical trace exports).

use crate::codegen::{self, CompiledNetwork, FuncTargetOptions};
use crate::error::{Error, Result};
use crate::mapping::{
    arrays, classify, columns, state, FailedTiles, LayerPlan, Mapping, Placement, Side, StateBudget,
};
use scaledeep_arch::{ChipConfig, DesignPoint, NodeConfig, Precision};
use scaledeep_dnn::{Analysis, Layer, LayerId, Network, Step};
use scaledeep_isa::LoweredProgram;
use scaledeep_trace::{Payload, TraceSink, Tracer};

/// The pipeline's phase names, in execution order (the `phase` field of
/// the [`Payload::Phase`] spans [`compile_traced`] emits).
pub const PHASES: [&str; 6] = [
    "analyze",
    "allocate-columns",
    "partition-state",
    "assign-compute",
    "codegen",
    "lower",
];

/// Everything that parameterizes a compile besides the network and the
/// node: the functional-target geometry, the minibatch the programs loop
/// over, and the failed tiles a degraded compile routes around.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileOptions {
    /// Functional-target geometry (MemHeavy tile count and capacity).
    pub func: FuncTargetOptions,
    /// Minibatch size the functional programs loop over (1 = straight-line
    /// per-image programs).
    pub minibatch: usize,
    /// Failed tiles to route around, at both granularities (mapping
    /// columns and functional-chip tiles). [`FailedTiles::none`] compiles
    /// the healthy layout.
    pub failed: FailedTiles,
}

impl Default for CompileOptions {
    fn default() -> Self {
        Self {
            func: FuncTargetOptions::default(),
            minibatch: 1,
            failed: FailedTiles::none(),
        }
    }
}

impl CompileOptions {
    /// Default options with the given failed-tile set.
    pub fn degraded(failed: FailedTiles) -> Self {
        Self {
            failed,
            ..Self::default()
        }
    }
}

/// What went into a compile: the identity a cache may key on and the
/// lineage a stored artifact can be audited against.
#[derive(Debug, Clone, PartialEq)]
pub struct Provenance {
    /// The compiled network's name.
    pub network: String,
    /// FNV-1a fingerprint of the network's full structure.
    pub net_fingerprint: u64,
    /// Structural FNV-1a fingerprint of the node configuration: hashed
    /// over the design point's canonical JSON rendering, so the key is
    /// stable across builds and across processes (unlike a `Debug`-format
    /// hash) and identical for any two configs with equal knobs.
    pub node_fingerprint: u64,
    /// The node configuration as a design point — the compile input
    /// itself, serialized with the artifact so a stored compile can be
    /// audited (and its key re-derived) without the originating code.
    pub design: DesignPoint,
    /// The node's datapath precision.
    pub precision: Precision,
    /// The failed-tile input the pipeline routed around.
    pub failed: FailedTiles,
    /// The functional-target geometry.
    pub func: FuncTargetOptions,
    /// The functional minibatch size.
    pub minibatch: usize,
}

impl Provenance {
    /// Computes the provenance of a *prospective* compile — exactly what
    /// [`compile`] would stamp into its artifact — so callers can key a
    /// cache without running the pipeline.
    pub fn new(node: &NodeConfig, net: &Network, opts: &CompileOptions) -> Self {
        let design = DesignPoint::describe(node);
        Self {
            network: net.name().to_string(),
            net_fingerprint: fingerprint(net),
            node_fingerprint: design.fingerprint(),
            design,
            precision: node.precision,
            failed: opts.failed.clone(),
            func: opts.func,
            minibatch: opts.minibatch,
        }
    }

    /// A single fingerprint over every compile input; two compiles with
    /// equal keys produce identical artifacts (the pipeline is
    /// deterministic), which is what [`Provenance`]-keyed caches rely on.
    pub fn cache_key(&self) -> u64 {
        fingerprint(&(
            self.net_fingerprint,
            self.node_fingerprint,
            &self.failed,
            &self.func,
            self.minibatch,
        ))
    }
}

/// FNV-1a over the `Debug` rendering: deterministic within a build, which
/// is all an in-process cache key needs.
fn fingerprint<T: std::fmt::Debug>(v: &T) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in format!("{v:?}").bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The pipeline's terminal artifact: one compile, every view of it.
#[derive(Debug, Clone)]
pub struct CompiledArtifact {
    mapping: Mapping,
    functional: std::result::Result<CompiledNetwork, Error>,
    lowered: Option<Vec<LoweredProgram>>,
    provenance: Provenance,
}

impl CompiledArtifact {
    /// The workload mapping (the performance simulator's input).
    pub fn mapping(&self) -> &Mapping {
        &self.mapping
    }

    /// The functionally compiled network (the functional simulator's
    /// input).
    ///
    /// # Errors
    ///
    /// The functional target cannot express every mappable network
    /// (stride > 1 convolutions, buffers beyond the reduced chip's
    /// scratchpads); the codegen phase's verdict is preserved here, so
    /// mapping-only consumers are unaffected while functional consumers
    /// get the original typed error.
    pub fn functional(&self) -> Result<&CompiledNetwork> {
        self.functional.as_ref().map_err(Clone::clone)
    }

    /// Whether the codegen phase produced a functional network.
    pub fn has_functional(&self) -> bool {
        self.functional.is_ok()
    }

    /// The lower phase's micro-op streams — the compiled execution tier's
    /// pre-decoded form of [`CompiledNetwork::programs`], in the same
    /// order. `None` exactly when the artifact has no functional network.
    pub fn lowered(&self) -> Option<&[LoweredProgram]> {
        self.lowered.as_deref()
    }

    /// What went into this compile.
    pub fn provenance(&self) -> &Provenance {
        &self.provenance
    }

    /// Whether the artifact routes around failed tiles (at either
    /// granularity).
    pub fn is_degraded(&self) -> bool {
        !self.provenance.failed.is_empty()
    }

    /// Reassembles an artifact from serialized parts
    /// ([`crate::artifact_io`]). The caller re-derives `lowered` from the
    /// functional programs so the `Some`-iff-functional invariant holds.
    pub(crate) fn from_parts(
        mapping: Mapping,
        functional: std::result::Result<CompiledNetwork, Error>,
        lowered: Option<Vec<LoweredProgram>>,
        provenance: Provenance,
    ) -> Self {
        Self {
            mapping,
            functional,
            lowered,
            provenance,
        }
    }
}

/// Phase-1 output: the validated, analyzed, classified network.
#[derive(Debug)]
pub struct AnalyzedNetwork<'n> {
    net: &'n Network,
    node: NodeConfig,
    elem_bytes: u64,
    analysis: Analysis,
    sides: Vec<Side>,
    budgets: Vec<StateBudget>,
    conv_ids: Vec<LayerId>,
    fc_ids: Vec<LayerId>,
}

impl AnalyzedNetwork<'_> {
    /// The chip family each layer was designated to (STEP 1), indexed by
    /// `LayerId`.
    pub fn sides(&self) -> &[Side] {
        &self.sides
    }

    /// The per-layer state budgets (STEP 3a), indexed by `LayerId`.
    pub fn budgets(&self) -> &[StateBudget] {
        &self.budgets
    }

    fn chip_of(&self, side: Side) -> &ChipConfig {
        match side {
            Side::Fc => &self.node.cluster.fc_chip,
            _ => &self.node.cluster.conv_chip,
        }
    }
}

/// Phase-2 output: the column allocation over the surviving columns.
#[derive(Debug)]
pub struct ColumnPlan {
    alloc: columns::Allocation,
}

impl ColumnPlan {
    /// The column placement of one layer.
    pub fn placement(&self, id: LayerId) -> Placement {
        self.alloc.placement(id)
    }

    /// Columns used on the ConvLayer chip sequence.
    pub fn conv_cols_used(&self) -> usize {
        self.alloc.conv_cols_used
    }
}

/// Phase-3 output: per-layer feature distribution and weight residency.
#[derive(Debug)]
pub struct StatePartition {
    layers: Vec<LayerState>,
}

/// One layer's share of [`StatePartition`].
#[derive(Debug, Clone, Copy)]
struct LayerState {
    tiles_total: usize,
    tiles_used: usize,
    weights_on_chip: bool,
}

/// Phase 1: validate the node, analyze the network at the target
/// precision, classify layers (STEP 1–2), compute memory floors (STEP 3a).
///
/// # Errors
///
/// Propagates node-configuration validation failures.
pub fn analyze<'n>(node: &NodeConfig, net: &'n Network) -> Result<AnalyzedNetwork<'n>> {
    node.validate()?;
    let elem_bytes = node.precision.elem_bytes();
    let analysis = net.analyze_with_elem_bytes(elem_bytes);
    let sides: Vec<Side> = net.layers().map(|n| classify(n.layer())).collect();
    let conv_chip = &node.cluster.conv_chip;
    let budgets: Vec<StateBudget> = net
        .layers()
        .map(|n| state::state_budget(net, &analysis, n.id(), conv_chip, elem_bytes))
        .collect();
    let conv_ids: Vec<LayerId> = net
        .layers()
        .filter(|n| sides[n.id().index()] == Side::Conv)
        .map(|n| n.id())
        .collect();
    let fc_ids: Vec<LayerId> = net
        .layers()
        .filter(|n| sides[n.id().index()] == Side::Fc)
        .map(|n| n.id())
        .collect();
    Ok(AnalyzedNetwork {
        net,
        node: *node,
        elem_bytes,
        analysis,
        sides,
        budgets,
        conv_ids,
        fc_ids,
    })
}

/// Phase 2: allocate chip columns (STEP 3) — memory floor then greedy load
/// balancing — excluding the columns `failed` condemns.
///
/// # Errors
///
/// [`Error::DoesNotFit`] when the memory floor exceeds the node,
/// [`Error::NoCapacity`] when the failures ate the headroom, and
/// [`Error::NoRoute`] when an entire rim chip inside the span is dead.
pub fn allocate_columns(
    analyzed: &AnalyzedNetwork<'_>,
    failed: &FailedTiles,
) -> Result<ColumnPlan> {
    let node = &analyzed.node;
    let alloc = columns::allocate(
        &analyzed.conv_ids,
        &analyzed.fc_ids,
        &analyzed.budgets,
        &analyzed.analysis,
        &node.cluster.conv_chip,
        &node.cluster.fc_chip,
        node.cluster.conv_chips,
        node.clusters,
        failed,
    )?;
    Ok(ColumnPlan { alloc })
}

/// Phase 3: distribute each layer's output features over its columns'
/// MemHeavy tiles (STEP 4) and decide weight residency (STEP 6: weights +
/// gradients live on chip when they fit the leftover column capacity).
pub fn partition_state(analyzed: &AnalyzedNetwork<'_>, cols: &ColumnPlan) -> StatePartition {
    let mut layers = Vec::with_capacity(analyzed.net.len());
    for node_ref in analyzed.net.layers() {
        let id = node_ref.id();
        let side = analyzed.sides[id.index()];
        let chip = analyzed.chip_of(side);
        let ncols = cols.placement(id).cols();
        let tiles_total = ncols * chip.rows;
        let (tiles_used, _features_per_tile) =
            state::distribute_features(node_ref.output_shape().features, tiles_total);
        let budget = &analyzed.budgets[id.index()];
        let capacity = ncols as u64 * chip.col_mem_capacity() as u64;
        let weight_and_grad = 2 * budget.weight_bytes;
        let weights_on_chip =
            budget.weight_bytes > 0 && budget.state_bytes + weight_and_grad <= capacity;
        layers.push(LayerState {
            tiles_total,
            tiles_used,
            weights_on_chip,
        });
    }
    StatePartition { layers }
}

/// Phase 4: configure the CompHeavy 2D arrays per layer (STEP 5) and
/// assemble the validated [`Mapping`] — the only place in the codebase a
/// `Mapping` is constructed.
///
/// # Errors
///
/// Propagates [`Mapping::validate`] failures (unreachable for
/// pipeline-built inputs; kept as a structural guarantee).
pub fn assign_compute(
    analyzed: &AnalyzedNetwork<'_>,
    cols: &ColumnPlan,
    partition: &StatePartition,
) -> Result<Mapping> {
    let net = analyzed.net;
    let elem_bytes = analyzed.elem_bytes;
    let mut plans = Vec::with_capacity(net.len());
    for node_ref in net.layers() {
        let id = node_ref.id();
        let side = analyzed.sides[id.index()];
        let cost = analyzed.analysis.layer(id);
        let placement = cols.placement(id);
        let chip = analyzed.chip_of(side);
        let out_shape = node_ref.output_shape();
        let array = arrays::configure(net, node_ref, placement.cols().max(1), chip);
        let comp_flops = [
            cost.step(Step::Fp).compute_heavy_flops(),
            cost.step(Step::Bp).compute_heavy_flops(),
            cost.step(Step::Wg).compute_heavy_flops(),
        ];
        let mem_flops = [
            cost.step(Step::Fp).mem_heavy_flops(),
            cost.step(Step::Bp).mem_heavy_flops(),
            cost.step(Step::Wg).mem_heavy_flops(),
        ];
        let conv_kernel = match node_ref.layer() {
            Layer::Conv(c) => Some(c.kernel),
            _ => None,
        };
        let budget = &analyzed.budgets[id.index()];
        let st = &partition.layers[id.index()];
        plans.push(LayerPlan {
            id,
            name: node_ref.name().to_string(),
            placement,
            comp_flops,
            mem_flops,
            state_bytes: budget.state_bytes,
            weight_bytes: budget.weight_bytes,
            weights_on_chip: st.weights_on_chip,
            tiles_total: st.tiles_total,
            tiles_used: st.tiles_used,
            out_features: out_shape.features,
            feature_elems: out_shape.feature_elems(),
            in_bytes: net.fan_in_elems(id) as u64 * elem_bytes,
            out_bytes: out_shape.elems() as u64 * elem_bytes,
            array,
            conv_kernel,
        });
    }
    let mapping = Mapping {
        net_name: net.name().to_string(),
        plans,
        conv_cols_used: cols.alloc.conv_cols_used,
        fc_cols_used: cols.alloc.fc_cols_used,
        chips_spanned: cols.alloc.chips_spanned,
        clusters_spanned: cols.alloc.clusters_spanned,
        conv_cols_per_chip: analyzed.node.cluster.conv_chip.cols,
        wheel_batch: analyzed.node.cluster.conv_chips,
        elem_bytes,
        col_map: cols.alloc.col_map.clone(),
        failed_cols: cols.alloc.failed_cols.clone(),
    };
    mapping.validate()?;
    Ok(mapping)
}

/// The mapping prefix of the pipeline (phases 1–4), untraced — what the
/// [`crate::Compiler`] facade runs.
pub(crate) fn map_phases(
    node: &NodeConfig,
    net: &Network,
    failed: &FailedTiles,
) -> Result<Mapping> {
    let analyzed = analyze(node, net)?;
    let cols = allocate_columns(&analyzed, failed)?;
    let partition = partition_state(&analyzed, &cols);
    assign_compute(&analyzed, &cols, &partition)
}

/// Runs the full pipeline: analyze → allocate-columns → partition-state →
/// assign-compute → codegen → lower. This is the single compile entry
/// point; every
/// run path (perf, functional, traced, degraded) consumes its
/// [`CompiledArtifact`].
///
/// # Errors
///
/// Propagates mapping-phase failures ([`Error::DoesNotFit`],
/// [`Error::NoCapacity`], [`Error::NoRoute`], validation errors). A
/// *codegen* failure is not an error here: the functional target is a
/// reduced chip that cannot express every mappable network, so its verdict
/// is preserved inside the artifact (see [`CompiledArtifact::functional`]).
pub fn compile(
    node: &NodeConfig,
    net: &Network,
    opts: &CompileOptions,
) -> Result<CompiledArtifact> {
    compile_traced(node, net, opts, &mut Tracer::disabled())
}

/// [`compile`] with per-phase observability: one [`Payload::Phase`] span
/// per phase lands on the tracer's `"compile"` track, stamped with the
/// phase ordinal (0–5) so same-input compiles export byte-identically.
///
/// # Errors
///
/// See [`compile`].
pub fn compile_traced<S: TraceSink>(
    node: &NodeConfig,
    net: &Network,
    opts: &CompileOptions,
    tracer: &mut Tracer<S>,
) -> Result<CompiledArtifact> {
    let track = if tracer.active() {
        tracer.track("compile")
    } else {
        0
    };
    let done = |tracer: &mut Tracer<S>, ordinal: u64| {
        tracer.span(
            ordinal,
            1,
            track,
            Payload::Phase {
                phase: PHASES[ordinal as usize],
            },
        );
    };
    let analyzed = analyze(node, net)?;
    done(tracer, 0);
    let cols = allocate_columns(&analyzed, &opts.failed)?;
    done(tracer, 1);
    let partition = partition_state(&analyzed, &cols);
    done(tracer, 2);
    let mapping = assign_compute(&analyzed, &cols, &partition)?;
    done(tracer, 3);
    let dead_tiles: Vec<u16> = opts.failed.func_tiles().collect();
    let functional =
        codegen::compile_functional_degraded(net, &opts.func, opts.minibatch, &dead_tiles);
    done(tracer, 4);
    let lowered = functional
        .as_ref()
        .ok()
        .map(|c| c.programs.iter().map(scaledeep_isa::micro::lower).collect());
    done(tracer, 5);
    Ok(CompiledArtifact {
        mapping,
        functional,
        lowered,
        provenance: Provenance::new(node, net, opts),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use scaledeep_arch::presets;
    use scaledeep_dnn::zoo;
    use scaledeep_trace::{Category, VecSink};

    #[test]
    fn artifact_bundles_both_views_with_provenance() {
        let node = presets::single_precision();
        let net = zoo::alexnet();
        let art = compile(&node, &net, &CompileOptions::default()).unwrap();
        assert_eq!(art.mapping().network_name(), "alexnet");
        assert!(art.mapping().conv_cols_used() > 0);
        // AlexNet's stride-4 c1 is outside the functional target; the
        // artifact preserves the typed verdict instead of failing.
        assert!(!art.is_degraded());
        assert_eq!(art.provenance().network, "alexnet");
        assert_eq!(art.provenance().precision, Precision::Single);
    }

    #[test]
    fn pipeline_mapping_matches_the_compiler_facade() {
        let node = presets::single_precision();
        for name in ["alexnet", "overfeat-fast", "vgg-a"] {
            let net = zoo::by_name(name).unwrap();
            let art = compile(&node, &net, &CompileOptions::default()).unwrap();
            let facade = crate::Compiler::new(&node).map(&net).unwrap();
            assert_eq!(*art.mapping(), facade, "{name}");
        }
    }

    #[test]
    fn same_inputs_same_cache_key_different_inputs_differ() {
        let node = presets::single_precision();
        let net = zoo::alexnet();
        let a = compile(&node, &net, &CompileOptions::default()).unwrap();
        let b = compile(&node, &net, &CompileOptions::default()).unwrap();
        assert_eq!(a.provenance().cache_key(), b.provenance().cache_key());
        let degraded = compile(
            &node,
            &net,
            &CompileOptions::degraded(FailedTiles::from_columns([3])),
        )
        .unwrap();
        assert_ne!(
            a.provenance().cache_key(),
            degraded.provenance().cache_key()
        );
        let hp = compile(&presets::half_precision(), &net, &CompileOptions::default()).unwrap();
        assert_ne!(a.provenance().cache_key(), hp.provenance().cache_key());
        let other = compile(&node, &zoo::vgg_a(), &CompileOptions::default()).unwrap();
        assert_ne!(a.provenance().cache_key(), other.provenance().cache_key());
    }

    #[test]
    fn node_fingerprint_is_structural() {
        // The node fingerprint is derived from the design point's
        // canonical JSON, so it matches a fingerprint computed directly on
        // the design layer — and stays put for both presets regardless of
        // how the structs Debug-format.
        let net = zoo::alexnet();
        for node in [presets::single_precision(), presets::half_precision()] {
            let p = Provenance::new(&node, &net, &CompileOptions::default());
            assert_eq!(
                p.node_fingerprint,
                scaledeep_arch::DesignPoint::describe(&node).fingerprint()
            );
            assert_eq!(p.design.node_config(), node);
        }
    }

    #[test]
    fn traced_compile_emits_one_span_per_phase_in_order() {
        let node = presets::single_precision();
        let net = zoo::alexnet();
        let mut tracer = Tracer::new(VecSink::new());
        compile_traced(&node, &net, &CompileOptions::default(), &mut tracer).unwrap();
        let (sink, tracks) = tracer.into_parts();
        let events = sink.events();
        assert_eq!(events.len(), PHASES.len());
        for (i, (ev, want)) in events.iter().zip(PHASES).enumerate() {
            assert_eq!(ev.at, i as u64);
            assert_eq!(ev.dur, 1);
            assert_eq!(ev.payload.category(), Category::Compile);
            assert_eq!(tracks.name(ev.track), "compile");
            match ev.payload {
                Payload::Phase { phase } => assert_eq!(phase, want),
                _ => panic!("unexpected payload {:?}", ev.payload),
            }
        }
    }

    #[test]
    fn degraded_func_tiles_reach_the_codegen_phase() {
        use scaledeep_dnn::{Activation, Fc, FeatureShape, NetworkBuilder};
        let mut b = NetworkBuilder::new("tiny", FeatureShape::vector(8));
        let f = b
            .fc(
                "f",
                Fc {
                    out_neurons: 4,
                    bias: false,
                    activation: Activation::None,
                },
            )
            .unwrap();
        let net = b.finish_with_loss(f).unwrap();
        let node = presets::single_precision();
        let healthy = compile(&node, &net, &CompileOptions::default()).unwrap();
        let degraded = compile(
            &node,
            &net,
            &CompileOptions::degraded(FailedTiles::from_func_tiles([0])),
        )
        .unwrap();
        // Mapping is untouched (func tiles are not mapping columns)...
        assert_eq!(healthy.mapping(), degraded.mapping());
        assert!(degraded.is_degraded());
        // The lower phase ran on the functional programs.
        let lowered = degraded.lowered().expect("functional compile lowers");
        assert_eq!(lowered.len(), degraded.functional().unwrap().programs.len());
        // ...but no functional buffer lands on the dead tile.
        let compiled = degraded.functional().unwrap();
        for lb in &compiled.buffers {
            let locs = [
                lb.output,
                lb.pre,
                lb.err,
                lb.dz,
                lb.weights,
                lb.weights_t,
                lb.wgrad,
                lb.golden,
            ];
            for loc in locs.into_iter().flatten() {
                assert_ne!(loc.tile, 0, "buffer placed on dead tile 0");
            }
        }
    }
}
