//! Mapping reports: the utilization waterfall of Figure 19.

use crate::mapping::{Mapping, Placement};
use scaledeep_arch::ChipConfig;

/// Per-layer row of the Figure 19 analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerUtilRow {
    /// Layer name.
    pub name: String,
    /// Training FLOPs per image (CompHeavy work).
    pub flops: u64,
    /// Columns allocated.
    pub cols: usize,
    /// 2D-PE lanes allocated (the paper's "2D-PE" count).
    pub pes: usize,
    /// Ideal PE share: PEs distributed in proportion to FLOPs.
    pub ideal_pes: f64,
    /// Peak utilization after column quantization (ideal/allocated; may
    /// exceed 1 for under-provisioned layers, like the paper's 1.18).
    pub util_after_columns: f64,
    /// Peak utilization after the feature-distribution factor.
    pub util_after_features: f64,
    /// Peak utilization after the 2D-array residue factor.
    pub util_after_array: f64,
}

/// The chip-level utilization waterfall: the aggregate 2D-PE utilization
/// after each mapping stage (the paper reports 0.68 → 0.64 → 0.42 → 0.35
/// across its suite).
#[derive(Debug, Clone, PartialEq)]
pub struct UtilizationWaterfall {
    /// Per-layer rows (conv-side layers carrying compute).
    pub rows: Vec<LayerUtilRow>,
    /// Aggregate utilization after column quantization.
    pub after_columns: f64,
    /// Aggregate utilization after feature distribution.
    pub after_features: f64,
    /// Aggregate utilization after array residue.
    pub after_array: f64,
}

impl UtilizationWaterfall {
    /// Applies an instruction-overhead factor (the final Figure 19 stage)
    /// to the post-array utilization, yielding the achieved utilization.
    pub fn achieved(&self, instruction_overhead_factor: f64) -> f64 {
        self.after_array * instruction_overhead_factor.clamp(0.0, 1.0)
    }
}

/// Report generator over a [`Mapping`].
#[derive(Debug, Clone)]
pub struct MappingReport<'a> {
    mapping: &'a Mapping,
    conv_chip: ChipConfig,
}

impl<'a> MappingReport<'a> {
    /// Creates a report for a mapping on the given ConvLayer chip.
    pub fn new(mapping: &'a Mapping, conv_chip: ChipConfig) -> Self {
        Self { mapping, conv_chip }
    }

    /// PE lanes per allocated column (rows × 3 roles × lanes per tile).
    pub fn pes_per_col(&self) -> usize {
        self.conv_chip.comp_heavy_tiles_per_col() * self.conv_chip.comp_heavy.total_lanes()
    }

    /// Renders the mapping report as an aligned text table: one row per
    /// FLOP-carrying conv-side layer, followed by the aggregate Figure 19
    /// waterfall. The format is pinned by a golden test — tools parse it.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let w = self.waterfall();
        let m = self.mapping;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "mapping report: {} (conv cols {}, fc cols {}, chips {}, clusters {})",
            m.network_name(),
            m.conv_cols_used(),
            m.fc_cols_used(),
            m.chips_spanned(),
            m.clusters_spanned(),
        );
        let _ = writeln!(
            out,
            "{:<10} {:>14} {:>5} {:>8} {:>11} {:>7} {:>7} {:>7}",
            "layer", "flops/img", "cols", "pes", "ideal_pes", "u.cols", "u.feat", "u.arr"
        );
        for r in &w.rows {
            let _ = writeln!(
                out,
                "{:<10} {:>14} {:>5} {:>8} {:>11.1} {:>7.4} {:>7.4} {:>7.4}",
                r.name,
                r.flops,
                r.cols,
                r.pes,
                r.ideal_pes,
                r.util_after_columns,
                r.util_after_features,
                r.util_after_array,
            );
        }
        let _ = writeln!(
            out,
            "aggregate utilization: columns {:.4} -> features {:.4} -> array {:.4}",
            w.after_columns, w.after_features, w.after_array,
        );
        out
    }

    /// Computes the Figure 19 waterfall for the conv side of the mapping.
    ///
    /// The inter-layer pipeline runs at the rate of its slowest layer, so
    /// each aggregate utilization is `(bottleneck rate × total FLOPs) /
    /// total allocated PE throughput`, with successively more loss factors
    /// applied to each layer's effective PE count.
    pub fn waterfall(&self) -> UtilizationWaterfall {
        let pes_per_col = self.pes_per_col() as f64;
        let plans: Vec<_> = self
            .mapping
            .conv_plans()
            .filter(|p| matches!(p.placement, Placement::Conv { .. }))
            .collect();
        let total_flops: u64 = plans.iter().map(|p| p.comp_flops_training()).sum();

        // Layers sharing a column group time-multiplex the same tiles:
        // group by column range so PEs are counted once and group members'
        // times add.
        let mut groups: Vec<Vec<&crate::mapping::LayerPlan>> = Vec::new();
        let mut last_range = None;
        for p in &plans {
            let range = (match p.placement {
                Placement::Conv { first_col, cols } => (first_col, cols),
                _ => unreachable!("filtered to conv placements"),
            },);
            if last_range == Some(range) {
                groups.last_mut().expect("group exists").push(p);
            } else {
                groups.push(vec![p]);
                last_range = Some(range);
            }
        }
        let total_pes: f64 = groups
            .iter()
            .map(|g| g[0].placement.cols() as f64 * pes_per_col)
            .sum();

        let mut rows = Vec::new();
        // Stage-wise bottleneck times: group time = sum over members of
        // flops / (group PEs * factor).
        let mut t_cols: f64 = 0.0;
        let mut t_feat: f64 = 0.0;
        let mut t_array: f64 = 0.0;
        for g in &groups {
            let pes = g[0].placement.cols() as f64 * pes_per_col;
            let mut g_cols = 0.0;
            let mut g_feat = 0.0;
            let mut g_array = 0.0;
            for p in g {
                let flops = p.comp_flops_training();
                if flops == 0 {
                    continue;
                }
                let ideal = total_pes * flops as f64 / total_flops.max(1) as f64;
                let u_feat = p.feature_distribution_util();
                let u_array = p.array.utilization();
                g_cols += flops as f64 / pes;
                g_feat += flops as f64 / (pes * u_feat.max(1e-9));
                g_array += flops as f64 / (pes * (u_feat * u_array).max(1e-9));
                rows.push(LayerUtilRow {
                    name: p.name.clone(),
                    flops,
                    cols: p.placement.cols(),
                    pes: pes as usize,
                    ideal_pes: ideal,
                    util_after_columns: ideal / pes,
                    util_after_features: ideal / pes * u_feat,
                    util_after_array: ideal / pes * u_feat * u_array,
                });
            }
            t_cols = t_cols.max(g_cols);
            t_feat = t_feat.max(g_feat);
            t_array = t_array.max(g_array);
        }
        let agg = |t_bottleneck: f64| {
            if t_bottleneck <= 0.0 {
                0.0
            } else {
                (total_flops as f64 / t_bottleneck) / total_pes
            }
        };
        UtilizationWaterfall {
            rows,
            after_columns: agg(t_cols),
            after_features: agg(t_feat),
            after_array: agg(t_array),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::Compiler;
    use scaledeep_arch::presets;
    use scaledeep_dnn::zoo;

    fn waterfall(name: &str) -> UtilizationWaterfall {
        let net = zoo::by_name(name).unwrap();
        let node = presets::single_precision();
        let mapping = Compiler::new(&node).map(&net).unwrap();
        MappingReport::new(&mapping, node.cluster.conv_chip).waterfall()
    }

    #[test]
    fn waterfall_is_monotonically_decreasing() {
        for name in ["alexnet", "vgg-a", "googlenet"] {
            let w = waterfall(name);
            assert!(w.after_columns >= w.after_features, "{name}");
            assert!(w.after_features >= w.after_array, "{name}");
            assert!(w.after_array > 0.0, "{name}");
        }
    }

    #[test]
    fn alexnet_waterfall_is_in_paper_range() {
        // Paper (suite-wide): 0.68 -> 0.64 -> 0.42; AlexNet specifically
        // bottoms out around 0.5 before instruction overhead.
        let w = waterfall("alexnet");
        assert!(
            w.after_columns > 0.4 && w.after_columns <= 1.0,
            "cols {}",
            w.after_columns
        );
        assert!(w.after_array > 0.2, "array {}", w.after_array);
    }

    #[test]
    fn achieved_applies_overhead() {
        let w = waterfall("alexnet");
        let a = w.achieved(0.85);
        assert!((a - w.after_array * 0.85).abs() < 1e-12);
        assert!(w.achieved(2.0) <= w.after_array);
    }

    #[test]
    fn rows_cover_compute_layers() {
        let w = waterfall("alexnet");
        // 5 convs + 3 pools + ... only FLOP-carrying conv-side layers.
        assert!(w.rows.iter().any(|r| r.name == "c1"));
        assert!(w.rows.iter().all(|r| r.flops > 0));
    }

    #[test]
    fn under_provisioned_layers_show_peak_above_one() {
        // At least one layer should be the bottleneck with util > 1 pre-
        // normalization (the paper's C2/S2 shows 0.74, C1 1.18).
        let w = waterfall("alexnet");
        let max = w
            .rows
            .iter()
            .map(|r| r.util_after_columns)
            .fold(0.0f64, f64::max);
        assert!(max > 0.9, "bottleneck layer near or above 1, got {max}");
    }
}
