//! Compiler error type.

use std::fmt;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors from workload mapping or code generation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// The network cannot fit: even using every chip in the node, the
    /// per-layer memory floor exceeds the available columns.
    DoesNotFit {
        /// Columns required by the memory floor.
        required_cols: usize,
        /// Columns available across all ConvLayer chips in the node.
        available_cols: usize,
    },
    /// A degraded remap ran out of capacity: after excluding the failed
    /// columns, the surviving columns cannot hold the network's memory
    /// floor. Distinguished from [`Error::DoesNotFit`] so the host can
    /// tell "the network never fit" from "the failures ate the headroom".
    NoCapacity {
        /// Columns required by the memory floor.
        required_cols: usize,
        /// Surviving (non-failed) columns across the node.
        live_cols: usize,
        /// Columns condemned by the failed-tile set.
        failed_cols: usize,
    },
    /// A degraded remap cannot route: an entire rim chip inside the
    /// required span is dead, breaking the wheel's spoke/arc path through
    /// it — no column re-allocation can compensate.
    NoRoute {
        /// The dead rim chip's index along the span.
        chip: usize,
    },
    /// A graph error bubbled up from `scaledeep-dnn`.
    Graph(scaledeep_dnn::Error),
    /// An architecture validation error bubbled up from `scaledeep-arch`.
    Arch(scaledeep_arch::Error),
    /// An ISA assembly error bubbled up from `scaledeep-isa`.
    Isa(scaledeep_isa::Error),
    /// Code generation hit an unsupported construct for the functional
    /// target (e.g. a layer too large for the reduced chip's scratchpads).
    Codegen {
        /// Explanation.
        detail: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DoesNotFit {
                required_cols,
                available_cols,
            } => write!(
                f,
                "network state needs {required_cols} chip columns but the node has only {available_cols}"
            ),
            Error::NoCapacity {
                required_cols,
                live_cols,
                failed_cols,
            } => write!(
                f,
                "degraded remap impossible: {required_cols} columns required, only {live_cols} survive ({failed_cols} failed)"
            ),
            Error::NoRoute { chip } => write!(
                f,
                "degraded remap impossible: rim chip {chip} is entirely dead, wheel route broken"
            ),
            Error::Graph(e) => write!(f, "graph error: {e}"),
            Error::Arch(e) => write!(f, "architecture error: {e}"),
            Error::Isa(e) => write!(f, "ISA error: {e}"),
            Error::Codegen { detail } => write!(f, "code generation failed: {detail}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Graph(e) => Some(e),
            Error::Arch(e) => Some(e),
            Error::Isa(e) => Some(e),
            _ => None,
        }
    }
}

impl From<scaledeep_dnn::Error> for Error {
    fn from(e: scaledeep_dnn::Error) -> Self {
        Error::Graph(e)
    }
}

impl From<scaledeep_arch::Error> for Error {
    fn from(e: scaledeep_arch::Error) -> Self {
        Error::Arch(e)
    }
}

impl From<scaledeep_isa::Error> for Error {
    fn from(e: scaledeep_isa::Error) -> Self {
        Error::Isa(e)
    }
}
