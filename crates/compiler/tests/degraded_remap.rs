//! Property tests for degraded workload mapping: the logical→physical
//! column indirection a degraded [`Mapping`] carries must be a bijection
//! onto the *surviving* columns — strictly ascending, no duplicates, and
//! never landing on a condemned column.

use proptest::prelude::*;
use scaledeep_arch::presets;
use scaledeep_compiler::{Compiler, FailedTiles, Mapping};
use scaledeep_dnn::zoo;

/// A set of condemned physical columns: between one and six distinct
/// columns drawn from the front of the node's column space (where the
/// small zoo networks actually land).
fn failed_cols() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0usize..48, 1..7).prop_map(|mut cols| {
        cols.sort_unstable();
        cols.dedup();
        cols
    })
}

fn check_bijection(mapping: &Mapping, condemned: &[usize]) {
    let col_map = mapping.col_map();
    // Covers every logical column the placements reference.
    assert!(
        col_map.len() >= mapping.conv_cols_used(),
        "col_map ({}) must cover conv_cols_used ({})",
        col_map.len(),
        mapping.conv_cols_used()
    );
    // Strictly ascending ⇒ injective; onto the survivors by exclusion.
    for pair in col_map.windows(2) {
        assert!(
            pair[0] < pair[1],
            "col_map not strictly ascending: {:?}",
            col_map
        );
    }
    for &phys in col_map {
        assert!(
            !mapping.failed_cols().contains(&phys),
            "col_map routes logical work onto failed physical column {phys}"
        );
        assert!(
            !condemned.contains(&phys),
            "col_map routes onto condemned column {phys}"
        );
    }
    // The public lookup never resolves to a failed column either.
    for logical in 0..mapping.conv_cols_used() {
        let phys = mapping.physical_col(logical);
        assert!(
            !mapping.failed_cols().contains(&phys),
            "physical_col({logical}) = {phys} is a failed column"
        );
    }
    mapping.validate().expect("degraded mapping validates");
}

proptest! {
    /// Random condemned-column sets on a conv-heavy network: whenever the
    /// degraded map succeeds, the remap is a bijection onto survivors.
    #[test]
    fn degraded_col_map_is_a_bijection_onto_survivors(cols in failed_cols()) {
        let net = zoo::by_name("alexnet").unwrap();
        let compiler = Compiler::new(&presets::single_precision());
        let failed = FailedTiles::from_columns(cols.iter().copied());
        // Capacity exhaustion is a legitimate outcome for unlucky sets;
        // the property only constrains successful mappings.
        if let Ok(mapping) = compiler.map_degraded(&net, &failed) {
            prop_assert!(mapping.is_degraded() || mapping.failed_cols().is_empty());
            check_bijection(&mapping, &cols);
        }
    }

    /// Same property on a deeper all-3x3 network with different column
    /// pressure.
    #[test]
    fn degraded_vgg_remap_avoids_failed_columns(cols in failed_cols()) {
        let net = zoo::by_name("vgg-a").unwrap();
        let compiler = Compiler::new(&presets::single_precision());
        let failed = FailedTiles::from_columns(cols.iter().copied());
        if let Ok(mapping) = compiler.map_degraded(&net, &failed) {
            check_bijection(&mapping, &cols);
        }
    }
}

/// The empty failure set degenerates to the healthy mapping: identity
/// remap, nothing condemned.
#[test]
fn healthy_mapping_has_identity_remap() {
    let net = zoo::by_name("alexnet").unwrap();
    let mapping = Compiler::new(&presets::single_precision())
        .map(&net)
        .unwrap();
    assert!(!mapping.is_degraded());
    assert!(mapping.failed_cols().is_empty());
    for logical in 0..mapping.conv_cols_used() {
        assert_eq!(mapping.physical_col(logical), logical);
    }
}
