//! Golden test pinning the `MappingReport` table format. The report is
//! part of the repro harness's user-facing output (`repro -- drill`),
//! so its shape — column order, widths, aggregate line — must not drift
//! silently. Regenerate the expected text deliberately when the format
//! (or the AlexNet mapping itself) changes.

use scaledeep_arch::presets;
use scaledeep_compiler::{Compiler, MappingReport};
use scaledeep_dnn::zoo;

const EXPECTED: &str = "\
mapping report: alexnet (conv cols 16, fc cols 8, chips 1, clusters 1)
layer           flops/img  cols      pes   ideal_pes  u.cols  u.feat   u.arr
c1              632491200     2     3456      4377.6  1.2667  1.2667  1.2440
c2             1343692800     5     8640      9299.9  1.0764  1.0405  0.8361
c3              897122304     6    10368      6209.1  0.5989  0.5822  0.4731
c4              672841728     6    10368      4656.8  0.4492  0.4367  0.3548
c5              448561152     2     3456      3104.6  0.8983  0.8983  0.7299
aggregate utilization: columns 0.7895 -> features 0.7895 -> array 0.7217
";

#[test]
fn alexnet_mapping_report_matches_golden() {
    let net = zoo::by_name("alexnet").unwrap();
    let node = presets::single_precision();
    let mapping = Compiler::new(&node).map(&net).unwrap();
    let rendered = MappingReport::new(&mapping, node.cluster.conv_chip).render();
    assert_eq!(
        rendered, EXPECTED,
        "mapping-report format drifted; update the golden only for a \
         deliberate format or mapping change"
    );
}
