//! Measured per-layer attribution: joins a traced run's metrics and
//! spans with the compiled mapping and the analytic DNN cost model into
//! a hierarchical tree — per layer group × per pass (FP/BP/WG) ×
//! tile class (CompHeavy/MemHeavy) × interconnect tier
//! (grid/wheel/ring) — of cycles, bytes, and energy, plus a roofline
//! classification of each layer (the paper's Figures 15, 19, and 20,
//! measured instead of assumed).
//!
//! The *measured* quantities come from the run's [`MetricsRegistry`]
//! (per-stage busy counters, tier-byte gauges, the stage-occupancy
//! histogram); the *analytic* quantities (per-pass FLOP weights,
//! Bytes/FLOP) come from the mapping's [`LayerPlan`]s and the
//! [`scaledeep_dnn`] analysis. Cycles are split by apportioning each
//! stage's measured busy total across analytic weights with a
//! largest-remainder rule, so every split sums back to the measured
//! total exactly — the invariant the BENCH schema's checker relies on.

use crate::session::TracedRun;
use crate::{Error, Result};
use scaledeep_arch::{EnergyBreakdown, NodeConfig, PowerModel, Precision, UtilizationProfile};
use scaledeep_compiler::{CompiledArtifact, Placement, Side};
use scaledeep_dnn::{Network, Step};
use scaledeep_sim::perf::RunKind;
use scaledeep_trace::MetricsRegistry;

/// Which side of the roofline a layer lands on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RooflineBound {
    /// Operational intensity at or above the node's ridge point.
    Compute,
    /// Below the ridge point: external bandwidth limits it.
    Bandwidth,
}

impl RooflineBound {
    /// Stable lowercase name used by the BENCH schema.
    pub const fn name(&self) -> &'static str {
        match self {
            RooflineBound::Compute => "compute",
            RooflineBound::Bandwidth => "bandwidth",
        }
    }

    /// Parses [`RooflineBound::name`] back.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "compute" => Some(RooflineBound::Compute),
            "bandwidth" => Some(RooflineBound::Bandwidth),
            _ => None,
        }
    }
}

/// Measured cycles split across the three training passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PassSplit {
    /// Forward-propagation cycles.
    pub fp: u64,
    /// Backpropagation cycles.
    pub bp: u64,
    /// Weight-gradient cycles.
    pub wg: u64,
}

impl PassSplit {
    /// Total across the passes.
    pub fn total(&self) -> u64 {
        self.fp + self.bp + self.wg
    }
}

/// Measured cycles split across the two tile classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TileClassSplit {
    /// Cycles attributed to CompHeavy 2D-PE work.
    pub comp_heavy: u64,
    /// Cycles attributed to MemHeavy SFU work.
    pub mem_heavy: u64,
}

/// Bytes moved per image across the three physical interconnect tiers.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TierBytes {
    /// On-chip grid links (Comp-Mem, Mem-Mem, external-memory ports).
    pub grid: f64,
    /// Intra-cluster wheel (spokes + arcs).
    pub wheel: f64,
    /// Inter-cluster ring.
    pub ring: f64,
}

/// One pipeline stage's attribution: the layer group that
/// time-multiplexes the stage's columns, with the measured cycles split
/// down the hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerAttribution {
    /// Pipeline stage index.
    pub stage: usize,
    /// Stage name (member layer names joined with `+`).
    pub name: String,
    /// Measured busy cycles over the whole run (from the
    /// `perf.stage.NN.busy` counter).
    pub busy_cycles: u64,
    /// Analytic per-image service cycles of the stage.
    pub service_cycles: u64,
    /// Busy cycles split across FP/BP/WG by analytic pass weights.
    pub passes: PassSplit,
    /// Busy cycles split across CompHeavy/MemHeavy by analytic FLOPs.
    pub tile_classes: TileClassSplit,
    /// Bytes per image over the grid/wheel/ring tiers.
    pub tier_bytes: TierBytes,
    /// Analytic FLOPs per image (all member layers, run-kind scoped).
    pub flops: u64,
    /// Analytic Bytes/FLOP from the DNN cost model.
    pub bytes_per_flop: f64,
    /// Roofline classification against the node's ridge point.
    pub bound: RooflineBound,
    /// Energy share in joules per image (busy-cycle share of the
    /// measured node energy).
    pub joules_per_image: f64,
}

/// Histogram percentiles of the per-visit stage occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OccupancyPercentiles {
    /// Median service cycles per stage visit.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

/// The full measured attribution of one traced performance run.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribution {
    /// The simulated network.
    pub network: String,
    /// Training or evaluation.
    pub kind: RunKind,
    /// Sum of every stage's measured busy cycles — per-layer cycles sum
    /// to this exactly, by construction.
    pub total_busy_cycles: u64,
    /// Steady-state measurement window in cycles.
    pub window_cycles: u64,
    /// Images completed inside the window.
    pub images_done: u64,
    /// Cycles spent in minibatch gradient-sync barriers (outside the
    /// per-layer tree: syncs serialize the whole pipeline).
    pub sync_cycles: u64,
    /// Per-stage attribution, pipeline order.
    pub layers: Vec<LayerAttribution>,
    /// Node energy per image at the *measured* utilization profile.
    pub energy_per_image: EnergyBreakdown,
    /// The node's ridge operational intensity (FLOPs/byte) separating
    /// compute- from bandwidth-bound layers.
    pub ridge_intensity: f64,
    /// Percentiles of the `perf.stage.occupancy` histogram.
    pub occupancy: OccupancyPercentiles,
}

impl Attribution {
    /// Builds the attribution tree from a traced run, its compiled
    /// artifact, and the network it simulated.
    ///
    /// # Errors
    ///
    /// [`Error::Setup`] when the trace's stage structure does not match
    /// the mapping (stage count or expected metrics missing) — a drift
    /// between the stage builder and this module's grouping.
    pub fn build(
        traced: &TracedRun,
        artifact: &CompiledArtifact,
        net: &Network,
        node: &NodeConfig,
    ) -> Result<Attribution> {
        let mapping = artifact.mapping();
        let kind = traced.perf.kind;
        let reg = &traced.trace.metrics;
        let groups = stage_groups(mapping);
        if groups.len() != traced.perf.stages.len() {
            return Err(Error::Setup {
                detail: format!(
                    "attribution grouping found {} stages, run reported {}",
                    groups.len(),
                    traced.perf.stages.len()
                ),
            });
        }
        let analysis = net.analyze_with_elem_bytes(mapping.elem_bytes());

        // The ridge point: node peak FLOP/s over the aggregate operand-
        // streaming bandwidth. The analytic bytes being classified are the
        // per-step operand traffic, and operands stream over the
        // CompHeavy<->MemHeavy links (two per grid cell per role tile, §3.2)
        // — so that is the bandwidth a layer must beat to reach peak
        // compute. Layers below the ridge are starved for operands no
        // matter how many lanes they span.
        let cluster = &node.cluster;
        let chip_stream_bw = |chip: &scaledeep_arch::ChipConfig| {
            (chip.cols * chip.rows * 2 * 3) as f64 * chip.comp_mem_bw
        };
        let stream_bw = node.clusters as f64
            * (cluster.conv_chips as f64 * chip_stream_bw(&cluster.conv_chip)
                + chip_stream_bw(&cluster.fc_chip));
        let ridge_intensity = node.peak_flops() / stream_bw.max(1e-9);

        // Node energy per image at the measured utilization profile.
        let power = match node.precision {
            Precision::Single => PowerModel::paper_sp(),
            Precision::Half => PowerModel::paper_hp(),
        };
        let profile = measured_profile(&traced.perf);
        let seconds_per_image = 1.0 / traced.perf.images_per_sec.max(1e-9);
        let energy_per_image = power.node_energy(profile, seconds_per_image);

        let total_busy: u64 = (0..groups.len())
            .map(|i| {
                reg.counter_value(&format!("perf.stage.{i:02}.busy"))
                    .unwrap_or(0)
            })
            .sum();

        let steps: &[Step] = match kind {
            RunKind::Training => &Step::ALL,
            RunKind::Evaluation => &[Step::Fp],
        };

        let mut layers = Vec::with_capacity(groups.len());
        for (i, group) in groups.iter().enumerate() {
            let busy = reg
                .counter_value(&format!("perf.stage.{i:02}.busy"))
                .ok_or_else(|| Error::Setup {
                    detail: format!("metric perf.stage.{i:02}.busy missing from the trace"),
                })?;
            let service_cycles = traced.perf.stages[i].service_cycles;

            // Pass weights: analytic FLOPs (array + SFU) per pass, summed
            // over the group's member layers.
            let mut pass_w = [0.0f64; 3];
            let mut comp_w = 0.0f64;
            let mut mem_w = 0.0f64;
            for &id in &group.members {
                let plan = mapping.plan(id);
                for (p, w) in pass_w.iter_mut().enumerate() {
                    let active = match kind {
                        RunKind::Training => true,
                        RunKind::Evaluation => p == 0,
                    };
                    if active {
                        *w += (plan.comp_flops[p] + plan.mem_flops[p]) as f64;
                    }
                }
                match kind {
                    RunKind::Training => {
                        comp_w += plan.comp_flops_training() as f64;
                        mem_w += plan.mem_flops_training() as f64;
                    }
                    RunKind::Evaluation => {
                        comp_w += plan.comp_flops[0] as f64;
                        mem_w += plan.mem_flops[0] as f64;
                    }
                }
            }
            let split = apportion(busy, &pass_w);
            let passes = PassSplit {
                fp: split[0],
                bp: split[1],
                wg: split[2],
            };
            let tc = apportion(busy, &[comp_w, mem_w]);
            let tile_classes = TileClassSplit {
                comp_heavy: tc[0],
                mem_heavy: tc[1],
            };

            let tier = |t: &str| {
                reg.gauge_value(&format!("perf.stage.{i:02}.bytes.{t}"))
                    .unwrap_or(0.0)
            };
            let tier_bytes = TierBytes {
                grid: tier("grid"),
                wheel: tier("wheel"),
                ring: tier("ring"),
            };

            // Analytic intensity from the DNN cost model, scoped to the
            // run kind's steps.
            let mut flops = 0u64;
            let mut bytes = 0u64;
            for &id in &group.members {
                let cost = analysis.layer(id);
                for &s in steps {
                    flops += cost.step(s).total_flops();
                    bytes += cost.step(s).total_bytes();
                }
            }
            let bytes_per_flop = if flops == 0 {
                0.0
            } else {
                bytes as f64 / flops as f64
            };
            let intensity = if bytes == 0 {
                f64::INFINITY
            } else {
                flops as f64 / bytes as f64
            };
            let bound = if intensity >= ridge_intensity {
                RooflineBound::Compute
            } else {
                RooflineBound::Bandwidth
            };

            let joules_per_image = if total_busy == 0 {
                0.0
            } else {
                energy_per_image.total() * busy as f64 / total_busy as f64
            };

            layers.push(LayerAttribution {
                stage: i,
                name: group.name.clone(),
                busy_cycles: busy,
                service_cycles,
                passes,
                tile_classes,
                tier_bytes,
                flops,
                bytes_per_flop,
                bound,
                joules_per_image,
            });
        }

        let occupancy = reg
            .histogram_value("perf.stage.occupancy")
            .map(|h| OccupancyPercentiles {
                p50: h.percentile(50.0),
                p95: h.percentile(95.0),
                p99: h.percentile(99.0),
            })
            .unwrap_or_default();

        Ok(Attribution {
            network: traced.perf.network.clone(),
            kind,
            total_busy_cycles: total_busy,
            window_cycles: reg.gauge_value("perf.window_cycles").unwrap_or(0.0) as u64,
            images_done: reg.gauge_value("perf.images_done").unwrap_or(0.0) as u64,
            sync_cycles: reg.counter_value("perf.sync.cycles").unwrap_or(0),
            layers,
            energy_per_image,
            ridge_intensity,
            occupancy,
        })
    }
}

/// The utilization profile the run actually measured, reconstructed the
/// same way the simulator's power assembly blends it: 2D-PE and SFU
/// activity weighted by their peak-FLOP shares, interconnect as the mean
/// of the on-chip link classes.
pub fn measured_profile(perf: &scaledeep_sim::perf::PerfResult) -> UtilizationProfile {
    use scaledeep_arch::LinkClass;
    let on_chip = [LinkClass::CompMem, LinkClass::MemMem, LinkClass::ConvExtMem];
    let interconnect = on_chip
        .iter()
        .map(|&c| perf.link_utilization(c))
        .sum::<f64>()
        / on_chip.len() as f64;
    UtilizationProfile {
        compute: 0.9 * perf.pe_utilization + 0.1 * perf.sfu_utilization,
        interconnect,
    }
}

/// Per-tile busy/stall readback from a *functional* simulator run's
/// metrics (`func.tile.NNNN.busy` / `.stalls` counters): the
/// functional-side counterpart to the perf pipeline's stage counters,
/// used by cross-check diagnostics. Returns `(tile, busy, stalls)`
/// sorted by tile index; tiles that never ran are absent.
pub fn functional_tile_attribution(metrics: &MetricsRegistry) -> Vec<(usize, u64, u64)> {
    let mut out = Vec::new();
    for (name, value) in metrics.iter() {
        let Some(rest) = name.strip_prefix("func.tile.") else {
            continue;
        };
        let Some(idx) = rest.strip_suffix(".busy") else {
            continue;
        };
        let Ok(tile) = idx.parse::<usize>() else {
            continue;
        };
        let busy = match value {
            scaledeep_trace::Value::Counter(c) => *c,
            _ => continue,
        };
        let stalls = metrics
            .counter_value(&format!("func.tile.{idx}.stalls"))
            .unwrap_or(0);
        out.push((tile, busy, stalls));
    }
    out.sort_unstable_by_key(|&(tile, ..)| tile);
    out
}

/// One pipeline stage's layer group.
struct StageGroup {
    name: String,
    members: Vec<scaledeep_dnn::LayerId>,
}

/// Replicates the stage builder's layer→stage grouping: consecutive
/// conv-side layers sharing one column range fold into a single stage
/// (they time-multiplex the same role tiles); FC layers each get their
/// own stage and reset the fold; inline layers are skipped.
fn stage_groups(mapping: &scaledeep_compiler::Mapping) -> Vec<StageGroup> {
    let mut groups: Vec<StageGroup> = Vec::new();
    let mut last_conv_range: Option<(usize, usize)> = None;
    for plan in mapping.plans() {
        match plan.placement.side() {
            Side::Conv => {
                let range = match plan.placement {
                    Placement::Conv { first_col, cols } => (first_col, cols),
                    _ => continue,
                };
                if last_conv_range == Some(range) {
                    let prev = groups.last_mut().expect("previous conv group exists");
                    prev.name.push('+');
                    prev.name.push_str(&plan.name);
                    prev.members.push(plan.id);
                } else {
                    groups.push(StageGroup {
                        name: plan.name.clone(),
                        members: vec![plan.id],
                    });
                    last_conv_range = Some(range);
                }
            }
            Side::Fc => {
                last_conv_range = None;
                groups.push(StageGroup {
                    name: plan.name.clone(),
                    members: vec![plan.id],
                });
            }
            Side::None => {}
        }
    }
    groups
}

/// Splits `total` across `weights` proportionally, using the
/// largest-remainder method so the parts always sum to `total` exactly.
/// All-zero weights put everything on the first part (deterministic,
/// sum-preserving).
fn apportion(total: u64, weights: &[f64]) -> Vec<u64> {
    if weights.is_empty() {
        return Vec::new();
    }
    let sum: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
    if sum <= 0.0 {
        let mut out = vec![0u64; weights.len()];
        out[0] = total;
        return out;
    }
    let exact: Vec<f64> = weights
        .iter()
        .map(|&w| {
            let w = if w.is_finite() && w > 0.0 { w } else { 0.0 };
            total as f64 * w / sum
        })
        .collect();
    let mut parts: Vec<u64> = exact.iter().map(|&e| e.floor() as u64).collect();
    let assigned: u64 = parts.iter().sum();
    let mut order: Vec<usize> = (0..weights.len()).collect();
    // Largest fractional part first; ties resolve to the lowest index.
    order.sort_by(|&a, &b| {
        let fa = exact[a] - exact[a].floor();
        let fb = exact[b] - exact[b].floor();
        fb.partial_cmp(&fa)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut remainder = total.saturating_sub(assigned);
    for &i in order.iter().cycle().take(weights.len().max(1) * 2) {
        if remainder == 0 {
            break;
        }
        parts[i] += 1;
        remainder -= 1;
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Session, TraceConfig};
    use scaledeep_dnn::zoo;

    fn alexnet_attribution(kind: RunKind) -> Attribution {
        let session = Session::single_precision();
        let net = zoo::alexnet();
        let artifact = session.compile(&net).expect("alexnet maps");
        let traced = session
            .run_traced(&net, kind, &TraceConfig::default())
            .expect("alexnet simulates");
        Attribution::build(&traced, &artifact, &net, session.node()).expect("attribution builds")
    }

    #[test]
    fn apportion_preserves_totals() {
        assert_eq!(apportion(10, &[1.0, 1.0, 1.0]), vec![4, 3, 3]);
        assert_eq!(apportion(100, &[0.0, 0.0]), vec![100, 0]);
        assert_eq!(apportion(7, &[2.0, 1.0]), vec![5, 2]);
        assert_eq!(apportion(0, &[1.0, 2.0]), vec![0, 0]);
        for (total, w) in [
            (999u64, vec![0.3, 0.31, 0.39]),
            (1, vec![1.0, 1.0, 1.0, 1.0]),
            (12345, vec![f64::NAN, 5.0, 0.0]),
        ] {
            let parts = apportion(total, &w);
            assert_eq!(parts.iter().sum::<u64>(), total, "{w:?}");
        }
    }

    #[test]
    fn layer_cycles_sum_to_total_busy() {
        let a = alexnet_attribution(RunKind::Training);
        let sum: u64 = a.layers.iter().map(|l| l.busy_cycles).sum();
        assert_eq!(sum, a.total_busy_cycles);
        assert!(a.total_busy_cycles > 0);
        for l in &a.layers {
            assert_eq!(l.passes.total(), l.busy_cycles, "{}", l.name);
            assert_eq!(
                l.tile_classes.comp_heavy + l.tile_classes.mem_heavy,
                l.busy_cycles,
                "{}",
                l.name
            );
        }
    }

    #[test]
    fn training_attribution_has_all_three_passes() {
        let a = alexnet_attribution(RunKind::Training);
        let c1 = a.layers.iter().find(|l| l.name.starts_with("c1")).unwrap();
        assert!(c1.passes.fp > 0 && c1.passes.bp > 0 && c1.passes.wg > 0);
        assert!(c1.tile_classes.comp_heavy > c1.tile_classes.mem_heavy);
        assert!(c1.bound == RooflineBound::Compute, "c1 is compute bound");
    }

    #[test]
    fn evaluation_attribution_is_fp_only() {
        let a = alexnet_attribution(RunKind::Evaluation);
        for l in &a.layers {
            assert_eq!(l.passes.bp, 0, "{}", l.name);
            assert_eq!(l.passes.wg, 0, "{}", l.name);
            assert_eq!(l.passes.fp, l.busy_cycles, "{}", l.name);
        }
        assert_eq!(a.sync_cycles, 0, "evaluation has no gradient syncs");
    }

    #[test]
    fn energy_shares_sum_to_node_energy() {
        let a = alexnet_attribution(RunKind::Training);
        let sum: f64 = a.layers.iter().map(|l| l.joules_per_image).sum();
        assert!(
            (sum - a.energy_per_image.total()).abs() < 1e-6 * a.energy_per_image.total(),
            "shares {sum} vs total {}",
            a.energy_per_image.total()
        );
        assert!(a.energy_per_image.memory_joules > 0.0);
    }

    #[test]
    fn occupancy_percentiles_are_ordered() {
        let a = alexnet_attribution(RunKind::Training);
        assert!(a.occupancy.p50 > 0.0);
        assert!(a.occupancy.p50 <= a.occupancy.p95);
        assert!(a.occupancy.p95 <= a.occupancy.p99);
    }

    #[test]
    fn fc_layers_are_bandwidth_bound() {
        // FC layers stream huge weight matrices for few FLOPs — the
        // canonical bandwidth-bound case the roofline must catch.
        let a = alexnet_attribution(RunKind::Training);
        let f6 = a.layers.iter().find(|l| l.name == "f6").unwrap();
        assert_eq!(f6.bound, RooflineBound::Bandwidth);
        assert!(f6.bytes_per_flop > 1.0 / a.ridge_intensity);
    }

    #[test]
    fn window_and_sync_metrics_are_read_back() {
        let a = alexnet_attribution(RunKind::Training);
        assert!(a.window_cycles > 0);
        assert!(a.images_done > 0);
        assert!(a.sync_cycles > 0, "training syncs every minibatch");
    }

    fn tiny_training_net() -> Network {
        use scaledeep_dnn::{Activation, Conv, Fc, FeatureShape, NetworkBuilder};
        let mut b = NetworkBuilder::new("attrib", FeatureShape::new(1, 6, 6));
        let c = b
            .conv(
                "c",
                Conv {
                    out_features: 2,
                    kernel: 3,
                    stride: 1,
                    pad: 1,
                    groups: 1,
                    bias: false,
                    activation: Activation::Relu,
                },
            )
            .unwrap();
        let f = b
            .fc_from(
                "f",
                c,
                Fc {
                    out_neurons: 4,
                    bias: false,
                    activation: Activation::None,
                },
            )
            .unwrap();
        b.finish_with_loss(f).unwrap()
    }

    #[test]
    fn functional_readback_reports_tiles() {
        let mut node = scaledeep_arch::presets::single_precision();
        node.cluster.spoke_bw = node.cluster.arc_bw;
        let session = Session::with_node(node);
        let net = tiny_training_net();
        let x = session.cross_check(&net).expect("tiny net cross-checks");
        let tiles = functional_tile_attribution(&x.functional_metrics);
        assert!(!tiles.is_empty());
        for (tile, busy, _stalls) in &tiles {
            assert!(*busy > 0, "tile {tile} recorded busy cycles");
        }
        // Sorted ascending by tile index.
        for pair in tiles.windows(2) {
            assert!(pair[0].0 < pair[1].0);
        }
    }
}
