//! Experiment drivers: one function per paper figure/table, each
//! regenerating the figure's data as a [`Table`] plus structured rows.
//!
//! The per-experiment index lives in DESIGN.md §4; measured-vs-paper values
//! are recorded in EXPERIMENTS.md. Run any experiment from the command
//! line with `cargo run --release -p scaledeep-bench --bin repro -- <id>`.
//!
//! [`Table`]: crate::report::Table

mod ablations;
mod arch;
mod epochs;
mod faults;
mod links;
mod power;
mod speedup;
mod throughput;
mod utilization;
mod workload;

pub use ablations::{ablations, AblationRow};
pub use arch::{fig14, Fig14Row};
pub use epochs::{training_time, EpochRow, EPOCHS, IMAGENET_EPOCH_IMAGES};
pub use faults::{faults, FaultRow, FAULT_SWEEP_SEED};
pub use links::{fig21, Fig21Row};
pub use power::{fig20, Fig20Row};
pub use speedup::{dadiannao_comparison, fig18, Fig18Row};
pub use throughput::{fig16, fig17, ThroughputRow};
pub use utilization::{fig19, utilization_trace, Fig19, UtilizationTrace};
pub use workload::{fig1, fig15, fig4, fig5, Fig15Row};

use crate::report::Table;

/// All experiment ids, in paper order (with the non-paper robustness
/// sweep last).
pub const EXPERIMENT_IDS: [&str; 15] = [
    "fig1",
    "fig4",
    "fig5",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "fig20",
    "fig21",
    "ablations",
    "training-time",
    "faults",
    "utilization",
];

/// Runs an experiment by id, returning its rendered tables.
///
/// Returns `None` for unknown ids.
pub fn run_by_id(id: &str) -> Option<Vec<Table>> {
    match id {
        "fig1" => Some(vec![fig1()]),
        "fig4" => Some(vec![fig4()]),
        "fig5" => Some(vec![fig5()]),
        "fig14" => Some(fig14().1),
        "fig15" => Some(vec![fig15().1]),
        "fig16" => Some(vec![fig16().1]),
        "fig17" => Some(vec![fig17().1]),
        "fig18" => Some(vec![fig18().1, dadiannao_comparison()]),
        "fig19" => Some(fig19().1),
        "fig20" => Some(vec![fig20().1]),
        "fig21" => Some(vec![fig21().1]),
        "ablations" => Some(vec![ablations().1]),
        "training-time" => Some(vec![training_time().1]),
        "faults" => Some(vec![faults().1]),
        "utilization" => Some(utilization_trace().1),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_experiment_runs() {
        for id in EXPERIMENT_IDS {
            let tables = run_by_id(id).unwrap_or_else(|| panic!("{id} missing"));
            assert!(!tables.is_empty(), "{id} produced no tables");
            for t in &tables {
                assert!(!t.is_empty(), "{id}: empty table `{}`", t.title());
            }
        }
    }

    #[test]
    fn unknown_id_is_none() {
        assert!(run_by_id("fig99").is_none());
    }
}
