//! ScaleDeep: a scalable compute architecture for learning and evaluating
//! deep networks — a full reproduction of the ISCA 2017 paper in Rust.
//!
//! This facade crate ties the workspace together:
//!
//! * [`Session`] — the end-to-end API: pick a design point
//!   ([`Session::single_precision`] / [`Session::half_precision`]), compile
//!   any [`scaledeep_dnn::Network`] onto it, and simulate training or
//!   evaluation;
//! * [`experiments`] — one driver per paper figure/table, each regenerating
//!   the corresponding rows (Figures 1, 4, 5, 14–21) plus the ablations
//!   called out in DESIGN.md;
//! * [`report::Table`] — the plain-text table rendering the drivers share.
//!
//! # Quick start
//!
//! ```
//! use scaledeep::Session;
//! use scaledeep_dnn::zoo;
//!
//! # fn main() -> Result<(), scaledeep::Error> {
//! let session = Session::single_precision();
//! let result = session.train(&zoo::alexnet())?;
//! println!(
//!     "AlexNet trains at {:.0} images/s at {:.0} W",
//!     result.images_per_sec,
//!     result.avg_power.total()
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attribution;
pub mod dse;
pub mod experiments;
pub mod report;
mod session;

pub use attribution::{Attribution, LayerAttribution, RooflineBound};
pub use dse::{DseConfig, DsePoint, DseReport, Expansion, DSE_SCHEMA_VERSION};
pub use report::{BenchReport, BENCH_SCHEMA_VERSION};
pub use scaledeep_compiler::{CompileOptions, CompiledArtifact, FailedTiles, Provenance};
pub use scaledeep_sim::{Error, Result};
pub use session::{
    CacheStats, CycleCrossCheck, ResilientRun, Session, Trace, TraceConfig, TracedRun,
};
