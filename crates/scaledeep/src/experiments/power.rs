//! Figure 20: average power (normalized, split by subsystem) and
//! processing efficiency per benchmark during training.

use crate::report::{geomean, Table};
use crate::Session;
use scaledeep_dnn::zoo;

/// One Figure 20 row.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig20Row {
    /// Network name.
    pub network: String,
    /// Average power normalized to the 1.4 kW peak.
    pub norm_power: f64,
    /// Compute / memory / interconnect watts.
    pub split: (f64, f64, f64),
    /// Processing efficiency, GFLOPs/W.
    pub gflops_per_watt: f64,
}

/// Figure 20: per-benchmark average power and efficiency.
pub fn fig20() -> (Vec<Fig20Row>, Table) {
    let session = Session::single_precision();
    let peak_watts = 1400.0;
    let mut rows = Vec::new();
    let mut t = Table::new("Figure 20: average power and processing efficiency (training)")
        .headers([
            "network",
            "norm power",
            "compute W",
            "memory W",
            "interconnect W",
            "GFLOPs/W",
        ]);
    for name in zoo::FIGURE16_ORDER {
        let net = zoo::by_name(name).expect("known benchmark");
        let r = session.train(&net).expect("benchmark maps");
        let row = Fig20Row {
            network: name.to_string(),
            norm_power: r.avg_power.total() / peak_watts,
            split: (
                r.avg_power.compute_watts,
                r.avg_power.memory_watts,
                r.avg_power.interconnect_watts,
            ),
            gflops_per_watt: r.gflops_per_watt,
        };
        t.row([
            row.network.clone(),
            format!("{:.2}", row.norm_power),
            format!("{:.0}", row.split.0),
            format!("{:.0}", row.split.1),
            format!("{:.0}", row.split.2),
            format!("{:.1}", row.gflops_per_watt),
        ]);
        rows.push(row);
    }
    t.row([
        "GEOMEAN".to_string(),
        format!("{:.2}", geomean(rows.iter().map(|r| r.norm_power))),
        String::new(),
        String::new(),
        String::new(),
        format!("{:.1}", geomean(rows.iter().map(|r| r.gflops_per_watt))),
    ]);
    (rows, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_power_is_constant_across_benchmarks() {
        // Figure 20: "memory power, largely dominated by leakage, remains
        // largely constant".
        let (rows, _) = fig20();
        let first = rows[0].split.1;
        for r in &rows {
            assert!((r.split.1 - first).abs() < 1.0, "{}", r.network);
        }
    }

    #[test]
    fn efficiency_is_in_paper_band() {
        // Paper: 331.7 GFLOPs/W average.
        let (rows, _) = fig20();
        let g = geomean(rows.iter().map(|r| r.gflops_per_watt));
        assert!(g > 100.0 && g < 480.0, "geomean efficiency {g:.1}");
    }

    #[test]
    fn power_never_exceeds_peak() {
        let (rows, _) = fig20();
        for r in &rows {
            assert!(r.norm_power <= 1.0, "{}: {}", r.network, r.norm_power);
            assert!(r.norm_power > 0.1, "{}: {}", r.network, r.norm_power);
        }
    }
}
