//! Ablations of ScaleDeep's design choices (DESIGN.md §5): each knob is
//! switched off in isolation and the training-throughput cost measured.

use crate::report::Table;
use crate::Session;
use scaledeep_dnn::{zoo, Network};
use scaledeep_sim::perf::PerfOptions;

/// One ablation result.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Ablation id (A1..A5).
    pub id: &'static str,
    /// What was disabled.
    pub what: String,
    /// Network measured.
    pub network: String,
    /// Training throughput with the feature disabled, images/s.
    pub ablated_ips: f64,
    /// Baseline training throughput, images/s.
    pub baseline_ips: f64,
    /// Slowdown factor (baseline / ablated).
    pub slowdown: f64,
}

fn measure(net: &Network, session: &Session) -> f64 {
    session.train(net).expect("benchmark maps").images_per_sec
}

fn row(
    id: &'static str,
    what: &str,
    net: &Network,
    baseline: f64,
    session: &Session,
) -> AblationRow {
    let ablated = measure(net, session);
    AblationRow {
        id,
        what: what.to_string(),
        network: net.name().to_string(),
        ablated_ips: ablated,
        baseline_ips: baseline,
        slowdown: baseline / ablated,
    }
}

/// Runs ablations A1–A5 on OverFeat-Fast (FC-heavy, single-chip) and
/// VGG-A (conv-heavy, multi-chip), the two regimes the design targets.
pub fn ablations() -> (Vec<AblationRow>, Table) {
    let baseline_session = Session::single_precision();
    let mut rows = Vec::new();
    for net in [zoo::overfeat_fast(), zoo::vgg_a()] {
        let baseline = measure(&net, &baseline_session);

        // A1: no wheel batching of FC inputs.
        let s = Session::single_precision().with_options(PerfOptions {
            force_fc_batch: Some(1),
            ..PerfOptions::default()
        });
        rows.push(row("A1", "wheel FC batching off", &net, baseline, &s));

        // A2: no FC model parallelism across clusters.
        let s = Session::single_precision().with_options(PerfOptions {
            disable_fc_model_parallelism: true,
            ..PerfOptions::default()
        });
        rows.push(row("A2", "FC model parallelism off", &net, baseline, &s));

        // A3: homogeneous chips — the hub becomes another ConvLayer chip
        // (DaDianNao-style uniformity; FC layers lose their tuned
        // bandwidth and memory provisioning).
        let mut node = scaledeep_arch::presets::single_precision();
        let mut fc_like_conv = node.cluster.conv_chip;
        fc_like_conv.kind = scaledeep_arch::ChipKind::FcLayer;
        fc_like_conv.cols = node.cluster.fc_chip.cols;
        node.cluster.fc_chip = fc_like_conv;
        let s = Session::with_node(node);
        rows.push(row("A3", "homogeneous chips", &net, baseline, &s));

        // A4: no inter-layer pipelining.
        let s = Session::single_precision().with_options(PerfOptions {
            layer_sequential: true,
            ..PerfOptions::default()
        });
        rows.push(row("A4", "inter-layer pipelining off", &net, baseline, &s));

        // A5: idealized zero-cost minibatch synchronization (upper bound on
        // what a cheaper-than-MEMTRACK scheme could buy).
        let s = Session::single_precision().with_options(PerfOptions {
            ideal_sync: true,
            ..PerfOptions::default()
        });
        rows.push(row("A5", "zero-cost minibatch sync", &net, baseline, &s));

        // E1: the Winograd extension (paper §6.1: "no fundamental
        // bottlenecks" to adopting it) — a speedup, reported as slowdown<1.
        let s = Session::single_precision().with_options(PerfOptions {
            winograd: true,
            ..PerfOptions::default()
        });
        rows.push(row("E1", "Winograd 3x3 convolutions", &net, baseline, &s));
    }

    let mut t = Table::new("Ablations: design-choice sensitivity (training img/s)").headers([
        "id", "ablation", "network", "baseline", "ablated", "slowdown",
    ]);
    for r in &rows {
        t.row([
            r.id.to_string(),
            r.what.clone(),
            r.network.clone(),
            format!("{:.0}", r.baseline_ips),
            format!("{:.0}", r.ablated_ips),
            format!("{:.2}x", r.slowdown),
        ]);
    }
    (rows, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelining_is_the_biggest_lever() {
        // Disabling the inter-layer pipeline serializes every layer: the
        // slowdown must dwarf the other ablations.
        let (rows, _) = ablations();
        for net in ["overfeat-fast", "vgg-a"] {
            let a4 = rows
                .iter()
                .find(|r| r.id == "A4" && r.network == net)
                .unwrap();
            assert!(a4.slowdown > 2.0, "{net}: A4 slowdown {:.2}", a4.slowdown);
        }
    }

    #[test]
    fn wheel_batching_matters_for_fc_heavy_networks() {
        // OverFeat-Fast carries 146M weights, almost all FC: removing the
        // wheel batch multiplies the FC weight stream.
        let (rows, _) = ablations();
        let a1 = rows
            .iter()
            .find(|r| r.id == "A1" && r.network == "overfeat-fast")
            .unwrap();
        assert!(a1.slowdown >= 1.0, "A1 slowdown {:.2}", a1.slowdown);
    }

    #[test]
    fn ideal_sync_is_a_speedup_bound() {
        let (rows, _) = ablations();
        for r in rows.iter().filter(|r| r.id == "A5") {
            assert!(
                r.slowdown <= 1.0 + 1e-9,
                "{}: ideal sync cannot slow things down ({:.3})",
                r.network,
                r.slowdown
            );
        }
    }

    #[test]
    fn winograd_extension_is_a_speedup_on_3x3_networks() {
        let (rows, _) = ablations();
        let e1 = rows
            .iter()
            .find(|r| r.id == "E1" && r.network == "vgg-a")
            .unwrap();
        assert!(
            e1.slowdown < 0.8,
            "Winograd must speed VGG-A up (slowdown {:.2})",
            e1.slowdown
        );
    }

    #[test]
    fn no_ablation_makes_things_faster_except_a5_and_e1() {
        let (rows, _) = ablations();
        for r in rows.iter().filter(|r| r.id != "A5" && r.id != "E1") {
            assert!(
                r.slowdown >= 0.99,
                "{} {}: unexpected speedup {:.3}",
                r.id,
                r.network,
                r.slowdown
            );
        }
    }
}
