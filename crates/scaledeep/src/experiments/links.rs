//! Figure 21: link utilization at every interconnect tier per benchmark.

use crate::report::Table;
use crate::Session;
use scaledeep_arch::LinkClass;
use scaledeep_dnn::zoo;

/// One Figure 21 row: a network's utilization of each link class.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig21Row {
    /// Network name.
    pub network: String,
    /// Utilization per link class, in [`LinkClass::ALL`] order.
    pub utilization: [f64; 7],
}

/// Figure 21: per-benchmark link utilizations during training.
pub fn fig21() -> (Vec<Fig21Row>, Table) {
    let session = Session::single_precision();
    let mut rows = Vec::new();
    let mut headers = vec!["network".to_string()];
    headers.extend(LinkClass::ALL.iter().map(|c| c.to_string()));
    let mut t = Table::new("Figure 21: bandwidth utilization of links (training)").headers(headers);
    for name in zoo::FIGURE16_ORDER {
        let net = zoo::by_name(name).expect("known benchmark");
        let r = session.train(&net).expect("benchmark maps");
        let mut utilization = [0.0; 7];
        for (i, class) in LinkClass::ALL.iter().enumerate() {
            utilization[i] = r.link_utilization(*class);
        }
        let mut cells = vec![name.to_string()];
        cells.extend(utilization.iter().map(|u| format!("{u:.2}")));
        t.row(cells);
        rows.push(Fig21Row {
            network: name.to_string(),
            utilization,
        });
    }
    (rows, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx(class: LinkClass) -> usize {
        LinkClass::ALL.iter().position(|&c| c == class).unwrap()
    }

    #[test]
    fn comp_mem_is_the_best_utilized_on_chip_link() {
        // Paper: "we find the CompHeavy-MemHeavy tile links to be the best
        // utilized (0.87)".
        let (rows, _) = fig21();
        let mut higher = 0;
        for r in &rows {
            if r.utilization[idx(LinkClass::CompMem)] >= r.utilization[idx(LinkClass::MemMem)] {
                higher += 1;
            }
        }
        assert!(
            higher >= 8,
            "comp-mem should dominate mem-mem ({higher}/11)"
        );
    }

    #[test]
    fn ring_is_quiet_except_for_multicluster_networks() {
        // Paper: "the utilization of the ring is small for all benchmarks
        // except VGG-D/E".
        let (rows, _) = fig21();
        let ring = idx(LinkClass::Ring);
        let vgg_e = rows.iter().find(|r| r.network == "vgg-e").unwrap();
        let alexnet = rows.iter().find(|r| r.network == "alexnet").unwrap();
        assert!(vgg_e.utilization[ring] > alexnet.utilization[ring]);
    }

    #[test]
    fn single_chip_networks_leave_arcs_nearly_idle() {
        // Paper: "DNNs whose CONV layers fit on a single chip have very
        // minimal use for the wheel arcs".
        let (rows, _) = fig21();
        let arc = idx(LinkClass::Arc);
        let alexnet = rows.iter().find(|r| r.network == "alexnet").unwrap();
        assert!(
            alexnet.utilization[arc] < 0.1,
            "{}",
            alexnet.utilization[arc]
        );
        let vgg_d = rows.iter().find(|r| r.network == "vgg-d").unwrap();
        assert!(vgg_d.utilization[arc] > alexnet.utilization[arc]);
    }

    #[test]
    fn all_utilizations_are_fractions() {
        let (rows, _) = fig21();
        for r in &rows {
            for &u in &r.utilization {
                assert!((0.0..=1.0).contains(&u), "{}: {u}", r.network);
            }
        }
    }
}
