//! Figure 19: the utilization waterfall — AlexNet layer-wise analysis and
//! the suite-wide 0.68 → 0.64 → 0.42 → 0.35 cascade — plus the
//! trace-driven per-stage occupancy heatmap (`utilization` experiment).

use crate::attribution::measured_profile;
use crate::report::{geomean, Table};
use crate::{Session, TraceConfig};
use scaledeep_arch::{PowerModel, Precision};
use scaledeep_compiler::MappingReport;
use scaledeep_dnn::zoo;
use scaledeep_sim::perf::RunKind;
use scaledeep_trace::busy_cycles_per_track;

/// The Figure 19 data: AlexNet rows plus suite-level cascade.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig19 {
    /// AlexNet per-layer (name, cols, PEs, util after columns / features /
    /// array).
    pub alexnet_rows: Vec<(String, usize, usize, f64, f64, f64)>,
    /// Suite-wide aggregate utilization after (columns, features, array,
    /// instruction overhead).
    pub suite_cascade: [f64; 4],
}

/// Runs the Figure 19 analysis.
pub fn fig19() -> (Fig19, Vec<Table>) {
    let session = Session::single_precision();
    let node = *session.node();

    // --- AlexNet layer-wise table ---
    let net = zoo::alexnet();
    let artifact = session.compile(&net).expect("alexnet maps");
    let report = MappingReport::new(artifact.mapping(), node.cluster.conv_chip);
    let waterfall = report.waterfall();
    let mut alexnet_rows = Vec::new();
    let mut t1 = Table::new("Figure 19: AlexNet layer-wise utilization").headers([
        "layer",
        "cols",
        "2D-PEs",
        "peak util (cols)",
        "after features",
        "after array",
    ]);
    for r in &waterfall.rows {
        alexnet_rows.push((
            r.name.clone(),
            r.cols,
            r.pes,
            r.util_after_columns,
            r.util_after_features,
            r.util_after_array,
        ));
        t1.row([
            r.name.clone(),
            r.cols.to_string(),
            r.pes.to_string(),
            format!("{:.2}", r.util_after_columns),
            format!("{:.2}", r.util_after_features),
            format!("{:.2}", r.util_after_array),
        ]);
    }

    // --- suite-wide cascade ---
    let mut after_cols = Vec::new();
    let mut after_feat = Vec::new();
    let mut after_array = Vec::new();
    let mut achieved = Vec::new();
    for name in zoo::BENCHMARK_NAMES {
        let bench = zoo::by_name(name).expect("known benchmark");
        let m = session.compile(&bench).expect("benchmark maps");
        let w = MappingReport::new(m.mapping(), node.cluster.conv_chip).waterfall();
        after_cols.push(w.after_columns);
        after_feat.push(w.after_features);
        after_array.push(w.after_array);
        let perf = session.train(&bench).expect("benchmark simulates");
        achieved.push(perf.pe_utilization);
    }
    let suite_cascade = [
        geomean(after_cols.iter().copied()),
        geomean(after_feat.iter().copied()),
        geomean(after_array.iter().copied()),
        geomean(achieved.iter().copied()),
    ];
    let mut t2 = Table::new(
        "Figure 19: suite-wide utilization cascade (paper: 0.68 -> 0.64 -> 0.42 -> 0.35)",
    )
    .headers(["stage", "utilization"]);
    t2.row([
        "after column allocation".to_string(),
        format!("{:.2}", suite_cascade[0]),
    ]);
    t2.row([
        "after feature distribution".to_string(),
        format!("{:.2}", suite_cascade[1]),
    ]);
    t2.row([
        "after 2D-array residue".to_string(),
        format!("{:.2}", suite_cascade[2]),
    ]);
    t2.row([
        "achieved (with instruction overhead)".to_string(),
        format!("{:.2}", suite_cascade[3]),
    ]);

    // --- memory-side utilization (Figure 19's right panel: SFU and
    // memory-array usage alongside the 2D-PE waterfall) ---
    let col_cap = node.cluster.conv_chip.col_mem_capacity() as f64;
    let perf = session.train(&net).expect("alexnet simulates");
    let mut t3 = Table::new("Figure 19: AlexNet memory-side utilization").headers([
        "layer",
        "state MB",
        "capacity MB",
        "mem util",
        "tiles used/total",
    ]);
    for plan in artifact.mapping().conv_plans() {
        if plan.placement.cols() == 0 {
            continue;
        }
        let capacity = plan.placement.cols() as f64 * col_cap;
        let state = plan.state_bytes as f64
            + if plan.weights_on_chip {
                2.0 * plan.weight_bytes as f64
            } else {
                0.0
            };
        t3.row([
            plan.name.clone(),
            format!("{:.2}", state / 1e6),
            format!("{:.2}", capacity / 1e6),
            format!("{:.2}", state / capacity),
            format!("{}/{}", plan.tiles_used, plan.tiles_total),
        ]);
    }
    t3.row([
        "SFU utilization (chip)".to_string(),
        String::new(),
        String::new(),
        format!("{:.2}", perf.sfu_utilization),
        String::new(),
    ]);

    (
        Fig19 {
            alexnet_rows,
            suite_cascade,
        },
        vec![t1, t2, t3],
    )
}

/// The trace-driven utilization data: per-track busy fractions measured
/// from the pipeline's stage-occupancy spans (not the analytic model).
#[derive(Debug, Clone, PartialEq)]
pub struct UtilizationTrace {
    /// `(track name, busy cycles, busy fraction of the traced window)`
    /// for every track that recorded at least one span.
    pub rows: Vec<(String, u64, f64)>,
    /// The rendered per-track time-binned heatmap.
    pub heatmap: String,
    /// Cycles the traced window covers.
    pub window: u64,
    /// Achieved processing efficiency at the *measured* utilization
    /// profile ([`PowerModel::node_efficiency`] fed the profile the trace
    /// observed, not the paper's assumed one).
    pub gflops_per_watt: f64,
}

/// Number of time bins in the heatmap rendering.
const HEATMAP_BINS: usize = 64;

/// Runs the `utilization` experiment: traces an AlexNet training run
/// through the performance pipeline and renders where each stage actually
/// spent its cycles — a measured counterpart to Figure 19's analytic
/// waterfall.
pub fn utilization_trace() -> (UtilizationTrace, Vec<Table>) {
    let session = Session::single_precision();
    let traced = session
        .run_traced(&zoo::alexnet(), RunKind::Training, &TraceConfig::default())
        .expect("alexnet maps");
    let trace = &traced.trace;

    let window = trace.events.iter().map(|e| e.at + e.dur).max().unwrap_or(0);
    let busy = busy_cycles_per_track(&trace.events, &trace.tracks);
    let mut rows = Vec::new();
    let mut t1 = Table::new("utilization: traced per-stage occupancy (alexnet, training)")
        .headers(["track", "busy cycles", "busy frac"]);
    for (id, name) in trace.tracks.iter() {
        let cycles = busy[id as usize];
        if cycles == 0 {
            continue;
        }
        let frac = cycles as f64 / window.max(1) as f64;
        t1.row([name.to_string(), cycles.to_string(), format!("{frac:.3}")]);
        rows.push((name.to_string(), cycles, frac));
    }

    // Achieved efficiency at the profile the trace measured — the
    // honest counterpart to Figure 20's assumed-utilization GFLOPS/W.
    let power = match session.node().precision {
        Precision::Single => PowerModel::paper_sp(),
        Precision::Half => PowerModel::paper_hp(),
    };
    let profile = measured_profile(&traced.perf);
    let gflops_per_watt = power.node_efficiency(traced.perf.achieved_flops, profile) / 1e9;
    t1.row([
        "achieved GFLOPS/W (measured profile)".to_string(),
        String::new(),
        format!("{gflops_per_watt:.1}"),
    ]);

    let heatmap = trace.utilization_report(HEATMAP_BINS);
    let mut t2 = Table::new("utilization: per-stage occupancy heatmap").headers(["timeline"]);
    for line in heatmap.lines() {
        t2.row([line.to_string()]);
    }

    (
        UtilizationTrace {
            rows,
            heatmap,
            window,
            gflops_per_watt,
        },
        vec![t1, t2],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traced_utilization_covers_every_stage() {
        let (u, tables) = utilization_trace();
        assert!(u.window > 0);
        // AlexNet training has 8 weighted layers -> at least 8 stage
        // tracks recorded spans, plus the sync track.
        assert!(u.rows.len() >= 8, "only {} busy tracks", u.rows.len());
        assert!(u.rows.iter().any(|(name, ..)| name == "sync"));
        for (name, busy, frac) in &u.rows {
            assert!(*busy > 0, "{name}");
            assert!(*frac > 0.0 && *frac <= 1.0, "{name}: {frac}");
        }
        assert_eq!(tables.len(), 2);
        assert!(!tables[1].is_empty());
        // The paper quotes ~486 GFLOPS/W at assumed utilizations; the
        // measured profile lands in the same order of magnitude.
        assert!(
            u.gflops_per_watt > 50.0 && u.gflops_per_watt < 2000.0,
            "measured efficiency {} GFLOPS/W",
            u.gflops_per_watt
        );
    }

    #[test]
    fn cascade_decreases_monotonically() {
        let (f, _) = fig19();
        let c = f.suite_cascade;
        assert!(c[0] >= c[1] && c[1] >= c[2], "{c:?}");
        assert!(c[3] > 0.05, "achieved utilization sane: {c:?}");
    }

    #[test]
    fn cascade_is_in_paper_neighborhood() {
        // Paper: 0.68 / 0.64 / 0.42 / 0.35.
        let (f, _) = fig19();
        let c = f.suite_cascade;
        assert!(c[0] > 0.4 && c[0] <= 1.0, "cols {}", c[0]);
        assert!(c[2] > 0.2 && c[2] < 0.9, "array {}", c[2]);
        assert!(c[3] > 0.15 && c[3] < 0.8, "achieved {}", c[3]);
    }

    #[test]
    fn alexnet_rows_cover_conv_layers() {
        let (f, _) = fig19();
        assert!(f.alexnet_rows.iter().any(|r| r.0 == "c1"));
        assert!(f.alexnet_rows.iter().any(|r| r.0 == "c5"));
    }
}
