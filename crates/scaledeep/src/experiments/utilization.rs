//! Figure 19: the utilization waterfall — AlexNet layer-wise analysis and
//! the suite-wide 0.68 → 0.64 → 0.42 → 0.35 cascade.

use crate::report::{geomean, Table};
use crate::Session;
use scaledeep_compiler::MappingReport;
use scaledeep_dnn::zoo;

/// The Figure 19 data: AlexNet rows plus suite-level cascade.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig19 {
    /// AlexNet per-layer (name, cols, PEs, util after columns / features /
    /// array).
    pub alexnet_rows: Vec<(String, usize, usize, f64, f64, f64)>,
    /// Suite-wide aggregate utilization after (columns, features, array,
    /// instruction overhead).
    pub suite_cascade: [f64; 4],
}

/// Runs the Figure 19 analysis.
pub fn fig19() -> (Fig19, Vec<Table>) {
    let session = Session::single_precision();
    let node = *session.node();

    // --- AlexNet layer-wise table ---
    let net = zoo::alexnet();
    let mapping = session.compile(&net).expect("alexnet maps");
    let report = MappingReport::new(&mapping, node.cluster.conv_chip);
    let waterfall = report.waterfall();
    let mut alexnet_rows = Vec::new();
    let mut t1 = Table::new("Figure 19: AlexNet layer-wise utilization").headers([
        "layer",
        "cols",
        "2D-PEs",
        "peak util (cols)",
        "after features",
        "after array",
    ]);
    for r in &waterfall.rows {
        alexnet_rows.push((
            r.name.clone(),
            r.cols,
            r.pes,
            r.util_after_columns,
            r.util_after_features,
            r.util_after_array,
        ));
        t1.row([
            r.name.clone(),
            r.cols.to_string(),
            r.pes.to_string(),
            format!("{:.2}", r.util_after_columns),
            format!("{:.2}", r.util_after_features),
            format!("{:.2}", r.util_after_array),
        ]);
    }

    // --- suite-wide cascade ---
    let mut after_cols = Vec::new();
    let mut after_feat = Vec::new();
    let mut after_array = Vec::new();
    let mut achieved = Vec::new();
    for name in zoo::BENCHMARK_NAMES {
        let bench = zoo::by_name(name).expect("known benchmark");
        let m = session.compile(&bench).expect("benchmark maps");
        let w = MappingReport::new(&m, node.cluster.conv_chip).waterfall();
        after_cols.push(w.after_columns);
        after_feat.push(w.after_features);
        after_array.push(w.after_array);
        let perf = session.train(&bench).expect("benchmark simulates");
        achieved.push(perf.pe_utilization);
    }
    let suite_cascade = [
        geomean(after_cols.iter().copied()),
        geomean(after_feat.iter().copied()),
        geomean(after_array.iter().copied()),
        geomean(achieved.iter().copied()),
    ];
    let mut t2 = Table::new(
        "Figure 19: suite-wide utilization cascade (paper: 0.68 -> 0.64 -> 0.42 -> 0.35)",
    )
    .headers(["stage", "utilization"]);
    t2.row([
        "after column allocation".to_string(),
        format!("{:.2}", suite_cascade[0]),
    ]);
    t2.row([
        "after feature distribution".to_string(),
        format!("{:.2}", suite_cascade[1]),
    ]);
    t2.row([
        "after 2D-array residue".to_string(),
        format!("{:.2}", suite_cascade[2]),
    ]);
    t2.row([
        "achieved (with instruction overhead)".to_string(),
        format!("{:.2}", suite_cascade[3]),
    ]);

    // --- memory-side utilization (Figure 19's right panel: SFU and
    // memory-array usage alongside the 2D-PE waterfall) ---
    let col_cap = node.cluster.conv_chip.col_mem_capacity() as f64;
    let perf = session.train(&net).expect("alexnet simulates");
    let mut t3 = Table::new("Figure 19: AlexNet memory-side utilization").headers([
        "layer",
        "state MB",
        "capacity MB",
        "mem util",
        "tiles used/total",
    ]);
    for plan in mapping.conv_plans() {
        if plan.placement.cols() == 0 {
            continue;
        }
        let capacity = plan.placement.cols() as f64 * col_cap;
        let state = plan.state_bytes as f64
            + if plan.weights_on_chip {
                2.0 * plan.weight_bytes as f64
            } else {
                0.0
            };
        t3.row([
            plan.name.clone(),
            format!("{:.2}", state / 1e6),
            format!("{:.2}", capacity / 1e6),
            format!("{:.2}", state / capacity),
            format!("{}/{}", plan.tiles_used, plan.tiles_total),
        ]);
    }
    t3.row([
        "SFU utilization (chip)".to_string(),
        String::new(),
        String::new(),
        format!("{:.2}", perf.sfu_utilization),
        String::new(),
    ]);

    (
        Fig19 {
            alexnet_rows,
            suite_cascade,
        },
        vec![t1, t2, t3],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cascade_decreases_monotonically() {
        let (f, _) = fig19();
        let c = f.suite_cascade;
        assert!(c[0] >= c[1] && c[1] >= c[2], "{c:?}");
        assert!(c[3] > 0.05, "achieved utilization sane: {c:?}");
    }

    #[test]
    fn cascade_is_in_paper_neighborhood() {
        // Paper: 0.68 / 0.64 / 0.42 / 0.35.
        let (f, _) = fig19();
        let c = f.suite_cascade;
        assert!(c[0] > 0.4 && c[0] <= 1.0, "cols {}", c[0]);
        assert!(c[2] > 0.2 && c[2] < 0.9, "array {}", c[2]);
        assert!(c[3] > 0.15 && c[3] < 0.8, "achieved {}", c[3]);
    }

    #[test]
    fn alexnet_rows_cover_conv_layers() {
        let (f, _) = fig19();
        assert!(f.alexnet_rows.iter().any(|r| r.0 == "c1"));
        assert!(f.alexnet_rows.iter().any(|r| r.0 == "c5"));
    }
}
