//! Figures 16 and 17: training & evaluation throughput, utilization and
//! column allocation per benchmark, at single and half precision.

use crate::report::{geomean, Table};
use crate::Session;
use scaledeep_dnn::zoo;

/// One Figure 16/17 row.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputRow {
    /// Network name.
    pub network: String,
    /// ConvLayer columns allocated.
    pub cols: usize,
    /// Training throughput, images/s.
    pub train_ips: f64,
    /// Evaluation throughput, images/s.
    pub eval_ips: f64,
    /// 2D-PE utilization during training.
    pub utilization: f64,
}

fn throughput_table(session: &Session, title: &str) -> (Vec<ThroughputRow>, Table) {
    let mut rows = Vec::new();
    let mut t = Table::new(title).headers([
        "network",
        "cols",
        "train img/s",
        "eval img/s",
        "eval/train",
        "util",
    ]);
    for name in zoo::FIGURE16_ORDER {
        let net = zoo::by_name(name).expect("known benchmark");
        let train = session.train(&net).expect("benchmark maps");
        let eval = session.evaluate(&net).expect("benchmark maps");
        let row = ThroughputRow {
            network: name.to_string(),
            cols: train.conv_cols,
            train_ips: train.images_per_sec,
            eval_ips: eval.images_per_sec,
            utilization: train.pe_utilization,
        };
        t.row([
            row.network.clone(),
            row.cols.to_string(),
            format!("{:.0}", row.train_ips),
            format!("{:.0}", row.eval_ips),
            format!("{:.2}", row.eval_ips / row.train_ips),
            format!("{:.2}", row.utilization),
        ]);
        rows.push(row);
    }
    t.row([
        "GEOMEAN".to_string(),
        String::new(),
        format!("{:.0}", geomean(rows.iter().map(|r| r.train_ips))),
        format!("{:.0}", geomean(rows.iter().map(|r| r.eval_ips))),
        format!(
            "{:.2}",
            geomean(rows.iter().map(|r| r.eval_ips / r.train_ips))
        ),
        format!("{:.2}", geomean(rows.iter().map(|r| r.utilization))),
    ]);
    (rows, t)
}

/// Figure 16: single-precision training & evaluation performance.
pub fn fig16() -> (Vec<ThroughputRow>, Table) {
    throughput_table(
        &Session::single_precision(),
        "Figure 16: single-precision training & evaluation performance",
    )
}

/// Figure 17: half-precision training & evaluation performance.
pub fn fig17() -> (Vec<ThroughputRow>, Table) {
    throughput_table(
        &Session::half_precision(),
        "Figure 17: half-precision training & evaluation performance",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::geomean;

    #[test]
    fn fig16_covers_all_benchmarks_plus_geomean() {
        let (rows, t) = fig16();
        assert_eq!(rows.len(), 11);
        assert_eq!(t.len(), 12);
    }

    #[test]
    fn training_throughput_is_thousands_of_images() {
        // Paper: "a training throughput of thousands of images/second
        // across all networks".
        let (rows, _) = fig16();
        for r in &rows {
            assert!(r.train_ips > 500.0, "{}: {}", r.network, r.train_ips);
        }
    }

    #[test]
    fn hp_speedup_is_near_paper_1_85x() {
        // Paper §6.1: HP achieves 1.85x (training) over SP.
        let (sp, _) = fig16();
        let (hp, _) = fig17();
        let speedup = geomean(sp.iter().zip(&hp).map(|(s, h)| h.train_ips / s.train_ips));
        assert!(
            speedup > 1.3 && speedup < 2.6,
            "HP geomean speedup {speedup}"
        );
    }

    #[test]
    fn eval_to_train_ratio_is_just_over_3() {
        let (rows, _) = fig16();
        let ratio = geomean(rows.iter().map(|r| r.eval_ips / r.train_ips));
        assert!(ratio > 2.3 && ratio < 4.6, "geomean eval/train {ratio}");
    }
}
