//! Workload-analysis experiments: Figures 1, 4, 5 and 15 — pure static
//! analysis over the benchmark zoo, no simulation.

use crate::report::Table;
use scaledeep_dnn::{kernel_summary, layer_class_breakdown, zoo, Kernel, Step};

/// Figure 1: scalar GFLOPs to evaluate one image, per benchmark, in the
/// paper's chronological order (2012 → 2015 entries).
pub fn fig1() -> Table {
    let order = [
        "alexnet",
        "zf",
        "resnet18",
        "googlenet",
        "cnn-s",
        "overfeat-fast",
        "resnet34",
        "overfeat-accurate",
        "vgg-a",
        "vgg-d",
        "vgg-e",
    ];
    let mut t = Table::new("Figure 1: DNN evaluation FLOPs (billions, one image)").headers([
        "network",
        "GFLOPs (FP)",
        "G-MACs",
    ]);
    for name in order {
        let net = zoo::by_name(name).expect("known benchmark");
        let a = net.analyze();
        t.row([
            name.to_string(),
            format!("{:.2}", a.total_flops(Step::Fp) as f64 / 1e9),
            format!("{:.2}", a.connections() as f64 / 1e9),
        ]);
    }
    t
}

/// Figure 4: OverFeat-Fast per-layer-class compute and data breakdown.
pub fn fig4() -> Table {
    let net = zoo::overfeat_fast();
    let a = net.analyze();
    let rows = layer_class_breakdown(&net, &a);
    let mut t = Table::new("Figure 4: OverFeat layer-class breakdown").headers([
        "class",
        "layers",
        "feat count",
        "feat size",
        "weights",
        "FLOPs %",
        "B/F (FP+BP)",
        "B/F (WG)",
        "conv/mm %",
        "acc %",
        "act %",
    ]);
    for r in rows {
        let share = |k: Kernel| {
            r.op_split
                .iter()
                .find(|(kk, _)| *kk == k)
                .map(|&(_, s)| s * 100.0)
                .unwrap_or(0.0)
        };
        t.row([
            r.class.to_string(),
            r.layers.to_string(),
            format!("{}-{}", r.feature_count.0, r.feature_count.1),
            format!("{}x{0}-{1}x{1}", r.feature_size.0, r.feature_size.1),
            format!(
                "{:.2}M-{:.2}M",
                r.weights.0 as f64 / 1e6,
                r.weights.1 as f64 / 1e6
            ),
            format!("{:.1}", r.flops_share * 100.0),
            format!("{:.3}", r.bf_fp_bp),
            format!("{:.2}", r.bf_wg),
            format!("{:.1}", share(Kernel::NdConv) + share(Kernel::MatMul)),
            format!(
                "{:.1}",
                share(Kernel::NdAccumulate) + share(Kernel::VecEltwiseMul)
            ),
            format!(
                "{:.1}",
                share(Kernel::ActivationFn) + share(Kernel::Sampling)
            ),
        ]);
    }
    t
}

/// Figure 5: kernel-level summary across the 11-network suite.
pub fn fig5() -> Table {
    let suite = zoo::benchmark_suite();
    let rows = kernel_summary(&suite);
    let mut t = Table::new("Figure 5: operations in DNN training (11-network suite)").headers([
        "kernel",
        "FLOPs %",
        "Bytes/FLOP",
    ]);
    for r in rows {
        t.row([
            r.kernel.to_string(),
            format!("{:.2}", r.flops_share * 100.0),
            format!("{:.2}", r.bytes_per_flop),
        ]);
    }
    t
}

/// One Figure 15 row.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig15Row {
    /// Network name.
    pub network: String,
    /// (CONV, FC, SAMP) layer counts.
    pub layers: (usize, usize, usize),
    /// Neurons in millions (paper counting convention).
    pub neurons_m: f64,
    /// Weights in millions.
    pub weights_m: f64,
    /// Connections (MAC pairs) in billions.
    pub connections_b: f64,
}

/// Figure 15: the benchmark table.
pub fn fig15() -> (Vec<Fig15Row>, Table) {
    let mut rows = Vec::new();
    let mut t = Table::new("Figure 15: DNN benchmarks").headers([
        "network",
        "layers (CONV/FC/SAMP)",
        "neurons (M)",
        "weights (M)",
        "connections (B)",
    ]);
    for name in zoo::BENCHMARK_NAMES {
        let net = zoo::by_name(name).expect("known benchmark");
        let a = net.analyze();
        let row = Fig15Row {
            network: name.to_string(),
            layers: net.layer_counts(),
            neurons_m: zoo::fig15_neurons(&net) as f64 / 1e6,
            weights_m: a.weights() as f64 / 1e6,
            connections_b: a.connections() as f64 / 1e9,
        };
        t.row([
            row.network.clone(),
            format!(
                "{} ({}/{}/{})",
                row.layers.0 + row.layers.1 + row.layers.2,
                row.layers.0,
                row.layers.1,
                row.layers.2
            ),
            format!("{:.2}", row.neurons_m),
            format!("{:.1}", row.weights_m),
            format!("{:.2}", row.connections_b),
        ]);
        rows.push(row);
    }
    (rows, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_lists_all_benchmarks() {
        assert_eq!(fig1().len(), 11);
    }

    #[test]
    fn fig4_has_four_classes() {
        assert_eq!(fig4().len(), 4);
    }

    #[test]
    fn fig5_has_six_kernels() {
        assert_eq!(fig5().len(), 6);
    }

    #[test]
    fn fig15_rows_match_zoo() {
        let (rows, t) = fig15();
        assert_eq!(rows.len(), 11);
        assert_eq!(t.len(), 11);
        let vgg_d = rows.iter().find(|r| r.network == "vgg-d").unwrap();
        assert!((vgg_d.weights_m - 138.4).abs() < 0.5);
    }
}
