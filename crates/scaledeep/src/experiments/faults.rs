//! Degradation curve: training throughput under permanently failed tile
//! columns and transiently flaky links (DESIGN.md "Fault model & degraded
//! operation"). Not a paper figure — the paper assumes healthy silicon —
//! but the natural robustness companion to Figure 16's throughput data.

use crate::report::Table;
use crate::Session;
use scaledeep_compiler::FailedTiles;
use scaledeep_dnn::zoo;
use scaledeep_sim::fault::{FaultPlan, LinkFaults};
use scaledeep_sim::perf::RunKind;

/// Fixed seed for the link-fault draws, shared with the CI smoke job so
/// the sweep is replayable.
pub const FAULT_SWEEP_SEED: u64 = 0xFA01;

/// One degradation-curve row.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRow {
    /// Condemned ConvLayer columns (0 = healthy baseline).
    pub failed_cols: usize,
    /// Per-transfer link-fault probability (0 = clean links).
    pub link_fault_prob: f64,
    /// Training throughput under the fault condition.
    pub images_per_sec: f64,
    /// Throughput relative to the healthy, clean-link baseline.
    pub relative: f64,
    /// Link retries charged during the run.
    pub link_retries: u64,
}

/// The degradation curve: AlexNet training throughput as tile columns are
/// condemned (degraded remap) and as link-fault probability rises
/// (retry/back-off latency).
///
/// # Panics
///
/// Panics when the healthy benchmark fails to map — a programming error,
/// as the zoo networks are validated by the tier-1 tests.
pub fn faults() -> (Vec<FaultRow>, Table) {
    let session = Session::single_precision();
    let net = zoo::alexnet();
    let baseline = session.train(&net).expect("benchmark maps");
    let mut rows = Vec::new();
    let mut t = Table::new("Fault degradation: AlexNet training throughput").headers(vec![
        "failed cols".to_string(),
        "link fault prob".to_string(),
        "images/s".to_string(),
        "relative".to_string(),
        "link retries".to_string(),
    ]);
    let mut push = |failed_cols: usize, prob: f64, images_per_sec: f64, link_retries: u64| {
        let relative = images_per_sec / baseline.images_per_sec;
        t.row(vec![
            failed_cols.to_string(),
            format!("{prob:.0e}"),
            format!("{images_per_sec:.0}"),
            format!("{relative:.3}"),
            link_retries.to_string(),
        ]);
        rows.push(FaultRow {
            failed_cols,
            link_fault_prob: prob,
            images_per_sec,
            relative,
            link_retries,
        });
    };

    // Permanent tile failures: condemn the first k columns of the first
    // rim chip and remap around them.
    for k in [0usize, 1, 2, 4, 8] {
        let failed = FailedTiles::from_columns(0..k);
        let artifact = session
            .compile_degraded(&net, &failed)
            .expect("degraded remap fits");
        let r = session.run_mapped(&artifact, RunKind::Training);
        push(k, 0.0, r.images_per_sec, 0);
    }

    // Transient link faults on the healthy mapping: retry + exponential
    // back-off latency on every pipeline hand-off and minibatch sync.
    let artifact = session.compile(&net).expect("benchmark maps");
    for prob in [1e-4, 1e-2, 1e-1] {
        let plan = FaultPlan::seeded(FAULT_SWEEP_SEED).with_link_faults(LinkFaults {
            prob,
            base_backoff: 2_000,
            max_retries: 4,
        });
        let r = session.run_mapped_faulted(&artifact, RunKind::Training, &plan);
        push(0, prob, r.images_per_sec, r.faults.link_retries);
    }

    (rows, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degradation_curve_is_monotone_in_failed_columns() {
        let (rows, _) = faults();
        let tile_rows: Vec<&FaultRow> = rows.iter().filter(|r| r.link_fault_prob == 0.0).collect();
        assert_eq!(tile_rows.len(), 5);
        assert!(
            (tile_rows[0].relative - 1.0).abs() < 1e-9,
            "healthy baseline"
        );
        for pair in tile_rows.windows(2) {
            assert!(
                pair[1].images_per_sec <= pair[0].images_per_sec + 1e-9,
                "losing columns must not speed training up: {} -> {}",
                pair[0].images_per_sec,
                pair[1].images_per_sec
            );
        }
    }

    #[test]
    fn flakier_links_cost_more_retries_and_throughput() {
        let (rows, _) = faults();
        let link_rows: Vec<&FaultRow> = rows.iter().filter(|r| r.link_fault_prob > 0.0).collect();
        assert_eq!(link_rows.len(), 3);
        for pair in link_rows.windows(2) {
            assert!(pair[1].link_retries >= pair[0].link_retries);
            assert!(pair[1].images_per_sec <= pair[0].images_per_sec + 1e-9);
        }
        let worst = link_rows.last().unwrap();
        assert!(worst.link_retries > 0, "1e-2 flakiness must draw retries");
        assert!(worst.relative < 1.0);
    }

    #[test]
    fn sweep_is_deterministic() {
        let (a, _) = faults();
        let (b, _) = faults();
        assert_eq!(a, b);
    }
}
