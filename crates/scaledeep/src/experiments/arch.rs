//! Figure 14: the micro-architecture table — structure, peak FLOPs and
//! processing efficiency at every level of the hierarchy, for both design
//! points.

use crate::report::Table;
use scaledeep_arch::{presets, NodeConfig, PowerModel, Precision};

/// One Figure 14 component row.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig14Row {
    /// Component name.
    pub component: String,
    /// Peak FLOPs/s.
    pub peak_flops: f64,
    /// Peak power, watts.
    pub watts: f64,
    /// Processing efficiency, GFLOPs/W.
    pub gflops_per_watt: f64,
}

fn rows_for(node: &NodeConfig, power: &PowerModel) -> Vec<Fig14Row> {
    let f = node.frequency_hz();
    let conv = &node.cluster.conv_chip;
    let fc = &node.cluster.fc_chip;
    let mk = |component: &str, peak: f64, watts: f64| Fig14Row {
        component: component.to_string(),
        peak_flops: peak,
        watts,
        gflops_per_watt: peak / watts / 1e9,
    };
    vec![
        mk("node", node.peak_flops(), power.node.peak_watts),
        mk(
            "chip cluster",
            node.cluster.peak_flops(f),
            power.cluster.peak_watts,
        ),
        mk(
            "ConvLayer chip",
            conv.peak_flops(f),
            power.conv_chip.peak_watts,
        ),
        mk(
            "Conv CompHeavy tile",
            conv.comp_heavy.flops_per_cycle() as f64 * f,
            power.conv_comp_tile.peak_watts,
        ),
        mk(
            "Conv MemHeavy tile",
            conv.mem_heavy.flops_per_cycle() as f64 * f,
            power.conv_mem_tile.peak_watts,
        ),
        mk("FcLayer chip", fc.peak_flops(f), power.fc_chip.peak_watts),
        mk(
            "Fc CompHeavy tile",
            fc.comp_heavy.flops_per_cycle() as f64 * f,
            power.fc_comp_tile.peak_watts,
        ),
        mk(
            "Fc MemHeavy tile",
            fc.mem_heavy.flops_per_cycle() as f64 * f,
            power.fc_mem_tile.peak_watts,
        ),
    ]
}

fn human_flops(v: f64) -> String {
    if v >= 1e15 {
        format!("{:.2}P", v / 1e15)
    } else if v >= 1e12 {
        format!("{:.1}T", v / 1e12)
    } else {
        format!("{:.1}G", v / 1e9)
    }
}

/// Figure 14: structure + peak + efficiency tables for SP and HP designs.
pub fn fig14() -> (Vec<Fig14Row>, Vec<Table>) {
    let mut tables = Vec::new();
    let mut all_rows = Vec::new();
    for (node, power, label) in [
        (
            presets::single_precision(),
            PowerModel::paper_sp(),
            "single precision",
        ),
        (
            presets::half_precision(),
            PowerModel::paper_hp(),
            "half precision",
        ),
    ] {
        let mut structure =
            Table::new(format!("Figure 14: structure ({label})")).headers(["parameter", "value"]);
        let conv = &node.cluster.conv_chip;
        let fc = &node.cluster.fc_chip;
        structure.row(["clusters".into(), node.clusters.to_string()]);
        structure.row([
            "chips per cluster (Conv/Fc)".into(),
            format!("{}/1", node.cluster.conv_chips),
        ]);
        structure.row([
            "ConvLayer chip grid".into(),
            format!("{}x{}", conv.rows, conv.cols),
        ]);
        structure.row([
            "ConvLayer Comp/Mem tiles".into(),
            format!("{}/{}", conv.comp_heavy_tiles(), conv.mem_heavy_tiles()),
        ]);
        structure.row([
            "FcLayer chip grid".into(),
            format!("{}x{}", fc.rows, fc.cols),
        ]);
        structure.row([
            "FcLayer Comp/Mem tiles".into(),
            format!("{}/{}", fc.comp_heavy_tiles(), fc.mem_heavy_tiles()),
        ]);
        structure.row(["total tiles".into(), node.total_tiles().to_string()]);
        structure.row(["frequency".into(), format!("{} MHz", node.frequency_mhz)]);
        structure.row([
            "precision".into(),
            match node.precision {
                Precision::Single => "FP32".to_string(),
                Precision::Half => "FP16".to_string(),
            },
        ]);
        tables.push(structure);

        let rows = rows_for(&node, &power);
        let mut t = Table::new(format!("Figure 14: peak FLOPs & efficiency ({label})")).headers([
            "component",
            "peak FLOPs",
            "power (W)",
            "GFLOPs/W",
        ]);
        for r in &rows {
            t.row([
                r.component.clone(),
                human_flops(r.peak_flops),
                format!("{:.4}", r.watts),
                format!("{:.1}", r.gflops_per_watt),
            ]);
        }
        tables.push(t);
        all_rows.extend(rows);
    }
    (all_rows, tables)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sp_node_row_matches_paper_headline() {
        let (rows, _) = fig14();
        let node = rows.iter().find(|r| r.component == "node").unwrap();
        assert!((node.peak_flops / 1e12 - 680.0).abs() < 5.0);
        assert!((node.gflops_per_watt - 485.7).abs() < 5.0);
    }

    #[test]
    fn hp_node_doubles_peak() {
        let (rows, _) = fig14();
        let nodes: Vec<_> = rows.iter().filter(|r| r.component == "node").collect();
        assert_eq!(nodes.len(), 2);
        let ratio = nodes[1].peak_flops / nodes[0].peak_flops;
        assert!((ratio - 2.0).abs() < 0.05, "HP/SP peak ratio {ratio}");
    }

    #[test]
    fn efficiency_ranks_tiles_above_node() {
        // Figure 14: CompHeavy tiles peak at 934.6 GFLOPs/W, the node at
        // 485.7 — overheads accumulate up the hierarchy.
        let (rows, _) = fig14();
        let tile = rows
            .iter()
            .find(|r| r.component == "Conv CompHeavy tile")
            .unwrap();
        let node = rows.iter().find(|r| r.component == "node").unwrap();
        assert!(tile.gflops_per_watt > node.gflops_per_watt);
    }
}
