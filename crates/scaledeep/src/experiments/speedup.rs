//! Figure 18: speedup of one ScaleDeep chip cluster over published GPU
//! training implementations (iso-power: ~325 W cluster vs ~320 W Titan X),
//! plus the §7 DaDianNao iso-power FLOPs comparison.

use crate::report::{geomean, Table};
use crate::Session;
use scaledeep_baselines::{DaDianNaoModel, GpuFramework};
use scaledeep_dnn::zoo;

/// One Figure 18 bar: the cluster's speedup over one framework on one
/// network.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig18Row {
    /// Network name.
    pub network: String,
    /// GPU stack compared against.
    pub framework: GpuFramework,
    /// Published GPU training throughput, images/s.
    pub gpu_ips: f64,
    /// ScaleDeep cluster training throughput, images/s.
    pub cluster_ips: f64,
    /// Speedup (cluster / GPU).
    pub speedup: f64,
}

/// Figure 18: speedups on the four charted networks across five stacks.
pub fn fig18() -> (Vec<Fig18Row>, Table) {
    let session = Session::single_precision();
    let mut rows = Vec::new();
    let mut t =
        Table::new("Figure 18: ScaleDeep chip-cluster speedup over TitanX GPU implementations")
            .headers([
                "network",
                "framework",
                "GPU img/s",
                "cluster img/s",
                "speedup",
            ]);
    for name in ["alexnet", "googlenet", "overfeat-fast", "vgg-a"] {
        let net = zoo::by_name(name).expect("known benchmark");
        let cluster_ips = session
            .cluster_train_images_per_sec(&net)
            .expect("benchmark maps");
        for fw in GpuFramework::ALL {
            let gpu_ips = scaledeep_baselines::gpu::published_training_throughput(name, fw)
                .expect("published dataset covers the charted networks");
            let row = Fig18Row {
                network: name.to_string(),
                framework: fw,
                gpu_ips,
                cluster_ips,
                speedup: cluster_ips / gpu_ips,
            };
            t.row([
                row.network.clone(),
                fw.to_string(),
                format!("{:.0}", row.gpu_ips),
                format!("{:.0}", row.cluster_ips),
                format!("{:.1}x", row.speedup),
            ]);
            rows.push(row);
        }
    }
    for fw in GpuFramework::ALL {
        let g = geomean(rows.iter().filter(|r| r.framework == fw).map(|r| r.speedup));
        t.row([
            "GEOMEAN".to_string(),
            fw.to_string(),
            String::new(),
            String::new(),
            format!("{g:.1}x"),
        ]);
    }
    (rows, t)
}

/// §7: iso-power peak-FLOPs ratio against a DaDianNao-style homogeneous
/// node (the paper's "5× as many FLOPs at iso-power").
pub fn dadiannao_comparison() -> Table {
    let node = scaledeep_arch::presets::single_precision();
    let dd = DaDianNaoModel::published();
    let ratio = dd.iso_power_ratio(node.peak_flops(), 1400.0);
    let mut t = Table::new("Section 7: iso-power comparison vs DaDianNao-style node").headers([
        "metric",
        "ScaleDeep",
        "DaDianNao",
        "ratio",
    ]);
    t.row([
        "peak FLOPs @ 1.4 kW".to_string(),
        format!("{:.0}T", node.peak_flops() / 1e12),
        format!("{:.0}T", dd.peak_flops_at_power(1400.0) / 1e12),
        format!("{ratio:.1}x"),
    ]);
    t.row([
        "GFLOPs/W".to_string(),
        "485.7".to_string(),
        format!("{:.1}", dd.flops_per_watt() / 1e9),
        format!("{:.1}x", 485.7 / (dd.flops_per_watt() / 1e9)),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cudnn_r2_speedup_matches_paper_band() {
        // Paper: 22x-28x over cuDNN-R2.
        let (rows, _) = fig18();
        let g = geomean(
            rows.iter()
                .filter(|r| r.framework == GpuFramework::CudnnR2)
                .map(|r| r.speedup),
        );
        assert!(g > 10.0 && g < 60.0, "cuDNN-R2 geomean speedup {g:.1}x");
    }

    #[test]
    fn winograd_speedup_is_smallest() {
        // Paper: 5x-11x vs Winograd implementations — the tightest margin.
        let (rows, _) = fig18();
        let wino = geomean(
            rows.iter()
                .filter(|r| r.framework == GpuFramework::NervanaWinograd)
                .map(|r| r.speedup),
        );
        let r2 = geomean(
            rows.iter()
                .filter(|r| r.framework == GpuFramework::CudnnR2)
                .map(|r| r.speedup),
        );
        assert!(wino < r2);
        assert!(wino > 2.0, "winograd speedup {wino:.1}x");
    }

    #[test]
    fn every_bar_shows_a_speedup() {
        let (rows, _) = fig18();
        assert_eq!(rows.len(), 20);
        for r in &rows {
            assert!(
                r.speedup > 1.0,
                "{}/{}: {:.1}x",
                r.network,
                r.framework,
                r.speedup
            );
        }
    }

    #[test]
    fn dadiannao_ratio_near_5x() {
        let t = dadiannao_comparison();
        assert_eq!(t.len(), 2);
    }
}
