//! Training-time projection: the paper's §1 motivation quantified —
//! "training OverFeat for 1 epoch on ImageNet consumes ~15 peta
//! operations... typical training takes 50-100 epochs", an exa-scale
//! problem. This experiment projects wall-clock and energy for 90 epochs
//! of ImageNet-scale training on the simulated node.

use crate::report::Table;
use crate::Session;
use scaledeep_dnn::zoo;

/// Images per ImageNet (ILSVRC-2012) training epoch.
pub const IMAGENET_EPOCH_IMAGES: f64 = 1_281_167.0;
/// Epochs to convergence assumed by the paper's §1 framing.
pub const EPOCHS: f64 = 90.0;

/// One training-time projection row.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochRow {
    /// Network name.
    pub network: String,
    /// Peta-operations per epoch (training FLOPs × images).
    pub peta_ops_per_epoch: f64,
    /// Hours for 90 epochs at the simulated throughput.
    pub hours_90_epochs: f64,
    /// Energy for 90 epochs, kWh.
    pub kwh_90_epochs: f64,
}

/// Projects ImageNet training time/energy for the benchmark suite.
pub fn training_time() -> (Vec<EpochRow>, Table) {
    let session = Session::single_precision();
    let mut rows = Vec::new();
    let mut t = Table::new("Training-time projection: 90 ImageNet epochs on one ScaleDeep node")
        .headers(["network", "Pops/epoch", "hours (90 ep)", "kWh (90 ep)"]);
    for name in zoo::FIGURE16_ORDER {
        let net = zoo::by_name(name).expect("known benchmark");
        let a = net.analyze();
        let r = session.train(&net).expect("benchmark maps");
        let peta = a.training_flops() as f64 * IMAGENET_EPOCH_IMAGES / 1e15;
        let seconds = EPOCHS * IMAGENET_EPOCH_IMAGES / r.images_per_sec;
        let hours = seconds / 3600.0;
        let kwh = r.avg_power.total() * seconds / 3.6e6;
        t.row([
            name.to_string(),
            format!("{peta:.1}"),
            format!("{hours:.1}"),
            format!("{kwh:.1}"),
        ]);
        rows.push(EpochRow {
            network: name.to_string(),
            peta_ops_per_epoch: peta,
            hours_90_epochs: hours,
            kwh_90_epochs: kwh,
        });
    }
    (rows, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overfeat_epoch_matches_the_papers_15_peta_ops() {
        // Paper §1: "training OverFeat for 1 epoch ... consumes ~15 peta
        // operations" (MAC-counted; our FLOP count doubles MACs and adds
        // BP/WG, landing near 22 P FLOPs per epoch).
        let (rows, _) = training_time();
        let of = rows.iter().find(|r| r.network == "overfeat-fast").unwrap();
        assert!(
            of.peta_ops_per_epoch > 10.0 && of.peta_ops_per_epoch < 40.0,
            "got {:.1} Pops",
            of.peta_ops_per_epoch
        );
    }

    #[test]
    fn training_takes_hours_not_weeks() {
        // The paper's pitch: days-to-weeks on GPUs become hours on the
        // node. AlexNet: minutes-to-hours; VGG-E: the long pole.
        let (rows, _) = training_time();
        for r in &rows {
            assert!(r.hours_90_epochs > 0.1, "{}", r.network);
            assert!(
                r.hours_90_epochs < 48.0,
                "{}: {:.1}h exceeds two days",
                r.network,
                r.hours_90_epochs
            );
        }
    }

    #[test]
    fn energy_scales_with_time() {
        let (rows, _) = training_time();
        let alex = rows.iter().find(|r| r.network == "alexnet").unwrap();
        let vgg = rows.iter().find(|r| r.network == "vgg-e").unwrap();
        assert!(vgg.kwh_90_epochs > 5.0 * alex.kwh_90_epochs);
    }
}
