//! Design-space exploration driver: expands a [`ParamSpace`] into
//! candidate design points, evaluates every feasible point with the
//! measured attribution pipeline on an independent [`Session`], and
//! reports the sample plus its Pareto frontier over the paper's three
//! headline objectives — images/second, GFLOPs/W, and joules/image
//! (§6's sensitivity studies, run as one sweep instead of one preset at
//! a time).
//!
//! Determinism is the contract: every metric in a [`DseReport`] comes
//! from the deterministic performance model, never from host wall-clock,
//! and the worker pool writes results into per-candidate slots so the
//! document is byte-identical across runs and worker counts. The report
//! embeds its own inputs (base point, axes, expansion mode), so a
//! committed `BENCH_dse-<suite>.json` can be re-run and byte-compared by
//! `repro dse --check` with no side channel.
//!
//! Candidate sessions are retargeted clones of one hub session
//! ([`Session::retarget`]), so every point shares the hub's
//! provenance-keyed compile cache: two candidates that collapse onto the
//! same design point compile once.

use crate::attribution::Attribution;
use crate::session::{Session, TraceConfig};
use scaledeep_arch::{Candidate, DesignPoint, Knob, KnobValue, ParamSpace, Precision};
use scaledeep_dnn::Network;
use scaledeep_sim::perf::RunKind;
use scaledeep_trace::json::{self, Json};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Version stamped into every DSE JSON document. Bump on any field
/// change; [`DseReport::from_json`] rejects versions it does not know.
pub const DSE_SCHEMA_VERSION: u64 = 1;

/// How a [`ParamSpace`] is expanded into candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expansion {
    /// The full cartesian grid, last axis fastest.
    Grid,
    /// `n` seeded xorshift64* draws ([`ParamSpace::sample`]).
    Sample {
        /// Number of candidates to draw.
        n: u64,
        /// Generator seed (same seed, same draws).
        seed: u64,
    },
}

/// Configuration of one DSE run.
#[derive(Debug, Clone)]
pub struct DseConfig {
    /// Suite name stamped into the report (`BENCH_dse-<suite>.json`).
    pub suite: String,
    /// Training or evaluation.
    pub kind: RunKind,
    /// Grid or seeded sample.
    pub expansion: Expansion,
    /// Worker threads (0 = available cores). Never affects results —
    /// only wall-clock.
    pub workers: usize,
    /// Parallel node-engine shards per candidate session (0 = available
    /// cores). Never affects results.
    pub shards: usize,
}

impl Default for DseConfig {
    fn default() -> Self {
        DseConfig {
            suite: "dse".to_string(),
            kind: RunKind::Training,
            expansion: Expansion::Grid,
            workers: 0,
            shards: 1,
        }
    }
}

/// One evaluated (feasible) design point: its identity, its derived
/// architectural quantities, and the measured metrics of its run.
#[derive(Debug, Clone, PartialEq)]
pub struct DsePoint {
    /// Candidate label (`knob=value` pairs, or `base`).
    pub label: String,
    /// Structural design fingerprint, 16 hex digits — the compile-cache
    /// node identity, so equal fingerprints shared one compile.
    pub fingerprint: String,
    /// Datapath precision (`"single"` / `"half"`).
    pub precision: String,
    /// Total processing tiles of the point.
    pub total_tiles: u64,
    /// Peak FLOP/s derived from the point.
    pub peak_flops: f64,
    /// Peak node power in watts at the point's precision.
    pub peak_power_watts: f64,
    /// Measured node throughput.
    pub images_per_sec: f64,
    /// Measured 2D-PE lane utilization.
    pub pe_utilization: f64,
    /// Measured SFU utilization.
    pub sfu_utilization: f64,
    /// Measured achieved FLOP/s.
    pub achieved_flops: f64,
    /// Measured processing efficiency (objective 2).
    pub gflops_per_watt: f64,
    /// Measured energy per image (objective 3).
    pub joules_per_image: f64,
    /// Attribution: sum of every stage's busy cycles.
    pub busy_cycles: u64,
    /// Attribution: minibatch gradient-sync cycles.
    pub sync_cycles: u64,
    /// Attribution: compute-logic joules per image.
    pub compute_joules: f64,
    /// Attribution: memory joules per image.
    pub memory_joules: f64,
    /// Attribution: interconnect joules per image.
    pub interconnect_joules: f64,
}

/// A candidate the sweep could not evaluate: the knob combination failed
/// validation, or the point validated but could not map the network.
/// Infeasible corners are data, not errors — the sweep reports them and
/// keeps going.
#[derive(Debug, Clone, PartialEq)]
pub struct DseInfeasible {
    /// Candidate label.
    pub label: String,
    /// Why it could not run.
    pub error: String,
}

/// The deterministic result of one DSE run: the inputs (base point,
/// axes, expansion), every evaluated point in candidate order, the
/// infeasible candidates, and the Pareto frontier.
#[derive(Debug, Clone, PartialEq)]
pub struct DseReport {
    /// Schema version ([`DSE_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Suite name.
    pub suite: String,
    /// Benchmark network name.
    pub network: String,
    /// `"training"` or `"evaluation"`.
    pub kind: String,
    /// How the space was expanded.
    pub expansion: Expansion,
    /// The base design point the axes perturb.
    pub base: DesignPoint,
    /// The swept axes, declaration order.
    pub axes: Vec<(Knob, Vec<KnobValue>)>,
    /// Distinct design fingerprints among the evaluated points — the
    /// number of compiles the provenance-keyed cache actually ran
    /// (duplicate sample draws collapse onto one compile).
    pub unique_compiles: u64,
    /// Evaluated points, candidate order.
    pub points: Vec<DsePoint>,
    /// Candidates that could not run, candidate order.
    pub infeasible: Vec<DseInfeasible>,
    /// Indices into [`DseReport::points`] on the Pareto frontier,
    /// ascending.
    pub frontier: Vec<u64>,
}

/// True when `a` strictly Pareto-dominates `b` over the three
/// objectives: at least as good on all of images/s (higher better),
/// GFLOPs/W (higher better), and J/image (lower better), and strictly
/// better on at least one.
pub fn dominates(a: &DsePoint, b: &DsePoint) -> bool {
    let no_worse = a.images_per_sec >= b.images_per_sec
        && a.gflops_per_watt >= b.gflops_per_watt
        && a.joules_per_image <= b.joules_per_image;
    let better = a.images_per_sec > b.images_per_sec
        || a.gflops_per_watt > b.gflops_per_watt
        || a.joules_per_image < b.joules_per_image;
    no_worse && better
}

/// Indices of the non-dominated points, ascending. Duplicated metric
/// triples never dominate each other, so ties stay on the frontier —
/// keeping the result independent of candidate order.
pub fn pareto_frontier(points: &[DsePoint]) -> Vec<u64> {
    (0..points.len())
        .filter(|&i| {
            !points
                .iter()
                .enumerate()
                .any(|(j, other)| j != i && dominates(other, &points[i]))
        })
        .map(|i| i as u64)
        .collect()
}

/// The outcome of evaluating one candidate.
enum Outcome {
    Feasible(DsePoint),
    Infeasible(DseInfeasible),
}

/// Evaluates one candidate: retargets the hub session onto the point,
/// runs the traced performance model, and joins it with the attribution.
fn evaluate(hub: &Session, net: &Network, cfg: &DseConfig, candidate: &Candidate) -> Outcome {
    let point = match &candidate.point {
        Ok(p) => *p,
        Err(e) => {
            return Outcome::Infeasible(DseInfeasible {
                label: candidate.label.clone(),
                error: e.to_string(),
            })
        }
    };
    let node = point.node_config();
    let session = hub.retarget(node).with_shards(cfg.shards);
    let run = || -> crate::Result<DsePoint> {
        let traced = session.run_traced(net, cfg.kind, &TraceConfig::default())?;
        let artifact = session.compile(net)?;
        let attr = Attribution::build(&traced, &artifact, net, &node)?;
        let perf = &traced.perf;
        Ok(DsePoint {
            label: candidate.label.clone(),
            fingerprint: format!("{:016x}", point.fingerprint()),
            precision: match node.precision {
                Precision::Single => "single".to_string(),
                Precision::Half => "half".to_string(),
            },
            total_tiles: point.total_tiles() as u64,
            peak_flops: point.peak_flops(),
            peak_power_watts: point.peak_power_watts(),
            images_per_sec: perf.images_per_sec,
            pe_utilization: perf.pe_utilization,
            sfu_utilization: perf.sfu_utilization,
            achieved_flops: perf.achieved_flops,
            gflops_per_watt: perf.gflops_per_watt,
            joules_per_image: perf.joules_per_image,
            busy_cycles: attr.total_busy_cycles,
            sync_cycles: attr.sync_cycles,
            compute_joules: attr.energy_per_image.compute_joules,
            memory_joules: attr.energy_per_image.memory_joules,
            interconnect_joules: attr.energy_per_image.interconnect_joules,
        })
    };
    match run() {
        Ok(p) => Outcome::Feasible(p),
        Err(e) => Outcome::Infeasible(DseInfeasible {
            label: candidate.label.clone(),
            error: e.to_string(),
        }),
    }
}

/// Runs the sweep: expands `space` per `cfg.expansion`, evaluates every
/// candidate across a scoped worker pool (each on an independent session
/// retargeted from `hub`, all sharing the hub's compile cache), and
/// assembles the deterministic report. Worker and shard counts never
/// change the result — candidates write into per-index slots collected
/// in candidate order.
pub fn run(hub: &Session, net: &Network, space: &ParamSpace, cfg: &DseConfig) -> DseReport {
    let candidates = match cfg.expansion {
        Expansion::Grid => space.grid(),
        Expansion::Sample { n, seed } => space.sample(n as usize, seed),
    };
    let workers = if cfg.workers == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        cfg.workers
    }
    .min(candidates.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Outcome>>> = candidates.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(candidate) = candidates.get(i) else {
                    break;
                };
                let outcome = evaluate(hub, net, cfg, candidate);
                *slots[i].lock().expect("no panics hold this lock") = Some(outcome);
            });
        }
    });
    let mut points = Vec::new();
    let mut infeasible = Vec::new();
    for slot in slots {
        match slot.into_inner().expect("workers joined") {
            Some(Outcome::Feasible(p)) => points.push(p),
            Some(Outcome::Infeasible(i)) => infeasible.push(i),
            None => unreachable!("every candidate slot is filled before the scope ends"),
        }
    }
    let frontier = pareto_frontier(&points);
    let unique_compiles = distinct_fingerprints(&points);
    DseReport {
        schema_version: DSE_SCHEMA_VERSION,
        suite: cfg.suite.clone(),
        network: net.name().to_string(),
        kind: match cfg.kind {
            RunKind::Training => "training".to_string(),
            RunKind::Evaluation => "evaluation".to_string(),
        },
        expansion: cfg.expansion,
        base: space.base(),
        axes: space.axes().to_vec(),
        unique_compiles,
        points,
        infeasible,
        frontier,
    }
}

/// Number of distinct design fingerprints among the evaluated points.
fn distinct_fingerprints(points: &[DsePoint]) -> u64 {
    let mut seen: Vec<&str> = points.iter().map(|p| p.fingerprint.as_str()).collect();
    seen.sort_unstable();
    seen.dedup();
    seen.len() as u64
}

impl DseReport {
    /// Rebuilds the parameter space this report was swept from — the
    /// re-run input of `repro dse --check`.
    pub fn space(&self) -> ParamSpace {
        let mut space = ParamSpace::new(self.base);
        for (knob, values) in &self.axes {
            space = space.axis(*knob, values.clone());
        }
        space
    }

    /// The report's run kind.
    ///
    /// # Errors
    ///
    /// Returns the unknown kind string (validated away by
    /// [`DseReport::from_json`], so only hand-built reports can fail).
    pub fn run_kind(&self) -> std::result::Result<RunKind, String> {
        match self.kind.as_str() {
            "training" => Ok(RunKind::Training),
            "evaluation" => Ok(RunKind::Evaluation),
            other => Err(format!("unknown run kind `{other}`")),
        }
    }

    /// Renders the report as pretty-printed, deterministic JSON.
    pub fn to_json(&self) -> String {
        let mut out = self.to_json_value().render_pretty();
        out.push('\n');
        out
    }

    fn to_json_value(&self) -> Json {
        let expansion = match self.expansion {
            Expansion::Grid => json::obj([("mode", Json::Str("grid".to_string()))]),
            Expansion::Sample { n, seed } => json::obj([
                ("mode", Json::Str("sample".to_string())),
                ("n", Json::Num(n as f64)),
                ("seed", Json::Num(seed as f64)),
            ]),
        };
        let axes: Vec<Json> = self
            .axes
            .iter()
            .map(|(knob, values)| {
                json::obj([
                    ("knob", Json::Str(knob.name().to_string())),
                    (
                        "values",
                        Json::Arr(values.iter().map(knob_value_json).collect()),
                    ),
                ])
            })
            .collect();
        let points: Vec<Json> = self
            .points
            .iter()
            .map(|p| {
                json::obj([
                    ("label", Json::Str(p.label.clone())),
                    ("fingerprint", Json::Str(p.fingerprint.clone())),
                    ("precision", Json::Str(p.precision.clone())),
                    ("total_tiles", Json::Num(p.total_tiles as f64)),
                    ("peak_flops", Json::Num(p.peak_flops)),
                    ("peak_power_watts", Json::Num(p.peak_power_watts)),
                    ("images_per_sec", Json::Num(p.images_per_sec)),
                    ("pe_utilization", Json::Num(p.pe_utilization)),
                    ("sfu_utilization", Json::Num(p.sfu_utilization)),
                    ("achieved_flops", Json::Num(p.achieved_flops)),
                    ("gflops_per_watt", Json::Num(p.gflops_per_watt)),
                    ("joules_per_image", Json::Num(p.joules_per_image)),
                    ("busy_cycles", Json::Num(p.busy_cycles as f64)),
                    ("sync_cycles", Json::Num(p.sync_cycles as f64)),
                    ("compute_joules", Json::Num(p.compute_joules)),
                    ("memory_joules", Json::Num(p.memory_joules)),
                    ("interconnect_joules", Json::Num(p.interconnect_joules)),
                ])
            })
            .collect();
        let infeasible: Vec<Json> = self
            .infeasible
            .iter()
            .map(|i| {
                json::obj([
                    ("label", Json::Str(i.label.clone())),
                    ("error", Json::Str(i.error.clone())),
                ])
            })
            .collect();
        json::obj([
            ("schema_version", Json::Num(self.schema_version as f64)),
            ("suite", Json::Str(self.suite.clone())),
            ("network", Json::Str(self.network.clone())),
            ("kind", Json::Str(self.kind.clone())),
            ("expansion", expansion),
            ("base", self.base.to_json()),
            ("axes", Json::Arr(axes)),
            ("unique_compiles", Json::Num(self.unique_compiles as f64)),
            ("points", Json::Arr(points)),
            ("infeasible", Json::Arr(infeasible)),
            (
                "frontier",
                Json::Arr(self.frontier.iter().map(|&i| Json::Num(i as f64)).collect()),
            ),
        ])
    }

    /// Parses and validates a DSE JSON document. Beyond field presence,
    /// the reader recomputes the Pareto frontier and the distinct-
    /// fingerprint count from the stored points and rejects a document
    /// whose stored values disagree — a tampered or hand-edited frontier
    /// cannot pass the gate.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field.
    pub fn from_json(text: &str) -> std::result::Result<Self, String> {
        let v = json::parse(text)?;
        let version = req_num(&v, "schema_version")? as u64;
        if version != DSE_SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {version} (reader supports {DSE_SCHEMA_VERSION})"
            ));
        }
        let kind = req_str(&v, "kind")?;
        if kind != "training" && kind != "evaluation" {
            return Err(format!("unknown run kind `{kind}`"));
        }
        let exp_v = v.get("expansion").ok_or("missing field `expansion`")?;
        let expansion = match req_str(exp_v, "mode")?.as_str() {
            "grid" => Expansion::Grid,
            "sample" => Expansion::Sample {
                n: req_num(exp_v, "n")? as u64,
                seed: req_num(exp_v, "seed")? as u64,
            },
            other => return Err(format!("unknown expansion mode `{other}`")),
        };
        let base = DesignPoint::from_json(v.get("base").ok_or("missing field `base`")?)
            .map_err(|e| format!("base: {e}"))?;
        let axes_v = v
            .get("axes")
            .and_then(Json::as_arr)
            .ok_or("missing or non-array field `axes`")?;
        let mut axes = Vec::with_capacity(axes_v.len());
        for (i, a) in axes_v.iter().enumerate() {
            let knob = Knob::parse(&req_str(a, "knob").map_err(|e| format!("axes[{i}]: {e}"))?)
                .map_err(|e| format!("axes[{i}]: {e}"))?;
            let values_v = a
                .get("values")
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("axes[{i}]: missing or non-array field `values`"))?;
            let mut values = Vec::with_capacity(values_v.len());
            for (j, value) in values_v.iter().enumerate() {
                values.push(
                    knob_value_from_json(value)
                        .map_err(|e| format!("axes[{i}].values[{j}]: {e}"))?,
                );
            }
            axes.push((knob, values));
        }
        let points_v = v
            .get("points")
            .and_then(Json::as_arr)
            .ok_or("missing or non-array field `points`")?;
        let mut points = Vec::with_capacity(points_v.len());
        for (i, p) in points_v.iter().enumerate() {
            points.push(DsePoint::from_json(p).map_err(|e| format!("points[{i}]: {e}"))?);
        }
        let infeasible_v = v
            .get("infeasible")
            .and_then(Json::as_arr)
            .ok_or("missing or non-array field `infeasible`")?;
        let mut infeasible = Vec::with_capacity(infeasible_v.len());
        for (i, f) in infeasible_v.iter().enumerate() {
            infeasible.push(DseInfeasible {
                label: req_str(f, "label").map_err(|e| format!("infeasible[{i}]: {e}"))?,
                error: req_str(f, "error").map_err(|e| format!("infeasible[{i}]: {e}"))?,
            });
        }
        let frontier_v = v
            .get("frontier")
            .and_then(Json::as_arr)
            .ok_or("missing or non-array field `frontier`")?;
        let frontier: Vec<u64> = frontier_v
            .iter()
            .map(|f| {
                f.as_num()
                    .map(|n| n as u64)
                    .ok_or("non-numeric frontier index".to_string())
            })
            .collect::<std::result::Result<_, _>>()?;
        let recomputed = pareto_frontier(&points);
        if frontier != recomputed {
            return Err(format!(
                "stored frontier {frontier:?} does not match the Pareto frontier \
                 recomputed from the points ({recomputed:?})"
            ));
        }
        let unique_compiles = req_num(&v, "unique_compiles")? as u64;
        if unique_compiles != distinct_fingerprints(&points) {
            return Err(format!(
                "unique_compiles {unique_compiles} does not match the {} distinct \
                 fingerprints among the points",
                distinct_fingerprints(&points)
            ));
        }
        Ok(DseReport {
            schema_version: version,
            suite: req_str(&v, "suite")?,
            network: req_str(&v, "network")?,
            kind,
            expansion,
            base,
            axes,
            unique_compiles,
            points,
            infeasible,
            frontier,
        })
    }
}

impl DsePoint {
    fn from_json(v: &Json) -> std::result::Result<Self, String> {
        let fingerprint = req_str(v, "fingerprint")?;
        if fingerprint.len() != 16 || !fingerprint.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(format!(
                "fingerprint `{fingerprint}` is not a 16-hex-digit fingerprint"
            ));
        }
        Ok(DsePoint {
            label: req_str(v, "label")?,
            fingerprint,
            precision: req_str(v, "precision")?,
            total_tiles: req_num(v, "total_tiles")? as u64,
            peak_flops: req_num(v, "peak_flops")?,
            peak_power_watts: req_num(v, "peak_power_watts")?,
            images_per_sec: req_num(v, "images_per_sec")?,
            pe_utilization: req_num(v, "pe_utilization")?,
            sfu_utilization: req_num(v, "sfu_utilization")?,
            achieved_flops: req_num(v, "achieved_flops")?,
            gflops_per_watt: req_num(v, "gflops_per_watt")?,
            joules_per_image: req_num(v, "joules_per_image")?,
            busy_cycles: req_num(v, "busy_cycles")? as u64,
            sync_cycles: req_num(v, "sync_cycles")? as u64,
            compute_joules: req_num(v, "compute_joules")?,
            memory_joules: req_num(v, "memory_joules")?,
            interconnect_joules: req_num(v, "interconnect_joules")?,
        })
    }
}

/// Serializes a knob value: numbers as numbers, precisions as their
/// names — the same tokens [`KnobValue::parse`] accepts.
fn knob_value_json(value: &KnobValue) -> Json {
    match value {
        KnobValue::Num(n) => Json::Num(*n),
        KnobValue::Prec(p) => Json::Str(p.to_string()),
    }
}

/// Parses a knob value back from its JSON form.
fn knob_value_from_json(v: &Json) -> std::result::Result<KnobValue, String> {
    match v {
        Json::Num(n) => Ok(KnobValue::Num(*n)),
        Json::Str(s) => KnobValue::parse(s).map_err(|e| e.to_string()),
        other => Err(format!(
            "knob value must be a number or string, got {other:?}"
        )),
    }
}

/// Walks two JSON documents in parallel and returns the path and values
/// of the first structural difference (`None` when identical) — the
/// diagnostic `repro dse --check` prints when a re-run is not
/// byte-identical to its baseline.
pub fn first_difference(a: &Json, b: &Json) -> Option<String> {
    diff_at("$", a, b)
}

fn diff_at(path: &str, a: &Json, b: &Json) -> Option<String> {
    match (a, b) {
        (Json::Obj(x), Json::Obj(y)) => {
            for ((ka, va), (kb, vb)) in x.iter().zip(y) {
                if ka != kb {
                    return Some(format!("{path}: key `{ka}` vs `{kb}`"));
                }
                if let Some(d) = diff_at(&format!("{path}.{ka}"), va, vb) {
                    return Some(d);
                }
            }
            (x.len() != y.len()).then(|| format!("{path}: {} field(s) vs {}", x.len(), y.len()))
        }
        (Json::Arr(x), Json::Arr(y)) => {
            for (i, (va, vb)) in x.iter().zip(y).enumerate() {
                if let Some(d) = diff_at(&format!("{path}[{i}]"), va, vb) {
                    return Some(d);
                }
            }
            (x.len() != y.len()).then(|| format!("{path}: {} element(s) vs {}", x.len(), y.len()))
        }
        _ => (a != b).then(|| format!("{path}: {} vs {}", a.render(), b.render())),
    }
}

fn req_num(v: &Json, key: &str) -> std::result::Result<f64, String> {
    v.get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| format!("missing or non-numeric field `{key}`"))
}

fn req_str(v: &Json, key: &str) -> std::result::Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string field `{key}`"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use scaledeep_dnn::zoo;

    fn smoke_space() -> ParamSpace {
        ParamSpace::new(DesignPoint::figure14_sp())
            .axis(
                Knob::Clusters,
                vec![KnobValue::Num(2.0), KnobValue::Num(4.0)],
            )
            .axis(
                Knob::FrequencyMhz,
                vec![KnobValue::Num(450.0), KnobValue::Num(600.0)],
            )
    }

    fn smoke_cfg(workers: usize) -> DseConfig {
        DseConfig {
            suite: "test".to_string(),
            workers,
            ..DseConfig::default()
        }
    }

    #[test]
    fn report_is_byte_identical_across_worker_counts_and_runs() {
        let net = zoo::alexnet();
        let space = smoke_space();
        let hub = Session::single_precision();
        let one = run(&hub, &net, &space, &smoke_cfg(1)).to_json();
        for workers in [2, 4, 0] {
            let many = run(&hub, &net, &space, &smoke_cfg(workers)).to_json();
            assert_eq!(one, many, "worker count {workers} changed the document");
        }
        // A fresh hub (cold cache) reproduces the same bytes too.
        let cold = run(&Session::single_precision(), &net, &space, &smoke_cfg(3));
        assert_eq!(one, cold.to_json());
    }

    #[test]
    fn report_round_trips_and_rebuilds_its_space() {
        let net = zoo::alexnet();
        let space = smoke_space();
        let report = run(&Session::single_precision(), &net, &space, &smoke_cfg(0));
        assert_eq!(report.points.len(), 4);
        assert!(report.infeasible.is_empty());
        assert!(!report.frontier.is_empty());
        assert_eq!(report.unique_compiles, 4);

        let text = report.to_json();
        let back = DseReport::from_json(&text).expect("own output parses");
        assert_eq!(back, report);
        assert_eq!(back.to_json(), text);

        // The embedded inputs rebuild the exact same sweep.
        let rebuilt = back.space();
        assert_eq!(rebuilt.base(), space.base());
        assert_eq!(rebuilt.axes(), space.axes());
        let cfg = DseConfig {
            suite: back.suite.clone(),
            kind: back.run_kind().expect("kind validated"),
            expansion: back.expansion,
            ..smoke_cfg(0)
        };
        let rerun = run(&Session::single_precision(), &net, &rebuilt, &cfg);
        assert_eq!(rerun.to_json(), text);
    }

    #[test]
    fn infeasible_corners_are_reported_not_fatal() {
        // clusters=64 validates but AlexNet's FC stage cannot span it;
        // a zero frequency fails validation outright. Both are data.
        let net = zoo::alexnet();
        let space = ParamSpace::new(DesignPoint::figure14_sp()).axis(
            Knob::FrequencyMhz,
            vec![KnobValue::Num(0.0), KnobValue::Num(600.0)],
        );
        let report = run(&Session::single_precision(), &net, &space, &smoke_cfg(0));
        assert_eq!(report.points.len(), 1);
        assert_eq!(report.infeasible.len(), 1);
        assert_eq!(report.infeasible[0].label, "frequency-mhz=0");
        assert_eq!(report.frontier, vec![0]);
        // The document round-trips with the infeasible rows included.
        let back = DseReport::from_json(&report.to_json()).expect("parses");
        assert_eq!(back, report);
    }

    #[test]
    fn sampled_expansion_is_seed_deterministic_and_collapses_compiles() {
        let net = zoo::alexnet();
        let space = smoke_space();
        let cfg = DseConfig {
            expansion: Expansion::Sample { n: 6, seed: 7 },
            ..smoke_cfg(0)
        };
        let a = run(&Session::single_precision(), &net, &space, &cfg);
        let b = run(&Session::single_precision(), &net, &space, &cfg);
        assert_eq!(a.to_json(), b.to_json());
        // 6 draws from a 4-point grid must repeat at least one point.
        assert_eq!(a.points.len(), 6);
        assert!(a.unique_compiles < 6, "{} unique", a.unique_compiles);
    }

    #[test]
    fn reader_rejects_tampered_documents() {
        let net = zoo::alexnet();
        let report = run(
            &Session::single_precision(),
            &net,
            &smoke_space(),
            &smoke_cfg(0),
        );

        let mut wrong_frontier = report.clone();
        wrong_frontier.frontier = Vec::new();
        let err = DseReport::from_json(&wrong_frontier.to_json()).unwrap_err();
        assert!(err.contains("frontier"), "{err}");

        let mut wrong_compiles = report.clone();
        wrong_compiles.unique_compiles += 1;
        let err = DseReport::from_json(&wrong_compiles.to_json()).unwrap_err();
        assert!(err.contains("unique_compiles"), "{err}");

        let future = report
            .to_json()
            .replacen("\"schema_version\": 1", "\"schema_version\": 2", 1);
        let err = DseReport::from_json(&future).unwrap_err();
        assert!(err.contains("schema_version"), "{err}");

        assert!(DseReport::from_json("not json").is_err());
        assert!(DseReport::from_json("{}").is_err());
    }

    #[test]
    fn first_difference_names_the_leaf_path() {
        let report = run(
            &Session::single_precision(),
            &zoo::alexnet(),
            &smoke_space(),
            &smoke_cfg(0),
        );
        let a = json::parse(&report.to_json()).expect("parses");
        assert_eq!(first_difference(&a, &a), None);
        let mut drifted = report;
        drifted.points[2].images_per_sec += 1.0;
        let b = json::parse(&drifted.to_json()).expect("parses");
        let diff = first_difference(&a, &b).expect("documents differ");
        assert!(diff.contains("points[2].images_per_sec"), "{diff}");
    }

    /// Deterministic metric triples from a seed (proptest drives only
    /// the seed, matching the workspace's shrink-over-structure idiom).
    fn synthetic_points(seed: u64, n: usize) -> Vec<DsePoint> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // Small integer grids force plenty of ties and duplicates.
            (state % 5) as f64
        };
        (0..n)
            .map(|i| DsePoint {
                label: format!("p{i}"),
                fingerprint: format!("{i:016x}"),
                precision: "single".to_string(),
                total_tiles: 1,
                peak_flops: 1.0,
                peak_power_watts: 1.0,
                images_per_sec: next(),
                pe_utilization: 0.5,
                sfu_utilization: 0.5,
                achieved_flops: 1.0,
                gflops_per_watt: next(),
                joules_per_image: next(),
                busy_cycles: 1,
                sync_cycles: 0,
                compute_joules: 0.0,
                memory_joules: 0.0,
                interconnect_joules: 0.0,
            })
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The frontier is sound and complete: non-empty whenever any
        /// point exists, no member is dominated, and every non-member is
        /// dominated by some member.
        #[test]
        fn frontier_is_dominance_checked(seed in any::<u64>(), n in 1usize..24) {
            let points = synthetic_points(seed, n);
            let frontier = pareto_frontier(&points);
            prop_assert!(!frontier.is_empty());
            prop_assert!(frontier.windows(2).all(|w| w[0] < w[1]));
            for &i in &frontier {
                for (j, other) in points.iter().enumerate() {
                    prop_assert!(
                        j as u64 == i || !dominates(other, &points[i as usize]),
                        "frontier member {i} is dominated by {j}"
                    );
                }
            }
            for j in 0..points.len() as u64 {
                if !frontier.contains(&j) {
                    prop_assert!(
                        frontier.iter().any(|&i| dominates(&points[i as usize], &points[j as usize])),
                        "non-member {j} is not dominated by any frontier member"
                    );
                }
            }
        }
    }
}
