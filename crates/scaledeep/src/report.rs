//! Plain-text table rendering shared by the experiment drivers
//! (the `repro` binary prints these; EXPERIMENTS.md embeds them).

use std::fmt;

/// A simple column-aligned text table.
///
/// ```
/// use scaledeep::report::Table;
///
/// let mut t = Table::new("demo").headers(["network", "img/s"]);
/// t.row(["alexnet", "71744"]);
/// assert!(t.to_string().contains("alexnet"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with a title.
    pub fn new(title: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            headers: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Sets the header row.
    pub fn headers<S: Into<String>>(mut self, headers: impl IntoIterator<Item = S>) -> Self {
        self.headers = headers.into_iter().map(Into::into).collect();
        self
    }

    /// Appends a data row.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let cols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);
        let mut w = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            w[i] = w[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.widths();
        writeln!(f, "== {} ==", self.title)?;
        let print_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", c, width = w[i]));
            }
            writeln!(f, "{}", line.trim_end())
        };
        if !self.headers.is_empty() {
            print_row(f, &self.headers)?;
            let total: usize = w.iter().sum::<usize>() + 2 * w.len().saturating_sub(1);
            writeln!(f, "{}", "-".repeat(total))?;
        }
        for row in &self.rows {
            print_row(f, row)?;
        }
        Ok(())
    }
}

/// Geometric mean of a non-empty series (0 for empty input).
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        if v > 0.0 {
            log_sum += v.ln();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("demo").headers(["name", "value"]);
        t.row(["a", "1"]);
        t.row(["longer", "22"]);
        let s = t.to_string();
        assert!(s.contains("== demo =="));
        assert!(s.contains("name    value"));
        assert!(s.contains("longer  22"));
    }

    #[test]
    fn geomean_of_powers_of_two() {
        let g = geomean([2.0, 8.0]);
        assert!((g - 4.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_ignores_nonpositive() {
        assert_eq!(geomean([0.0, -1.0]), 0.0);
        assert!((geomean([0.0, 4.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_table_is_empty() {
        assert!(Table::new("t").is_empty());
    }
}
