//! Plain-text table rendering shared by the experiment drivers
//! (the `repro` binary prints these; EXPERIMENTS.md embeds them), plus
//! the versioned `BENCH_<network>.json` benchmark report: the
//! machine-readable serialization of a run's measured attribution that
//! every future performance PR is diffed against.

use crate::attribution::{
    Attribution, LayerAttribution, OccupancyPercentiles, PassSplit, RooflineBound, TierBytes,
    TileClassSplit,
};
use crate::session::CacheStats;
use scaledeep_sim::perf::RunKind;
use scaledeep_trace::json::{self, Json};
use std::fmt;

/// A simple column-aligned text table.
///
/// ```
/// use scaledeep::report::Table;
///
/// let mut t = Table::new("demo").headers(["network", "img/s"]);
/// t.row(["alexnet", "71744"]);
/// assert!(t.to_string().contains("alexnet"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with a title.
    pub fn new(title: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            headers: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Sets the header row.
    pub fn headers<S: Into<String>>(mut self, headers: impl IntoIterator<Item = S>) -> Self {
        self.headers = headers.into_iter().map(Into::into).collect();
        self
    }

    /// Appends a data row.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let cols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);
        let mut w = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            w[i] = w[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.widths();
        writeln!(f, "== {} ==", self.title)?;
        let print_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", c, width = w[i]));
            }
            writeln!(f, "{}", line.trim_end())
        };
        if !self.headers.is_empty() {
            print_row(f, &self.headers)?;
            let total: usize = w.iter().sum::<usize>() + 2 * w.len().saturating_sub(1);
            writeln!(f, "{}", "-".repeat(total))?;
        }
        for row in &self.rows {
            print_row(f, row)?;
        }
        Ok(())
    }
}

/// Geometric mean of a non-empty series (0 for empty input).
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        if v > 0.0 {
            log_sum += v.ln();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Version stamped into every BENCH JSON. Bump on any field change; the
/// reader accepts the current version and every older one it can default
/// forward (see [`BenchReport::from_json`]), rejecting the rest.
///
/// * v1 — perf-model attribution only.
/// * v2 — adds the selected functional execution tier, the host
///   wall-clock split (compile / perf-simulate / functional-simulate),
///   and the functional drill's cycle-accurate statistics.
/// * v3 — adds the parallel node engine's shard count and measured
///   wall-clock scaling (sequential oracle vs 1/2/4/8 shards).
/// * v4 — adds the `design` group: the structural design point the
///   session ran on (the arch design layer's canonical document) plus
///   its fingerprint, so a report names its architecture as data rather
///   than only through the preset that happened to build it.
pub const BENCH_SCHEMA_VERSION: u64 = 4;

/// Host wall-clock split of the run behind a BENCH report, in
/// nanoseconds. Host time is machine-dependent; these fields are
/// informational and never enter [`BenchReport::check_against`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BenchWall {
    /// Wall-clock spent inside the compile pipeline (0 on a cache hit —
    /// the ledger a stored-artifact session proves itself with).
    pub compile_nanos: u64,
    /// Wall-clock of the traced performance-model run.
    pub perf_nanos: u64,
    /// Wall-clock of the functional drill (0 when the network has no
    /// functional compile).
    pub functional_nanos: u64,
}

/// Cycle-accurate statistics of the functional drill — one training
/// iteration executed on the selected tier. Both execution tiers are
/// bit-identical by construction, so these fields diff at 0% tolerance
/// across tiers; `None` when the functional target cannot express the
/// network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchFunctional {
    /// Simulated cycles of the iteration.
    pub cycles: u64,
    /// Instructions executed.
    pub instructions: u64,
    /// Tracker-wait stalls.
    pub stalls: u64,
}

/// One row of the parallel node engine's measured wall-clock scaling:
/// the whole-node model run at a fixed shard count. Every row's outcome
/// was verified bit-identical to the sequential oracle before the report
/// was assembled; the nanoseconds are host-dependent and informational,
/// never entering [`BenchReport::check_against`]. (v3)
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchShard {
    /// Shard count of this row.
    pub shards: u64,
    /// Wall-clock per run at this shard count, in nanoseconds.
    pub nanos: u64,
    /// Sequential-oracle wall-clock over this row's wall-clock.
    pub speedup: f64,
}

/// The parallel node engine's measurement group of a BENCH report:
/// the session's resolved shard count, the sequential oracle's
/// wall-clock, and the per-shard-count scaling rows. Informational. (v3)
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BenchPar {
    /// The shard count the report's session resolves to (host cores when
    /// configured as auto).
    pub shards: u64,
    /// Sequential-oracle wall-clock per run, in nanoseconds.
    pub sequential_nanos: u64,
    /// Measured scaling rows (shard counts 1/2/4/8).
    pub scaling: Vec<BenchShard>,
}

/// The design point a BENCH report's session ran on, serialized
/// structurally by the arch design layer. The fingerprint doubles as the
/// compile cache's node identity, so two reports with equal fingerprints
/// measured the same architecture knobs. (v4)
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDesign {
    /// Structural FNV-1a fingerprint of the point, as 16 hex digits.
    pub fingerprint: String,
    /// The design point itself (canonical knob document).
    pub point: scaledeep_arch::DesignPoint,
}

impl BenchDesign {
    /// Describes a node configuration as a report design group.
    pub fn describe(node: &scaledeep_arch::NodeConfig) -> Self {
        let point = scaledeep_arch::DesignPoint::describe(node);
        BenchDesign {
            fingerprint: format!("{:016x}", point.fingerprint()),
            point,
        }
    }
}

/// Whole-run scalars of a BENCH report.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BenchTotals {
    /// Steady-state measurement window in cycles.
    pub window_cycles: u64,
    /// Sum of every stage's measured busy cycles.
    pub busy_cycles: u64,
    /// Cycles spent in minibatch gradient syncs.
    pub sync_cycles: u64,
    /// Images completed inside the window.
    pub images_done: u64,
    /// Node throughput.
    pub images_per_sec: f64,
    /// 2D-PE lane utilization.
    pub pe_utilization: f64,
    /// SFU utilization.
    pub sfu_utilization: f64,
    /// Achieved FLOP/s across the node.
    pub achieved_flops: f64,
    /// Processing efficiency at the measured profile.
    pub gflops_per_watt: f64,
    /// Energy per image in joules.
    pub joules_per_image: f64,
}

/// Energy split of a BENCH report (joules per image, measured profile).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BenchEnergy {
    /// Compute-logic joules.
    pub compute_joules: f64,
    /// Memory joules.
    pub memory_joules: f64,
    /// Interconnect joules.
    pub interconnect_joules: f64,
}

/// One layer group's row in a BENCH report.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchLayer {
    /// Pipeline stage index.
    pub stage: u64,
    /// Stage name (member layers joined with `+`).
    pub name: String,
    /// Measured busy cycles over the run.
    pub busy_cycles: u64,
    /// Per-image service cycles.
    pub service_cycles: u64,
    /// FP share of the busy cycles.
    pub fp_cycles: u64,
    /// BP share of the busy cycles.
    pub bp_cycles: u64,
    /// WG share of the busy cycles.
    pub wg_cycles: u64,
    /// CompHeavy-tile share of the busy cycles.
    pub comp_heavy_cycles: u64,
    /// MemHeavy-tile share of the busy cycles.
    pub mem_heavy_cycles: u64,
    /// Grid-tier bytes per image.
    pub grid_bytes: f64,
    /// Wheel-tier bytes per image.
    pub wheel_bytes: f64,
    /// Ring-tier bytes per image.
    pub ring_bytes: f64,
    /// Analytic FLOPs per image.
    pub flops: u64,
    /// Analytic Bytes/FLOP.
    pub bytes_per_flop: f64,
    /// Roofline bound (`"compute"` / `"bandwidth"`).
    pub bound: String,
    /// Energy share in joules per image.
    pub joules_per_image: f64,
}

/// The versioned, machine-readable benchmark report serialized as
/// `BENCH_<network>.json` — a run's measured attribution plus enough
/// provenance to tell whether a diff compares like with like.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Schema version ([`BENCH_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Benchmark network name.
    pub network: String,
    /// `"training"` or `"evaluation"`.
    pub kind: String,
    /// Fault-plan seed of the run (0 for the fault-free path).
    pub seed: u64,
    /// The compile's provenance fingerprint, as 16 hex digits (the
    /// trace JSON parser stores numbers as `f64`, which cannot carry a
    /// full 64-bit key).
    pub provenance: String,
    /// Node datapath precision (`"single"` / `"half"`).
    pub precision: String,
    /// Clusters on the node ring.
    pub clusters: u64,
    /// Node clock in MHz.
    pub frequency_mhz: f64,
    /// Whole-run scalars.
    pub totals: BenchTotals,
    /// Energy split per image.
    pub energy: BenchEnergy,
    /// Stage-occupancy percentiles (cycles per stage visit).
    pub occupancy: OccupancyPercentiles,
    /// Compile-cache hits at report time (session-history dependent;
    /// excluded from regression checks).
    pub cache_hits: u64,
    /// Compile-cache misses at report time.
    pub cache_misses: u64,
    /// The functional execution tier the report's session selects
    /// (`"interpreter"` / `"compiled"`). Informational: tiers are
    /// bit-identical, so it never fails a check. (v2)
    pub tier: String,
    /// Host wall-clock split; informational. (v2)
    pub wall: BenchWall,
    /// Functional drill statistics, when the network functionally
    /// compiles; cycle-accurate and checked. (v2)
    pub functional: Option<BenchFunctional>,
    /// Parallel node engine shard count and measured wall-clock scaling;
    /// informational. (v3)
    pub par: BenchPar,
    /// The design point the session ran on; `None` only for pre-v4
    /// documents. Its fingerprint is an identity field in checks. (v4)
    pub design: Option<BenchDesign>,
    /// Per-layer rows, pipeline order.
    pub layers: Vec<BenchLayer>,
}

impl BenchReport {
    /// Assembles a report from a run's attribution and its context.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        attr: &Attribution,
        perf: &scaledeep_sim::perf::PerfResult,
        node: &scaledeep_arch::NodeConfig,
        seed: u64,
        provenance_key: u64,
        cache: CacheStats,
        tier: &str,
        wall: BenchWall,
        functional: Option<BenchFunctional>,
        par: BenchPar,
    ) -> Self {
        BenchReport {
            schema_version: BENCH_SCHEMA_VERSION,
            network: attr.network.clone(),
            kind: match attr.kind {
                RunKind::Training => "training".to_string(),
                RunKind::Evaluation => "evaluation".to_string(),
            },
            seed,
            provenance: format!("{provenance_key:016x}"),
            precision: match node.precision {
                scaledeep_arch::Precision::Single => "single".to_string(),
                scaledeep_arch::Precision::Half => "half".to_string(),
            },
            clusters: node.clusters as u64,
            frequency_mhz: node.frequency_mhz,
            totals: BenchTotals {
                window_cycles: attr.window_cycles,
                busy_cycles: attr.total_busy_cycles,
                sync_cycles: attr.sync_cycles,
                images_done: attr.images_done,
                images_per_sec: perf.images_per_sec,
                pe_utilization: perf.pe_utilization,
                sfu_utilization: perf.sfu_utilization,
                achieved_flops: perf.achieved_flops,
                gflops_per_watt: perf.gflops_per_watt,
                joules_per_image: perf.joules_per_image,
            },
            energy: BenchEnergy {
                compute_joules: attr.energy_per_image.compute_joules,
                memory_joules: attr.energy_per_image.memory_joules,
                interconnect_joules: attr.energy_per_image.interconnect_joules,
            },
            occupancy: attr.occupancy,
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            tier: tier.to_string(),
            wall,
            functional,
            par,
            design: Some(BenchDesign::describe(node)),
            layers: attr
                .layers
                .iter()
                .map(BenchLayer::from_attribution)
                .collect(),
        }
    }

    /// Renders the report as pretty-printed, deterministic JSON.
    pub fn to_json(&self) -> String {
        let mut out = self.to_json_value().render_pretty();
        out.push('\n');
        out
    }

    fn to_json_value(&self) -> Json {
        let layers: Vec<Json> = self
            .layers
            .iter()
            .map(|l| {
                json::obj([
                    ("stage", Json::Num(l.stage as f64)),
                    ("name", Json::Str(l.name.clone())),
                    ("busy_cycles", Json::Num(l.busy_cycles as f64)),
                    ("service_cycles", Json::Num(l.service_cycles as f64)),
                    ("fp_cycles", Json::Num(l.fp_cycles as f64)),
                    ("bp_cycles", Json::Num(l.bp_cycles as f64)),
                    ("wg_cycles", Json::Num(l.wg_cycles as f64)),
                    ("comp_heavy_cycles", Json::Num(l.comp_heavy_cycles as f64)),
                    ("mem_heavy_cycles", Json::Num(l.mem_heavy_cycles as f64)),
                    ("grid_bytes", Json::Num(l.grid_bytes)),
                    ("wheel_bytes", Json::Num(l.wheel_bytes)),
                    ("ring_bytes", Json::Num(l.ring_bytes)),
                    ("flops", Json::Num(l.flops as f64)),
                    ("bytes_per_flop", Json::Num(l.bytes_per_flop)),
                    ("bound", Json::Str(l.bound.clone())),
                    ("joules_per_image", Json::Num(l.joules_per_image)),
                ])
            })
            .collect();
        json::obj([
            ("schema_version", Json::Num(self.schema_version as f64)),
            ("network", Json::Str(self.network.clone())),
            ("kind", Json::Str(self.kind.clone())),
            ("seed", Json::Num(self.seed as f64)),
            ("provenance", Json::Str(self.provenance.clone())),
            ("precision", Json::Str(self.precision.clone())),
            ("clusters", Json::Num(self.clusters as f64)),
            ("frequency_mhz", Json::Num(self.frequency_mhz)),
            (
                "totals",
                json::obj([
                    ("window_cycles", Json::Num(self.totals.window_cycles as f64)),
                    ("busy_cycles", Json::Num(self.totals.busy_cycles as f64)),
                    ("sync_cycles", Json::Num(self.totals.sync_cycles as f64)),
                    ("images_done", Json::Num(self.totals.images_done as f64)),
                    ("images_per_sec", Json::Num(self.totals.images_per_sec)),
                    ("pe_utilization", Json::Num(self.totals.pe_utilization)),
                    ("sfu_utilization", Json::Num(self.totals.sfu_utilization)),
                    ("achieved_flops", Json::Num(self.totals.achieved_flops)),
                    ("gflops_per_watt", Json::Num(self.totals.gflops_per_watt)),
                    ("joules_per_image", Json::Num(self.totals.joules_per_image)),
                ]),
            ),
            (
                "energy",
                json::obj([
                    ("compute_joules", Json::Num(self.energy.compute_joules)),
                    ("memory_joules", Json::Num(self.energy.memory_joules)),
                    (
                        "interconnect_joules",
                        Json::Num(self.energy.interconnect_joules),
                    ),
                ]),
            ),
            (
                "occupancy",
                json::obj([
                    ("p50", Json::Num(self.occupancy.p50)),
                    ("p95", Json::Num(self.occupancy.p95)),
                    ("p99", Json::Num(self.occupancy.p99)),
                ]),
            ),
            (
                "cache",
                json::obj([
                    ("hits", Json::Num(self.cache_hits as f64)),
                    ("misses", Json::Num(self.cache_misses as f64)),
                ]),
            ),
            ("tier", Json::Str(self.tier.clone())),
            (
                "wall",
                json::obj([
                    ("compile_nanos", Json::Num(self.wall.compile_nanos as f64)),
                    ("perf_nanos", Json::Num(self.wall.perf_nanos as f64)),
                    (
                        "functional_nanos",
                        Json::Num(self.wall.functional_nanos as f64),
                    ),
                ]),
            ),
            (
                "functional",
                self.functional.map_or(Json::Null, |f| {
                    json::obj([
                        ("cycles", Json::Num(f.cycles as f64)),
                        ("instructions", Json::Num(f.instructions as f64)),
                        ("stalls", Json::Num(f.stalls as f64)),
                    ])
                }),
            ),
            (
                "par",
                json::obj([
                    ("shards", Json::Num(self.par.shards as f64)),
                    (
                        "sequential_nanos",
                        Json::Num(self.par.sequential_nanos as f64),
                    ),
                    (
                        "scaling",
                        Json::Arr(
                            self.par
                                .scaling
                                .iter()
                                .map(|s| {
                                    json::obj([
                                        ("shards", Json::Num(s.shards as f64)),
                                        ("nanos", Json::Num(s.nanos as f64)),
                                        ("speedup", Json::Num(s.speedup)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "design",
                self.design.as_ref().map_or(Json::Null, |d| {
                    json::obj([
                        ("fingerprint", Json::Str(d.fingerprint.clone())),
                        ("point", d.point.to_json()),
                    ])
                }),
            ),
            ("layers", Json::Arr(layers)),
        ])
    }

    /// Parses and validates a BENCH JSON document.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field on malformed JSON,
    /// a schema-version mismatch, or any missing/mistyped field.
    pub fn from_json(text: &str) -> std::result::Result<Self, String> {
        let v = json::parse(text)?;
        let version = req_num(&v, "schema_version")? as u64;
        if version == 0 || version > BENCH_SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {version} (reader supports 1..={BENCH_SCHEMA_VERSION})"
            ));
        }
        // v1 predates tier/wall/functional; default them forward.
        let (tier, wall, functional) = if version < 2 {
            ("interpreter".to_string(), BenchWall::default(), None)
        } else {
            let wall_v = v.get("wall").ok_or("missing field `wall`")?;
            let functional = match v.get("functional") {
                None => return Err("missing field `functional`".to_string()),
                Some(Json::Null) => None,
                Some(f) => Some(BenchFunctional {
                    cycles: req_num(f, "cycles")? as u64,
                    instructions: req_num(f, "instructions")? as u64,
                    stalls: req_num(f, "stalls")? as u64,
                }),
            };
            (
                req_str(&v, "tier")?,
                BenchWall {
                    compile_nanos: req_num(wall_v, "compile_nanos")? as u64,
                    perf_nanos: req_num(wall_v, "perf_nanos")? as u64,
                    functional_nanos: req_num(wall_v, "functional_nanos")? as u64,
                },
                functional,
            )
        };
        // v1/v2 predate the parallel node engine; default its group.
        let par = if version < 3 {
            BenchPar::default()
        } else {
            let par_v = v.get("par").ok_or("missing field `par`")?;
            let scaling_v = par_v
                .get("scaling")
                .and_then(Json::as_arr)
                .ok_or("missing or non-array field `par.scaling`")?;
            let mut scaling = Vec::with_capacity(scaling_v.len());
            for (i, s) in scaling_v.iter().enumerate() {
                scaling.push(BenchShard {
                    shards: req_num(s, "shards").map_err(|e| format!("par.scaling[{i}]: {e}"))?
                        as u64,
                    nanos: req_num(s, "nanos").map_err(|e| format!("par.scaling[{i}]: {e}"))?
                        as u64,
                    speedup: req_num(s, "speedup").map_err(|e| format!("par.scaling[{i}]: {e}"))?,
                });
            }
            BenchPar {
                shards: req_num(par_v, "shards")? as u64,
                sequential_nanos: req_num(par_v, "sequential_nanos")? as u64,
                scaling,
            }
        };
        // v1–v3 predate the structural design group; default it absent.
        let design = if version < 4 {
            None
        } else {
            match v.get("design") {
                None => return Err("missing field `design`".to_string()),
                Some(Json::Null) => None,
                Some(d) => {
                    let fingerprint = req_str(d, "fingerprint")?;
                    let point_v = d.get("point").ok_or("missing field `design.point`")?;
                    let point = scaledeep_arch::DesignPoint::from_json(point_v)
                        .map_err(|e| format!("design.point: {e}"))?;
                    let derived = format!("{:016x}", point.fingerprint());
                    if derived != fingerprint {
                        return Err(format!(
                            "design fingerprint `{fingerprint}` does not match \
                             the design point (`{derived}`)"
                        ));
                    }
                    Some(BenchDesign { fingerprint, point })
                }
            }
        };
        let totals_v = v.get("totals").ok_or("missing field `totals`")?;
        let energy_v = v.get("energy").ok_or("missing field `energy`")?;
        let occ_v = v.get("occupancy").ok_or("missing field `occupancy`")?;
        let cache_v = v.get("cache").ok_or("missing field `cache`")?;
        let layers_v = v
            .get("layers")
            .and_then(Json::as_arr)
            .ok_or("missing or non-array field `layers`")?;
        let mut layers = Vec::with_capacity(layers_v.len());
        for (i, l) in layers_v.iter().enumerate() {
            layers.push(BenchLayer::from_json(l).map_err(|e| format!("layers[{i}]: {e}"))?);
        }
        let provenance = req_str(&v, "provenance")?;
        if provenance.len() != 16 || !provenance.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(format!(
                "provenance `{provenance}` is not a 16-hex-digit fingerprint"
            ));
        }
        let kind = req_str(&v, "kind")?;
        if kind != "training" && kind != "evaluation" {
            return Err(format!("unknown run kind `{kind}`"));
        }
        let bench = BenchReport {
            schema_version: version,
            network: req_str(&v, "network")?,
            kind,
            seed: req_num(&v, "seed")? as u64,
            provenance,
            precision: req_str(&v, "precision")?,
            clusters: req_num(&v, "clusters")? as u64,
            frequency_mhz: req_num(&v, "frequency_mhz")?,
            totals: BenchTotals {
                window_cycles: req_num(totals_v, "window_cycles")? as u64,
                busy_cycles: req_num(totals_v, "busy_cycles")? as u64,
                sync_cycles: req_num(totals_v, "sync_cycles")? as u64,
                images_done: req_num(totals_v, "images_done")? as u64,
                images_per_sec: req_num(totals_v, "images_per_sec")?,
                pe_utilization: req_num(totals_v, "pe_utilization")?,
                sfu_utilization: req_num(totals_v, "sfu_utilization")?,
                achieved_flops: req_num(totals_v, "achieved_flops")?,
                gflops_per_watt: req_num(totals_v, "gflops_per_watt")?,
                joules_per_image: req_num(totals_v, "joules_per_image")?,
            },
            energy: BenchEnergy {
                compute_joules: req_num(energy_v, "compute_joules")?,
                memory_joules: req_num(energy_v, "memory_joules")?,
                interconnect_joules: req_num(energy_v, "interconnect_joules")?,
            },
            occupancy: OccupancyPercentiles {
                p50: req_num(occ_v, "p50")?,
                p95: req_num(occ_v, "p95")?,
                p99: req_num(occ_v, "p99")?,
            },
            cache_hits: req_num(cache_v, "hits")? as u64,
            cache_misses: req_num(cache_v, "misses")? as u64,
            tier,
            wall,
            functional,
            par,
            design,
            layers,
        };
        let layer_sum: u64 = bench.layers.iter().map(|l| l.busy_cycles).sum();
        if layer_sum != bench.totals.busy_cycles {
            return Err(format!(
                "per-layer busy cycles sum to {layer_sum}, totals claim {}",
                bench.totals.busy_cycles
            ));
        }
        Ok(bench)
    }

    /// Compares `self` (a fresh run) against `baseline` with a per-metric
    /// relative tolerance, returning one message per regression (empty
    /// when the run is within tolerance). Identity fields (network, kind,
    /// schema) must match exactly; cache statistics and the provenance
    /// fingerprint are informational and never fail the check.
    pub fn check_against(&self, baseline: &BenchReport, tolerance: f64) -> Vec<String> {
        let mut fails = Vec::new();
        if self.schema_version != baseline.schema_version {
            fails.push(format!(
                "schema_version {} vs baseline {}",
                self.schema_version, baseline.schema_version
            ));
            return fails;
        }
        for (what, a, b) in [
            ("network", &self.network, &baseline.network),
            ("kind", &self.kind, &baseline.kind),
            ("precision", &self.precision, &baseline.precision),
        ] {
            if a != b {
                fails.push(format!("{what} `{a}` vs baseline `{b}`"));
            }
        }
        // The design fingerprint is identity, not measurement: two runs on
        // different knobs are not comparable. A pre-v4 baseline without
        // the group constrains nothing.
        if let (Some(got), Some(want)) = (&self.design, &baseline.design) {
            if got.fingerprint != want.fingerprint {
                fails.push(format!(
                    "design fingerprint {} vs baseline {}",
                    got.fingerprint, want.fingerprint
                ));
            }
        }
        if !fails.is_empty() {
            return fails;
        }
        let t = (&self.totals, &baseline.totals);
        let scalars = [
            (
                "totals.window_cycles",
                t.0.window_cycles as f64,
                t.1.window_cycles as f64,
            ),
            (
                "totals.busy_cycles",
                t.0.busy_cycles as f64,
                t.1.busy_cycles as f64,
            ),
            (
                "totals.sync_cycles",
                t.0.sync_cycles as f64,
                t.1.sync_cycles as f64,
            ),
            (
                "totals.images_per_sec",
                t.0.images_per_sec,
                t.1.images_per_sec,
            ),
            (
                "totals.pe_utilization",
                t.0.pe_utilization,
                t.1.pe_utilization,
            ),
            (
                "totals.sfu_utilization",
                t.0.sfu_utilization,
                t.1.sfu_utilization,
            ),
            (
                "totals.achieved_flops",
                t.0.achieved_flops,
                t.1.achieved_flops,
            ),
            (
                "totals.gflops_per_watt",
                t.0.gflops_per_watt,
                t.1.gflops_per_watt,
            ),
            (
                "totals.joules_per_image",
                t.0.joules_per_image,
                t.1.joules_per_image,
            ),
            (
                "energy.compute_joules",
                self.energy.compute_joules,
                baseline.energy.compute_joules,
            ),
            (
                "energy.memory_joules",
                self.energy.memory_joules,
                baseline.energy.memory_joules,
            ),
            (
                "energy.interconnect_joules",
                self.energy.interconnect_joules,
                baseline.energy.interconnect_joules,
            ),
            ("occupancy.p50", self.occupancy.p50, baseline.occupancy.p50),
            ("occupancy.p95", self.occupancy.p95, baseline.occupancy.p95),
            ("occupancy.p99", self.occupancy.p99, baseline.occupancy.p99),
        ];
        for (what, got, want) in scalars {
            check_num(&mut fails, tolerance, what, got, want);
        }
        // Functional drill statistics are cycle-accurate and diff exactly
        // across execution tiers; the tier and wall-clock fields are
        // informational. A baseline without a drill constrains nothing.
        if let (Some(got), Some(want)) = (&self.functional, &baseline.functional) {
            for (what, g, w) in [
                ("functional.cycles", got.cycles, want.cycles),
                (
                    "functional.instructions",
                    got.instructions,
                    want.instructions,
                ),
                ("functional.stalls", got.stalls, want.stalls),
            ] {
                check_num(&mut fails, tolerance, what, g as f64, w as f64);
            }
        } else if baseline.functional.is_some() {
            fails.push("functional drill missing from the run".to_string());
        }
        for want in &baseline.layers {
            match self.layers.iter().find(|l| l.name == want.name) {
                None => fails.push(format!("layer `{}` missing from the run", want.name)),
                Some(got) => {
                    check_num(
                        &mut fails,
                        tolerance,
                        &format!("layer `{}` busy_cycles", want.name),
                        got.busy_cycles as f64,
                        want.busy_cycles as f64,
                    );
                    check_num(
                        &mut fails,
                        tolerance,
                        &format!("layer `{}` service_cycles", want.name),
                        got.service_cycles as f64,
                        want.service_cycles as f64,
                    );
                    if got.bound != want.bound {
                        fails.push(format!(
                            "layer `{}` roofline bound `{}` vs baseline `{}`",
                            want.name, got.bound, want.bound
                        ));
                    }
                }
            }
        }
        for got in &self.layers {
            if !baseline.layers.iter().any(|l| l.name == got.name) {
                fails.push(format!("layer `{}` absent from the baseline", got.name));
            }
        }
        fails
    }
}

impl BenchLayer {
    fn from_attribution(l: &LayerAttribution) -> Self {
        let LayerAttribution {
            stage,
            name,
            busy_cycles,
            service_cycles,
            passes: PassSplit { fp, bp, wg },
            tile_classes:
                TileClassSplit {
                    comp_heavy,
                    mem_heavy,
                },
            tier_bytes: TierBytes { grid, wheel, ring },
            flops,
            bytes_per_flop,
            bound,
            joules_per_image,
        } = l;
        BenchLayer {
            stage: *stage as u64,
            name: name.clone(),
            busy_cycles: *busy_cycles,
            service_cycles: *service_cycles,
            fp_cycles: *fp,
            bp_cycles: *bp,
            wg_cycles: *wg,
            comp_heavy_cycles: *comp_heavy,
            mem_heavy_cycles: *mem_heavy,
            grid_bytes: *grid,
            wheel_bytes: *wheel,
            ring_bytes: *ring,
            flops: *flops,
            bytes_per_flop: *bytes_per_flop,
            bound: bound.name().to_string(),
            joules_per_image: *joules_per_image,
        }
    }

    fn from_json(v: &Json) -> std::result::Result<Self, String> {
        let bound = req_str(v, "bound")?;
        if RooflineBound::parse(&bound).is_none() {
            return Err(format!("unknown roofline bound `{bound}`"));
        }
        let layer = BenchLayer {
            stage: req_num(v, "stage")? as u64,
            name: req_str(v, "name")?,
            busy_cycles: req_num(v, "busy_cycles")? as u64,
            service_cycles: req_num(v, "service_cycles")? as u64,
            fp_cycles: req_num(v, "fp_cycles")? as u64,
            bp_cycles: req_num(v, "bp_cycles")? as u64,
            wg_cycles: req_num(v, "wg_cycles")? as u64,
            comp_heavy_cycles: req_num(v, "comp_heavy_cycles")? as u64,
            mem_heavy_cycles: req_num(v, "mem_heavy_cycles")? as u64,
            grid_bytes: req_num(v, "grid_bytes")?,
            wheel_bytes: req_num(v, "wheel_bytes")?,
            ring_bytes: req_num(v, "ring_bytes")?,
            flops: req_num(v, "flops")? as u64,
            bytes_per_flop: req_num(v, "bytes_per_flop")?,
            bound,
            joules_per_image: req_num(v, "joules_per_image")?,
        };
        if layer.fp_cycles + layer.bp_cycles + layer.wg_cycles != layer.busy_cycles {
            return Err(format!(
                "`{}`: pass cycles do not sum to busy_cycles",
                layer.name
            ));
        }
        if layer.comp_heavy_cycles + layer.mem_heavy_cycles != layer.busy_cycles {
            return Err(format!(
                "`{}`: tile-class cycles do not sum to busy_cycles",
                layer.name
            ));
        }
        Ok(layer)
    }
}

/// Appends a regression message when `got` strays from `want` by more
/// than the relative `tolerance`.
fn check_num(fails: &mut Vec<String>, tolerance: f64, what: &str, got: f64, want: f64) {
    if rel_delta(got, want) > tolerance {
        fails.push(format!(
            "{what}: {got} vs baseline {want} ({:+.1}%, tolerance {:.1}%)",
            100.0 * (got - want) / want.abs().max(f64::MIN_POSITIVE),
            100.0 * tolerance
        ));
    }
}

/// Relative delta of `got` against `want` (absolute when `want` is 0).
fn rel_delta(got: f64, want: f64) -> f64 {
    let d = (got - want).abs();
    if want.abs() < f64::MIN_POSITIVE {
        d
    } else {
        d / want.abs()
    }
}

fn req_num(v: &Json, key: &str) -> std::result::Result<f64, String> {
    v.get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| format!("missing or non-numeric field `{key}`"))
}

fn req_str(v: &Json, key: &str) -> std::result::Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string field `{key}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("demo").headers(["name", "value"]);
        t.row(["a", "1"]);
        t.row(["longer", "22"]);
        let s = t.to_string();
        assert!(s.contains("== demo =="));
        assert!(s.contains("name    value"));
        assert!(s.contains("longer  22"));
    }

    #[test]
    fn geomean_of_powers_of_two() {
        let g = geomean([2.0, 8.0]);
        assert!((g - 4.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_ignores_nonpositive() {
        assert_eq!(geomean([0.0, -1.0]), 0.0);
        assert!((geomean([0.0, 4.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_table_is_empty() {
        assert!(Table::new("t").is_empty());
    }

    fn sample_report() -> BenchReport {
        let session = crate::Session::single_precision();
        session
            .bench_report(&scaledeep_dnn::zoo::alexnet(), RunKind::Training)
            .expect("alexnet benches")
    }

    #[test]
    fn bench_json_round_trips() {
        let report = sample_report();
        let text = report.to_json();
        let back = BenchReport::from_json(&text).expect("own output parses");
        assert_eq!(back, report);
        // Serialization is deterministic.
        assert_eq!(back.to_json(), text);

        // A present functional drill round-trips too (the None case above
        // exercises the `null` encoding).
        let mut with_drill = report;
        with_drill.functional = Some(BenchFunctional {
            cycles: 12345,
            instructions: 6789,
            stalls: 42,
        });
        let back = BenchReport::from_json(&with_drill.to_json()).expect("drill parses");
        assert_eq!(back, with_drill);
    }

    #[test]
    fn bench_layers_sum_to_total_busy() {
        let report = sample_report();
        let sum: u64 = report.layers.iter().map(|l| l.busy_cycles).sum();
        assert_eq!(sum, report.totals.busy_cycles);
        assert!(report.totals.busy_cycles > 0);
        assert_eq!(report.schema_version, BENCH_SCHEMA_VERSION);
        assert_eq!(report.provenance.len(), 16);
    }

    #[test]
    fn reader_rejects_future_schema_and_broken_sums() {
        let report = sample_report();
        let future = report
            .to_json()
            .replacen("\"schema_version\": 4", "\"schema_version\": 5", 1);
        let err = BenchReport::from_json(&future).unwrap_err();
        assert!(err.contains("schema_version"), "{err}");

        let mut broken = report.clone();
        broken.layers[0].busy_cycles += 1;
        broken.layers[0].fp_cycles += 1;
        broken.layers[0].comp_heavy_cycles += 1;
        let err = BenchReport::from_json(&broken.to_json()).unwrap_err();
        assert!(err.contains("sum"), "{err}");

        assert!(BenchReport::from_json("not json").is_err());
        assert!(BenchReport::from_json("{}").is_err());
    }

    #[test]
    fn reader_accepts_v1_documents_with_defaults() {
        // A v1 document has no tier/wall/functional/par fields; the
        // reader defaults them forward instead of rejecting the file.
        let report = sample_report();
        let Json::Obj(fields) = json::parse(&report.to_json()).unwrap() else {
            panic!("report is an object");
        };
        let v1_fields: Vec<(String, Json)> = fields
            .into_iter()
            .map(|(k, v)| match k.as_str() {
                "schema_version" => (k, Json::Num(1.0)),
                _ => (k, v),
            })
            .filter(|(k, _)| {
                !matches!(
                    k.as_str(),
                    "tier" | "wall" | "functional" | "par" | "design"
                )
            })
            .collect();
        let v1_text = Json::Obj(v1_fields).render_pretty();
        let back = BenchReport::from_json(&v1_text).expect("v1 documents parse");
        assert_eq!(back.schema_version, 1);
        assert_eq!(back.tier, "interpreter");
        assert_eq!(back.wall, BenchWall::default());
        assert_eq!(back.functional, None);
        assert_eq!(back.par, BenchPar::default());
        assert_eq!(back.design, None);
        assert_eq!(back.totals, report.totals);
        assert_eq!(back.layers, report.layers);
    }

    #[test]
    fn reader_accepts_v2_documents_without_the_par_group() {
        // A v2 document carries tier/wall/functional but predates the
        // parallel node engine's scaling group.
        let report = sample_report();
        let Json::Obj(fields) = json::parse(&report.to_json()).unwrap() else {
            panic!("report is an object");
        };
        let v2_fields: Vec<(String, Json)> = fields
            .into_iter()
            .map(|(k, v)| match k.as_str() {
                "schema_version" => (k, Json::Num(2.0)),
                _ => (k, v),
            })
            .filter(|(k, _)| k != "par" && k != "design")
            .collect();
        let v2_text = Json::Obj(v2_fields).render_pretty();
        let back = BenchReport::from_json(&v2_text).expect("v2 documents parse");
        assert_eq!(back.schema_version, 2);
        assert_eq!(back.tier, report.tier);
        assert_eq!(back.wall, report.wall);
        assert_eq!(back.par, BenchPar::default());
        assert_eq!(back.design, None);
        assert_eq!(back.layers, report.layers);
    }

    #[test]
    fn reader_accepts_v3_documents_without_the_design_group() {
        // A v3 document carries the par group but predates the structural
        // design group.
        let report = sample_report();
        let Json::Obj(fields) = json::parse(&report.to_json()).unwrap() else {
            panic!("report is an object");
        };
        let v3_fields: Vec<(String, Json)> = fields
            .into_iter()
            .map(|(k, v)| match k.as_str() {
                "schema_version" => (k, Json::Num(3.0)),
                _ => (k, v),
            })
            .filter(|(k, _)| k != "design")
            .collect();
        let v3_text = Json::Obj(v3_fields).render_pretty();
        let back = BenchReport::from_json(&v3_text).expect("v3 documents parse");
        assert_eq!(back.schema_version, 3);
        assert_eq!(back.par, report.par);
        assert_eq!(back.design, None);
        assert_eq!(back.layers, report.layers);
        // A baseline without the group constrains nothing, but a v4
        // baseline with different knobs fails the identity check.
        let mut no_design = report.clone();
        no_design.design = None;
        assert!(!report
            .check_against(&no_design, 0.5)
            .iter()
            .any(|f| f.contains("design fingerprint")));
        let mut other_knobs = report.clone();
        other_knobs.design = Some(BenchDesign::describe(
            &scaledeep_arch::presets::half_precision(),
        ));
        assert!(other_knobs
            .check_against(&report, 0.5)
            .iter()
            .any(|f| f.contains("design fingerprint")));
    }

    #[test]
    fn shard_scaling_is_informational_in_checks() {
        // Host-dependent wall-clock numbers must never fail the gate.
        let report = sample_report();
        assert_eq!(report.par.scaling.len(), 4);
        let mut other = report.clone();
        other.par = BenchPar {
            shards: report.par.shards + 7,
            sequential_nanos: 1,
            scaling: Vec::new(),
        };
        assert!(other.check_against(&report, 0.0).is_empty());
    }

    #[test]
    fn check_flags_functional_drift_exactly() {
        let mut report = sample_report();
        // Full-scale AlexNet has no functional compile; graft drill stats
        // on so the comparison path is exercised either way.
        report.functional = Some(BenchFunctional {
            cycles: 1000,
            instructions: 900,
            stalls: 10,
        });
        let mut drift = report.clone();
        drift.functional.as_mut().unwrap().cycles += 1;
        let fails = drift.check_against(&report, 0.0);
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("functional.cycles"), "{fails:?}");

        let mut none = report.clone();
        none.functional = None;
        let fails = none.check_against(&report, 0.0);
        assert!(
            fails.iter().any(|f| f.contains("functional drill missing")),
            "{fails:?}"
        );
        // The reverse direction constrains nothing.
        assert!(report.check_against(&none, 0.0).is_empty());
    }

    #[test]
    fn check_passes_self_and_flags_perturbation() {
        let report = sample_report();
        assert!(report.check_against(&report, 0.0).is_empty());

        let mut slow = report.clone();
        slow.totals.images_per_sec *= 0.8;
        let fails = slow.check_against(&report, 0.05);
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("images_per_sec"), "{fails:?}");
        // A generous tolerance absorbs the same drift.
        assert!(slow.check_against(&report, 0.25).is_empty());
    }

    #[test]
    fn check_flags_layer_set_changes_and_identity_mismatch() {
        let report = sample_report();
        let mut fewer = report.clone();
        let dropped = fewer.layers.pop().expect("report has layers");
        let fails = fewer.check_against(&report, 0.5);
        assert!(fails.iter().any(|f| f.contains(&dropped.name)), "{fails:?}");

        let mut other = report.clone();
        other.network = "vgg".into();
        let fails = other.check_against(&report, 0.5);
        assert_eq!(fails.len(), 1);
        assert!(fails[0].contains("network"));
    }
}
