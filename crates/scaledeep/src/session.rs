//! The end-to-end session API.

use crate::{Error, Result};
use scaledeep_arch::{presets, NodeConfig};
use scaledeep_compiler::codegen::{compile_functional, FuncTargetOptions};
use scaledeep_compiler::{Compiler, Mapping};
use scaledeep_dnn::{Layer, Network};
use scaledeep_sim::func::{FuncSim, RunStats};
use scaledeep_sim::perf::{PerfOptions, PerfResult, PerfSim, RunKind};
use scaledeep_tensor::Executor;

/// Cycle counts from both simulators over the same network, produced by
/// [`Session::cross_check`]: the event-driven functional simulator's
/// cycle-grounded execution of one training image against the analytic
/// performance model's per-image service cycles. The two models share
/// the §3.2 tile parameters, so the counts should agree to within a
/// small factor — a drift flags a regression in either model.
#[derive(Debug, Clone)]
pub struct CycleCrossCheck {
    /// Statistics from the functional simulator's event-driven run of one
    /// full training iteration (FP + BP + WG, single image).
    pub functional: RunStats,
    /// The performance model's per-image service cycles: the sum of every
    /// pipeline stage's service time (the layer-sequential, single-image
    /// interpretation — the same quantity the A4 ablation uses).
    pub perf_per_image_cycles: u64,
}

impl CycleCrossCheck {
    /// Functional cycles over perf-model cycles.
    pub fn ratio(&self) -> f64 {
        self.functional.cycles as f64 / self.perf_per_image_cycles.max(1) as f64
    }
}

/// A ScaleDeep session: one node configuration plus the compiler and
/// performance simulator bound to it.
#[derive(Debug, Clone)]
pub struct Session {
    node: NodeConfig,
    sim: PerfSim,
}

impl Session {
    /// The paper's baseline single-precision node (680 TFLOPS, 1.4 kW).
    pub fn single_precision() -> Self {
        Self::with_node(presets::single_precision())
    }

    /// The half-precision design point (1.35 PFLOPS at the same power).
    pub fn half_precision() -> Self {
        Self::with_node(presets::half_precision())
    }

    /// A session over a custom node configuration (design-space studies).
    pub fn with_node(node: NodeConfig) -> Self {
        Self {
            node,
            sim: PerfSim::new(&node),
        }
    }

    /// Overrides the simulator options (minibatch, ablation knobs, ...).
    pub fn with_options(mut self, opts: PerfOptions) -> Self {
        self.sim = PerfSim::new(&self.node).with_options(opts);
        self
    }

    /// The session's node configuration.
    pub fn node(&self) -> &NodeConfig {
        &self.node
    }

    /// Runs the compiler's workload-mapping phase.
    ///
    /// # Errors
    ///
    /// Propagates mapping failures (network too large for the node, ...).
    pub fn compile(&self, net: &Network) -> Result<Mapping> {
        Ok(Compiler::new(&self.node).map(net)?)
    }

    /// Simulates training.
    ///
    /// # Errors
    ///
    /// Propagates mapping failures.
    pub fn train(&self, net: &Network) -> Result<PerfResult> {
        self.sim.train(net)
    }

    /// Simulates evaluation (inference).
    ///
    /// # Errors
    ///
    /// Propagates mapping failures.
    pub fn evaluate(&self, net: &Network) -> Result<PerfResult> {
        self.sim.evaluate(net)
    }

    /// Simulates an already-compiled mapping.
    pub fn run_mapped(&self, mapping: &Mapping, kind: RunKind) -> PerfResult {
        self.sim.run_mapped(mapping, kind)
    }

    /// Runs `net` through both simulators and returns their cycle counts
    /// for one training image: the functional simulator executes the
    /// compiled ISA programs event-driven (bit-accurate, cycle-grounded
    /// by the §3.2 cost table), while the performance model prices the
    /// same layers analytically. Parameters are seeded deterministically;
    /// the input image is an arbitrary constant (cycle counts are
    /// data-independent).
    ///
    /// # Errors
    ///
    /// Propagates functional-compilation and machine faults, and
    /// [`Error::Setup`] when the network has no loss head.
    pub fn cross_check(&self, net: &Network) -> Result<CycleCrossCheck> {
        let compiled = compile_functional(net, &FuncTargetOptions::default())?;
        let reference = Executor::new(net, 0xC0FFEE)?;
        let mut fsim = FuncSim::new(net, &compiled)?;
        fsim.import_params(&reference)?;
        let input_len = compiled.buffers[net.input().id().index()]
            .output
            .map(|loc| loc.len as usize)
            .ok_or_else(|| Error::Setup {
                detail: "input layer has no output buffer".into(),
            })?;
        let golden_len = net
            .layers()
            .find(|n| matches!(n.layer(), Layer::Loss))
            .and_then(|n| compiled.buffers[n.id().index()].golden)
            .map(|loc| loc.len as usize)
            .ok_or_else(|| Error::Setup {
                detail: "network has no loss head; cross_check needs a training graph".into(),
            })?;
        let functional = fsim.run_iteration(&vec![0.5; input_len], &vec![0.0; golden_len])?;

        // Per-image service cycles at minibatch 1, so neither batching
        // efficiency nor the pipeline overlap distorts the comparison.
        let perf = PerfSim::new(&self.node).with_options(PerfOptions {
            minibatch: 1,
            ..PerfOptions::default()
        });
        let result = perf.train(net)?;
        let perf_per_image_cycles = result.stages.iter().map(|s| s.service_cycles.max(1)).sum();
        Ok(CycleCrossCheck {
            functional,
            perf_per_image_cycles,
        })
    }

    /// Training throughput of a single chip cluster (the iso-power unit the
    /// paper compares against one GPU card in Figure 18).
    ///
    /// # Errors
    ///
    /// Propagates mapping failures.
    pub fn cluster_train_images_per_sec(&self, net: &Network) -> Result<f64> {
        let r = self.train(net)?;
        Ok(r.images_per_sec / self.node.clusters as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scaledeep_dnn::zoo;

    #[test]
    fn session_round_trip() {
        let s = Session::single_precision();
        let m = s.compile(&zoo::alexnet()).unwrap();
        assert!(m.conv_cols_used() > 0);
        let r = s.train(&zoo::alexnet()).unwrap();
        assert!(r.images_per_sec > 0.0);
    }

    #[test]
    fn cluster_rate_is_a_quarter_of_node_rate() {
        let s = Session::single_precision();
        let node = s.train(&zoo::alexnet()).unwrap().images_per_sec;
        let cluster = s.cluster_train_images_per_sec(&zoo::alexnet()).unwrap();
        assert!((node / cluster - 4.0).abs() < 1e-9);
    }

    #[test]
    fn functional_and_perf_cycles_cross_check() {
        use scaledeep_dnn::{Activation, Conv, Fc, FeatureShape, NetworkBuilder};
        let mut b = NetworkBuilder::new("xcheck", FeatureShape::new(1, 8, 8));
        let c = b
            .conv(
                "c",
                Conv {
                    out_features: 4,
                    kernel: 3,
                    stride: 1,
                    pad: 1,
                    groups: 1,
                    bias: false,
                    activation: Activation::Relu,
                },
            )
            .unwrap();
        let f = b
            .fc_from(
                "f",
                c,
                Fc {
                    out_neurons: 10,
                    bias: false,
                    activation: Activation::None,
                },
            )
            .unwrap();
        let net = b.finish_with_loss(f).unwrap();
        // The functional machine models on-chip execution; lift the
        // wheel-spoke bottleneck (an off-chip link the compiled programs
        // never traverse) so both models price the same work.
        let mut node = presets::single_precision();
        node.cluster.spoke_bw = node.cluster.arc_bw;
        let x = Session::with_node(node).cross_check(&net).unwrap();
        println!(
            "functional {} cycles vs perf {} cycles (ratio {:.3})",
            x.functional.cycles,
            x.perf_per_image_cycles,
            x.ratio()
        );
        assert!(x.functional.cycles > 0);
        assert!(
            x.ratio() > 0.5 && x.ratio() < 2.0,
            "functional {} vs perf {} cycles diverge more than 2x",
            x.functional.cycles,
            x.perf_per_image_cycles
        );
    }

    #[test]
    fn half_precision_session_uses_hp_node() {
        let s = Session::half_precision();
        assert_eq!(s.node().precision, scaledeep_arch::Precision::Half);
    }
}
