//! The end-to-end session API.

use crate::Result;
use scaledeep_arch::{presets, NodeConfig};
use scaledeep_compiler::{Compiler, Mapping};
use scaledeep_dnn::Network;
use scaledeep_sim::perf::{PerfOptions, PerfResult, PerfSim, RunKind};

/// A ScaleDeep session: one node configuration plus the compiler and
/// performance simulator bound to it.
#[derive(Debug, Clone)]
pub struct Session {
    node: NodeConfig,
    sim: PerfSim,
}

impl Session {
    /// The paper's baseline single-precision node (680 TFLOPS, 1.4 kW).
    pub fn single_precision() -> Self {
        Self::with_node(presets::single_precision())
    }

    /// The half-precision design point (1.35 PFLOPS at the same power).
    pub fn half_precision() -> Self {
        Self::with_node(presets::half_precision())
    }

    /// A session over a custom node configuration (design-space studies).
    pub fn with_node(node: NodeConfig) -> Self {
        Self {
            node,
            sim: PerfSim::new(&node),
        }
    }

    /// Overrides the simulator options (minibatch, ablation knobs, ...).
    pub fn with_options(mut self, opts: PerfOptions) -> Self {
        self.sim = PerfSim::new(&self.node).with_options(opts);
        self
    }

    /// The session's node configuration.
    pub fn node(&self) -> &NodeConfig {
        &self.node
    }

    /// Runs the compiler's workload-mapping phase.
    ///
    /// # Errors
    ///
    /// Propagates mapping failures (network too large for the node, ...).
    pub fn compile(&self, net: &Network) -> Result<Mapping> {
        Ok(Compiler::new(&self.node).map(net)?)
    }

    /// Simulates training.
    ///
    /// # Errors
    ///
    /// Propagates mapping failures.
    pub fn train(&self, net: &Network) -> Result<PerfResult> {
        self.sim.train(net)
    }

    /// Simulates evaluation (inference).
    ///
    /// # Errors
    ///
    /// Propagates mapping failures.
    pub fn evaluate(&self, net: &Network) -> Result<PerfResult> {
        self.sim.evaluate(net)
    }

    /// Simulates an already-compiled mapping.
    pub fn run_mapped(&self, mapping: &Mapping, kind: RunKind) -> PerfResult {
        self.sim.run_mapped(mapping, kind)
    }

    /// Training throughput of a single chip cluster (the iso-power unit the
    /// paper compares against one GPU card in Figure 18).
    ///
    /// # Errors
    ///
    /// Propagates mapping failures.
    pub fn cluster_train_images_per_sec(&self, net: &Network) -> Result<f64> {
        let r = self.train(net)?;
        Ok(r.images_per_sec / self.node.clusters as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scaledeep_dnn::zoo;

    #[test]
    fn session_round_trip() {
        let s = Session::single_precision();
        let m = s.compile(&zoo::alexnet()).unwrap();
        assert!(m.conv_cols_used() > 0);
        let r = s.train(&zoo::alexnet()).unwrap();
        assert!(r.images_per_sec > 0.0);
    }

    #[test]
    fn cluster_rate_is_a_quarter_of_node_rate() {
        let s = Session::single_precision();
        let node = s.train(&zoo::alexnet()).unwrap().images_per_sec;
        let cluster = s.cluster_train_images_per_sec(&zoo::alexnet()).unwrap();
        assert!((node / cluster - 4.0).abs() < 1e-9);
    }

    #[test]
    fn half_precision_session_uses_hp_node() {
        let s = Session::half_precision();
        assert_eq!(s.node().precision, scaledeep_arch::Precision::Half);
    }
}
