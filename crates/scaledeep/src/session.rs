//! The end-to-end session API.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use crate::{Error, Result};
use scaledeep_arch::{presets, NodeConfig};
use scaledeep_compiler::artifact_io;
use scaledeep_compiler::codegen::CompiledNetwork;
use scaledeep_compiler::pipeline::{self, Provenance};
use scaledeep_compiler::{CompileOptions, CompiledArtifact, FailedTiles};
use scaledeep_dnn::{Layer, Network};
use scaledeep_sim::fault::FaultPlan;
use scaledeep_sim::func::{ExecBackend, FuncSim, RunStats};
use scaledeep_sim::par::{self, NodeOutcome};
use scaledeep_sim::perf::{PerfOptions, PerfResult, PerfSim, RunKind};
use scaledeep_tensor::Executor;
use scaledeep_trace::{
    chrome_trace, cycle_csv, utilization_heatmap, CategoryMask, Event, FilterSink, MetricsRegistry,
    NullSink, Payload, ProgressSender, ProgressSink, RingSink, TraceSink, Tracer, TrackTable,
};

/// How a traced run records events: which categories pass, how densely
/// they are sampled, and how many events are retained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Per-category enable mask (default: all categories).
    pub filter: CategoryMask,
    /// Keep one event in every `sample` per category (`<= 1` keeps all).
    pub sample: u32,
    /// Retain at most this many events, evicting the oldest (flight
    /// recorder). `0` means unbounded.
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            filter: CategoryMask::all(),
            sample: 1,
            capacity: 0,
        }
    }
}

impl TraceConfig {
    /// A bounded flight-recorder configuration keeping the most recent
    /// `capacity` events of every category.
    pub fn flight_recorder(capacity: usize) -> Self {
        Self {
            capacity,
            ..Self::default()
        }
    }
}

/// The observability artifacts of one traced run: the recorded events,
/// the track table naming their timelines, and the metrics registry every
/// run counter was assembled from.
#[derive(Debug, Clone)]
pub struct Trace {
    /// All metrics the run recorded (counters, gauges, histograms).
    pub metrics: MetricsRegistry,
    /// The retained events, in emission order.
    pub events: Vec<Event>,
    /// Track names for the events' `track` ids.
    pub tracks: TrackTable,
    /// Events evicted by the flight-recorder bound (0 when unbounded).
    pub dropped: u64,
}

impl Trace {
    /// The events rendered as Chrome/Perfetto `trace.json` (load in
    /// `chrome://tracing` or <https://ui.perfetto.dev>).
    pub fn chrome_trace(&self) -> String {
        chrome_trace(&self.events, &self.tracks)
    }

    /// The events rendered as a SCALE-Sim-style per-cycle CSV.
    pub fn cycle_csv(&self) -> String {
        cycle_csv(&self.events, &self.tracks)
    }

    /// A textual per-track utilization heatmap over `bins` time bins.
    pub fn utilization_report(&self, bins: usize) -> String {
        utilization_heatmap(&self.events, &self.tracks, bins)
    }

    /// The metrics registry rendered as an aligned text report.
    pub fn metrics_report(&self) -> String {
        self.metrics.report()
    }
}

/// A performance-simulation run plus its trace ([`Session::run_traced`]).
#[derive(Debug, Clone)]
pub struct TracedRun {
    /// The simulation result, assembled from `trace.metrics`.
    pub perf: PerfResult,
    /// The run's observability artifacts.
    pub trace: Trace,
}

/// Builds the sink every traced session entry point uses: a
/// category/sampling filter over a ring (unbounded when `capacity` is 0 —
/// a `usize::MAX` ring never evicts).
fn session_sink(cfg: &TraceConfig) -> FilterSink<RingSink> {
    let capacity = if cfg.capacity == 0 {
        usize::MAX
    } else {
        cfg.capacity
    };
    FilterSink::new(RingSink::new(capacity), cfg.filter, cfg.sample)
}

/// Unwraps the tracer built by [`session_sink`] into a [`Trace`].
fn into_trace(tracer: Tracer<FilterSink<RingSink>>, metrics: MetricsRegistry) -> Trace {
    let (sink, tracks) = tracer.into_parts();
    let (events, dropped) = sink.into_inner().into_parts();
    Trace {
        metrics,
        events,
        tracks,
        dropped,
    }
}

/// Cycle counts from both simulators over the same network, produced by
/// [`Session::cross_check`]: the event-driven functional simulator's
/// cycle-grounded execution of one training image against the analytic
/// performance model's per-image service cycles. The two models share
/// the §3.2 tile parameters, so the counts should agree to within a
/// small factor — a drift flags a regression in either model.
#[derive(Debug, Clone)]
pub struct CycleCrossCheck {
    /// Statistics from the functional simulator's event-driven run of one
    /// full training iteration (FP + BP + WG, single image), executed on
    /// the interpreter tier (the bit-identity oracle).
    pub functional: RunStats,
    /// The same iteration — same artifact, parameters, and inputs — run
    /// on the compiled micro-op tier.
    pub compiled_tier: RunStats,
    /// Whether the two tiers produced identical [`RunStats`] *and*
    /// bit-identical final state (learning state plus every layer's
    /// activations and errors). The compiled tier shares the
    /// interpreter's arithmetic kernels, so anything but `true` is a
    /// tiering regression.
    pub tiers_identical: bool,
    /// The performance model's per-image service cycles: the sum of every
    /// pipeline stage's service time (the layer-sequential, single-image
    /// interpretation — the same quantity the A4 ablation uses).
    pub perf_per_image_cycles: u64,
    /// The functional run's full metrics registry (instruction, stall,
    /// per-tile busy counters, instruction-cost histogram).
    pub functional_metrics: MetricsRegistry,
    /// Flight-recorder tail of the functional run's trace: the most
    /// recent events, oldest first.
    pub trace_tail: Vec<Event>,
    /// Track names for [`CycleCrossCheck::trace_tail`].
    pub tracks: TrackTable,
    /// Events the flight recorder evicted before the run ended.
    pub dropped: u64,
}

impl CycleCrossCheck {
    /// Functional cycles over perf-model cycles.
    pub fn ratio(&self) -> f64 {
        self.functional.cycles as f64 / self.perf_per_image_cycles.max(1) as f64
    }

    /// True when the two models agree within the expected 2x band.
    pub fn agrees(&self) -> bool {
        let r = self.ratio();
        r > 0.5 && r < 2.0
    }

    /// A diagnostic report when the two models diverge more than 2x:
    /// the cycle counts, the functional run's metrics, and the trace
    /// tail — everything needed to see where the functional machine spent
    /// its final cycles. `None` while the models agree.
    pub fn mismatch_report(&self) -> Option<String> {
        if self.agrees() {
            return None;
        }
        let mut out = String::new();
        out.push_str(&format!(
            "cycle cross-check mismatch: functional {} vs perf {} cycles (ratio {:.3})\n",
            self.functional.cycles,
            self.perf_per_image_cycles,
            self.ratio()
        ));
        out.push_str(&format!(
            "\nfunctional metrics:\n{}",
            self.functional_metrics.report()
        ));
        out.push_str(&format!(
            "\ntrace tail ({} retained, {} dropped):\n{}",
            self.trace_tail.len(),
            self.dropped,
            cycle_csv(&self.trace_tail, &self.tracks)
        ));
        Some(out)
    }
}

/// The outcome of a fault-resilient functional run
/// ([`Session::run_resilient`]): the iteration's statistics plus whether
/// graceful degradation had to kick in.
#[derive(Debug, Clone)]
pub struct ResilientRun {
    /// Statistics of the (possibly retried) successful iteration.
    pub stats: RunStats,
    /// Whether a permanent tile failure forced a degraded recompile and a
    /// retry from the checkpoint.
    pub retried: bool,
    /// MemHeavy tiles condemned by the fault plan and excluded from the
    /// degraded layout (empty when no retry happened).
    pub dead_tiles: Vec<u16>,
}

/// A snapshot of a session's compile-cache statistics
/// ([`Session::cache_stats`]). Clones of a session share one cache, so
/// the counts aggregate across all of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Compiles served from the in-memory cache without running the
    /// pipeline.
    pub hits: u64,
    /// Compiles served from the on-disk artifact store
    /// ([`Session::with_artifact_dir`]) without running the pipeline.
    pub disk_hits: u64,
    /// Compiles that ran the pipeline (including ones that erred).
    pub misses: u64,
    /// Stored artifacts that failed to load (torn write, malformed JSON,
    /// key mismatch): each was quarantined and recompiled as a miss.
    pub corrupt: u64,
    /// Total wall-clock nanoseconds spent inside the pipeline, summed
    /// over the misses. Host time, never simulated cycles — report it,
    /// don't trace it.
    pub compile_nanos: u64,
}

/// The shared, lock-free counters behind [`CacheStats`].
#[derive(Debug, Default)]
struct CacheStatsCells {
    hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
    compile_nanos: AtomicU64,
}

/// A ScaleDeep session: one node configuration plus the performance
/// simulator bound to it and a compile cache keyed on [`Provenance`].
///
/// Every run path compiles through [`Session::compile_with`], the one
/// entry point into the phase pipeline, so an experiment sweep that runs
/// the same network under several run kinds compiles it exactly once.
/// Clones share the cache (and its statistics).
#[derive(Debug, Clone)]
pub struct Session {
    node: NodeConfig,
    sim: PerfSim,
    cache: Arc<Mutex<HashMap<u64, Arc<CompiledArtifact>>>>,
    stats: Arc<CacheStatsCells>,
    artifact_dir: Option<PathBuf>,
    exec_backend: ExecBackend,
    shards: usize,
}

impl Session {
    /// The paper's baseline single-precision node (680 TFLOPS, 1.4 kW).
    pub fn single_precision() -> Self {
        Self::with_node(presets::single_precision())
    }

    /// The half-precision design point (1.35 PFLOPS at the same power).
    pub fn half_precision() -> Self {
        Self::with_node(presets::half_precision())
    }

    /// A session over a custom node configuration (design-space studies).
    pub fn with_node(node: NodeConfig) -> Self {
        Self {
            node,
            sim: PerfSim::new(&node),
            cache: Arc::new(Mutex::new(HashMap::new())),
            stats: Arc::new(CacheStatsCells::default()),
            artifact_dir: None,
            exec_backend: ExecBackend::default(),
            shards: 0,
        }
    }

    /// Re-targets this session onto a different node configuration while
    /// keeping every cache affinity: the in-memory artifact cache, its
    /// statistics cells, the artifact directory, the execution tier and
    /// the shard count all carry over. Because cache keys include the
    /// node's structural fingerprint, one shared cache serves sessions on
    /// *different* design points correctly — the DSE driver uses this to
    /// give every point its own session while points sharing a compile
    /// (same knobs, same network) reuse one artifact.
    pub fn retarget(&self, node: NodeConfig) -> Self {
        Self {
            node,
            sim: PerfSim::new(&node),
            cache: Arc::clone(&self.cache),
            stats: Arc::clone(&self.stats),
            artifact_dir: self.artifact_dir.clone(),
            exec_backend: self.exec_backend,
            shards: self.shards,
        }
    }

    /// Selects how many event shards the parallel node engine
    /// ([`Session::node_outcome`]) partitions the simulated node into.
    /// `0` (the default) resolves to the host's available cores at run
    /// time. Shard count never changes results — every shard count is
    /// bit-identical to the sequential oracle — only wall-clock.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// The configured shard count (`0` = auto).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard count runs actually use: the configured count, with `0`
    /// resolved to the host's available cores.
    pub fn resolved_shards(&self) -> usize {
        if self.shards == 0 {
            par::available_shards()
        } else {
            self.shards
        }
    }

    /// Backs the compile cache with an on-disk artifact store: every
    /// pipeline run is persisted to `dir` (one JSON file per provenance
    /// key), and a later session — this process or the next — finding a
    /// stored artifact loads it without running a single pipeline phase.
    /// The directory is created on first store.
    pub fn with_artifact_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.artifact_dir = Some(dir.into());
        self
    }

    /// Selects the execution tier every functional run of this session
    /// uses ([`ExecBackend::Interpreter`] decodes instructions per step;
    /// [`ExecBackend::Compiled`] executes the artifact's pre-decoded
    /// micro-op streams — bit-identical results, lower dispatch cost).
    pub fn with_exec_backend(mut self, backend: ExecBackend) -> Self {
        self.exec_backend = backend;
        self
    }

    /// The execution tier this session's functional runs use.
    pub fn exec_backend(&self) -> ExecBackend {
        self.exec_backend
    }

    /// Overrides the simulator options (minibatch, ablation knobs, ...).
    /// The compile cache carries over: simulator options do not enter the
    /// pipeline, so cached artifacts stay valid.
    pub fn with_options(mut self, opts: PerfOptions) -> Self {
        self.sim = PerfSim::new(&self.node).with_options(opts);
        self
    }

    /// The session's node configuration.
    pub fn node(&self) -> &NodeConfig {
        &self.node
    }

    fn lock_cache(&self) -> MutexGuard<'_, HashMap<u64, Arc<CompiledArtifact>>> {
        self.cache.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The file a provenance key's artifact is stored under, when the
    /// session has an artifact directory.
    fn artifact_path(&self, key: u64) -> Option<PathBuf> {
        self.artifact_dir
            .as_ref()
            .map(|d| d.join(format!("{key:016x}.artifact.json")))
    }

    /// Tries the on-disk artifact store. A stored artifact is trusted
    /// only when its provenance re-derives the key it was filed under; a
    /// file that exists but is unreadable, malformed, or mismatched is
    /// **corrupt** — it is quarantined (renamed aside for post-mortem),
    /// counted, and treated as a plain miss, so a torn write can degrade
    /// a session's cache but never its correctness.
    fn load_from_disk(&self, key: u64) -> Option<CompiledArtifact> {
        let path = self.artifact_path(key)?;
        if !path.exists() {
            return None;
        }
        match artifact_io::load(&path) {
            Ok(artifact) if artifact.provenance().cache_key() == key => Some(artifact),
            Ok(_) | Err(_) => {
                self.stats.corrupt.fetch_add(1, Ordering::Relaxed);
                let quarantine = path.with_extension("json.corrupt");
                std::fs::rename(&path, &quarantine).ok();
                None
            }
        }
    }

    /// The session's single compile entry point: runs the phase pipeline
    /// (analyze → allocate-columns → partition-state → assign-compute →
    /// codegen → lower) through the in-session cache, keyed on the
    /// compile's [`Provenance`]. A repeat compile with the same network,
    /// node, and options returns the cached [`CompiledArtifact`] without
    /// touching the pipeline; with an artifact directory configured
    /// ([`Session::with_artifact_dir`]), the store extends across
    /// processes — a repeat *session* loads the stored artifact and runs
    /// zero pipeline phases.
    ///
    /// # Errors
    ///
    /// Propagates mapping-phase failures and artifact-store write
    /// failures. Errors are not cached; a failing compile re-runs (and
    /// re-counts as a miss) on retry.
    pub fn compile_with(
        &self,
        net: &Network,
        opts: &CompileOptions,
    ) -> Result<Arc<CompiledArtifact>> {
        self.compile_observed(net, opts, &mut Tracer::disabled())
    }

    /// [`Session::compile_with`] reporting pipeline phases through a
    /// progress channel: on a cache miss, each phase entered becomes a
    /// [`scaledeep_trace::ProgressKind::Phase`] update; cache hits (memory
    /// or disk) emit nothing — progress reflects work actually done.
    ///
    /// # Errors
    ///
    /// See [`Session::compile_with`].
    pub fn compile_with_progress(
        &self,
        net: &Network,
        opts: &CompileOptions,
        progress: &ProgressSender,
    ) -> Result<Arc<CompiledArtifact>> {
        let mut tracer = Tracer::new(ProgressSink::new(NullSink, progress.clone()));
        self.compile_observed(net, opts, &mut tracer)
    }

    fn compile_observed<S: TraceSink>(
        &self,
        net: &Network,
        opts: &CompileOptions,
        tracer: &mut Tracer<S>,
    ) -> Result<Arc<CompiledArtifact>> {
        let key = Provenance::new(&self.node, net, opts).cache_key();
        if let Some(hit) = self.lock_cache().get(&key).cloned() {
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        if let Some(stored) = self.load_from_disk(key) {
            self.stats.disk_hits.fetch_add(1, Ordering::Relaxed);
            let artifact = Arc::new(stored);
            self.lock_cache().insert(key, Arc::clone(&artifact));
            return Ok(artifact);
        }
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let compiled = pipeline::compile_traced(&self.node, net, opts, tracer);
        let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.stats.compile_nanos.fetch_add(nanos, Ordering::Relaxed);
        let artifact = Arc::new(compiled?);
        if let Some(path) = self.artifact_path(key) {
            if let Some(dir) = path.parent() {
                std::fs::create_dir_all(dir).map_err(|e| Error::Setup {
                    detail: format!("creating artifact dir {}: {e}", dir.display()),
                })?;
            }
            artifact_io::save(&artifact, &path)?;
        }
        self.lock_cache().insert(key, Arc::clone(&artifact));
        Ok(artifact)
    }

    /// Compiles `net` with default options (healthy layout, minibatch 1)
    /// through the session cache.
    ///
    /// # Errors
    ///
    /// Propagates mapping failures (network too large for the node, ...).
    pub fn compile(&self, net: &Network) -> Result<Arc<CompiledArtifact>> {
        self.compile_with(net, &CompileOptions::default())
    }

    /// Compiles `net` around a set of failed tiles: the column allocation
    /// excludes the condemned columns, the mapping carries the
    /// logical→physical indirection, and the functional layout avoids the
    /// condemned MemHeavy tiles. Same pipeline, same cache — a degraded
    /// compile is just a compile whose [`FailedTiles`] input is non-empty.
    ///
    /// # Errors
    ///
    /// Propagates mapping failures, including the degraded-specific
    /// `NoCapacity` and `NoRoute` conditions.
    pub fn compile_degraded(
        &self,
        net: &Network,
        failed: &FailedTiles,
    ) -> Result<Arc<CompiledArtifact>> {
        self.compile_with(net, &CompileOptions::degraded(failed.clone()))
    }

    /// The compile cache's aggregate statistics so far.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.stats.hits.load(Ordering::Relaxed),
            disk_hits: self.stats.disk_hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            corrupt: self.stats.corrupt.load(Ordering::Relaxed),
            compile_nanos: self.stats.compile_nanos.load(Ordering::Relaxed),
        }
    }

    /// Materializes the cache statistics into `reg` as the
    /// `compile.cache.hit` / `compile.cache.miss` counter pair (plus
    /// `compile.nanos` for the wall-clock spent compiling). Counters are
    /// *added*, so a registry fed from several sessions aggregates.
    pub fn record_cache_metrics(&self, reg: &mut MetricsRegistry) {
        let s = self.cache_stats();
        let hit = reg.counter("compile.cache.hit");
        let disk = reg.counter("compile.cache.disk_hit");
        let miss = reg.counter("compile.cache.miss");
        let corrupt = reg.counter("compile.cache.corrupt");
        let nanos = reg.counter("compile.nanos");
        reg.add(hit, s.hits);
        reg.add(disk, s.disk_hits);
        reg.add(miss, s.misses);
        reg.add(corrupt, s.corrupt);
        reg.add(nanos, s.compile_nanos);
    }

    /// Simulates training.
    ///
    /// # Errors
    ///
    /// Propagates mapping failures.
    pub fn train(&self, net: &Network) -> Result<PerfResult> {
        let artifact = self.compile(net)?;
        Ok(self.sim.run_mapped(artifact.mapping(), RunKind::Training))
    }

    /// Simulates evaluation (inference).
    ///
    /// # Errors
    ///
    /// Propagates mapping failures.
    pub fn evaluate(&self, net: &Network) -> Result<PerfResult> {
        let artifact = self.compile(net)?;
        Ok(self.sim.run_mapped(artifact.mapping(), RunKind::Evaluation))
    }

    /// Simulates an already-compiled artifact.
    pub fn run_mapped(&self, artifact: &CompiledArtifact, kind: RunKind) -> PerfResult {
        self.sim.run_mapped(artifact.mapping(), kind)
    }

    /// [`Session::run_mapped`] reporting live progress: the pipeline's
    /// sync-window completions (and link retries) stream through
    /// `progress` as deterministic, cycle-stamped updates. The result is
    /// identical to the untraced run — progress is a tee over the
    /// instrumentation, never a change to the model.
    pub fn run_mapped_progress(
        &self,
        artifact: &CompiledArtifact,
        kind: RunKind,
        progress: &ProgressSender,
    ) -> PerfResult {
        let mut tracer = Tracer::new(ProgressSink::new(NullSink, progress.clone()));
        let mut reg = MetricsRegistry::new();
        self.sim.run_mapped_traced(
            artifact.mapping(),
            kind,
            &FaultPlan::none(),
            &mut tracer,
            &mut reg,
        )
    }

    /// Simulates an already-compiled artifact under a fault plan:
    /// transient link errors charge retry/back-off latency, reported in
    /// the result's fault statistics. The empty plan is bit-identical to
    /// [`Session::run_mapped`].
    pub fn run_mapped_faulted(
        &self,
        artifact: &CompiledArtifact,
        kind: RunKind,
        plan: &FaultPlan,
    ) -> PerfResult {
        self.sim.run_mapped_faulted(artifact.mapping(), kind, plan)
    }

    /// Runs the whole-node discrete-event model of an already-compiled
    /// artifact on the sharded parallel engine, using the session's shard
    /// count ([`Session::with_shards`]; `0` = available cores). The
    /// outcome is bit-identical to [`Session::node_outcome_sequential`]
    /// at every shard count — the conservative synchronization windows
    /// are derived from the fixed minibatch-sync latency, which is exact,
    /// not merely safe (see DESIGN.md §5h).
    pub fn node_outcome(
        &self,
        artifact: &CompiledArtifact,
        kind: RunKind,
        plan: &FaultPlan,
    ) -> NodeOutcome {
        let model = self.sim.node_model(artifact.mapping(), kind, plan);
        par::run_node_sharded(&model, self.resolved_shards())
    }

    /// The sequential (single event queue) run of the same whole-node
    /// model — the bit-identity oracle the sharded engine is checked
    /// against.
    pub fn node_outcome_sequential(
        &self,
        artifact: &CompiledArtifact,
        kind: RunKind,
        plan: &FaultPlan,
    ) -> NodeOutcome {
        let model = self.sim.node_model(artifact.mapping(), kind, plan);
        par::run_node_sequential(&model)
    }

    /// Compiles and simulates `net` with observability: the performance
    /// pipeline's stage-occupancy spans, sync spans, and retry instants
    /// are recorded per `cfg`, and the returned [`TracedRun`] carries the
    /// trace (exportable to Chrome JSON / per-cycle CSV) alongside the
    /// result — whose every scalar was assembled from the trace's
    /// [`MetricsRegistry`].
    ///
    /// The compile itself is served from the session cache and stays out
    /// of the run's trace (its spans would differ between a cache miss
    /// and a hit, breaking byte-identical exports); use
    /// [`scaledeep_compiler::pipeline::compile_traced`] to observe the
    /// pipeline's phases, and [`Session::cache_stats`] for the
    /// hit/miss/wall-clock ledger.
    ///
    /// # Errors
    ///
    /// Propagates mapping failures.
    pub fn run_traced(&self, net: &Network, kind: RunKind, cfg: &TraceConfig) -> Result<TracedRun> {
        let artifact = self.compile(net)?;
        let mut tracer = Tracer::new(session_sink(cfg));
        let mut reg = MetricsRegistry::new();
        let perf = self.sim.run_mapped_traced(
            artifact.mapping(),
            kind,
            &FaultPlan::none(),
            &mut tracer,
            &mut reg,
        );
        Ok(TracedRun {
            perf,
            trace: into_trace(tracer, reg),
        })
    }

    /// Runs one functional training iteration under a fault plan with
    /// graceful degradation: the iteration state is checkpointed up front;
    /// if a permanent tile failure faults the run, the network is
    /// recompiled around the dead tiles, the checkpoint restored into the
    /// degraded layout, and the iteration retried with the permanent
    /// failures dropped from the plan (they are now mapped around).
    ///
    /// # Errors
    ///
    /// Propagates compile errors, non-tile-failure machine faults
    /// (deadlock, watchdog), and degraded-recompile failures (e.g. every
    /// tile dead).
    pub fn run_resilient(&self, net: &Network, plan: &FaultPlan) -> Result<ResilientRun> {
        let mut tracer = Tracer::disabled();
        let mut reg = MetricsRegistry::new();
        self.run_resilient_impl(net, plan, &mut tracer, &mut reg)
    }

    /// [`Session::run_resilient`] reporting live progress: the first
    /// attempt's checkpoint, instruction retirement (subsampled), faults,
    /// and — on a tile failure — the remap all stream through `progress`.
    /// The degraded retry contributes counters only (its machine clock
    /// restarts at 0), matching the traced variant's event discipline.
    ///
    /// # Errors
    ///
    /// See [`Session::run_resilient`].
    pub fn run_resilient_progress(
        &self,
        net: &Network,
        plan: &FaultPlan,
        progress: &ProgressSender,
    ) -> Result<ResilientRun> {
        let mut tracer = Tracer::new(ProgressSink::new(NullSink, progress.clone()));
        let mut reg = MetricsRegistry::new();
        self.run_resilient_impl(net, plan, &mut tracer, &mut reg)
    }

    /// [`Session::run_resilient`] with observability. The trace is a
    /// flight recording of the *first* attempt — the one the faults hit —
    /// plus run-level instants on the `session` track:
    /// [`Payload::Checkpoint`] when the iteration state is snapshotted and
    /// [`Payload::Remap`] when a tile failure forces the degraded
    /// recompile. The degraded retry contributes its counters to the
    /// trace's metrics (they back the returned stats) but not its events,
    /// so every track's timeline stays monotone.
    ///
    /// # Errors
    ///
    /// See [`Session::run_resilient`].
    pub fn run_resilient_traced(
        &self,
        net: &Network,
        plan: &FaultPlan,
        cfg: &TraceConfig,
    ) -> Result<(ResilientRun, Trace)> {
        let mut tracer = Tracer::new(session_sink(cfg));
        let mut reg = MetricsRegistry::new();
        let run = self.run_resilient_impl(net, plan, &mut tracer, &mut reg)?;
        Ok((run, into_trace(tracer, reg)))
    }

    fn run_resilient_impl<S: TraceSink>(
        &self,
        net: &Network,
        plan: &FaultPlan,
        tracer: &mut Tracer<S>,
        reg: &mut MetricsRegistry,
    ) -> Result<ResilientRun> {
        let artifact = self.compile(net)?;
        let reference = Executor::new(net, 0xC0FFEE)?;
        let mut fsim = FuncSim::from_artifact(net, &artifact)?;
        fsim.set_backend(self.exec_backend);
        fsim.import_params(&reference)?;
        let (image, golden) = iteration_io(net, artifact.functional()?)?;
        let session_track = if tracer.active() {
            tracer.track("session")
        } else {
            0
        };
        let ckpt = fsim.checkpoint();
        tracer.instant(0, session_track, Payload::Checkpoint);
        match fsim.run_iteration_traced(&image, &golden, plan, tracer, reg) {
            Ok(stats) => Ok(ResilientRun {
                stats,
                retried: false,
                dead_tiles: Vec::new(),
            }),
            Err(Error::TileFailed { .. }) => {
                let dead_tiles = plan.condemned_tiles();
                tracer.instant(
                    0,
                    session_track,
                    Payload::Remap {
                        dead_tiles: dead_tiles.len() as u16,
                    },
                );
                let degraded = self.compile_degraded(
                    net,
                    &FailedTiles::from_func_tiles(dead_tiles.iter().copied()),
                )?;
                let mut fsim = FuncSim::from_artifact(net, &degraded)?;
                fsim.set_backend(self.exec_backend);
                fsim.restore(&ckpt)?;
                let retry_plan = plan.without_tile_failures();
                // The retry restarts the machine clock at cycle 0; keep
                // its events out of the trace (the tracks would travel
                // back in time) but let its counters land in `reg`.
                let stats = fsim.run_iteration_traced(
                    &image,
                    &golden,
                    &retry_plan,
                    &mut Tracer::disabled(),
                    reg,
                )?;
                Ok(ResilientRun {
                    stats,
                    retried: true,
                    dead_tiles,
                })
            }
            Err(e) => Err(e),
        }
    }

    /// Runs `net` through both simulators and returns their cycle counts
    /// for one training image: the functional simulator executes the
    /// compiled ISA programs event-driven (bit-accurate, cycle-grounded
    /// by the §3.2 cost table), while the performance model prices the
    /// same layers analytically. Both views come from one
    /// [`CompiledArtifact`] — the network is compiled once. Parameters
    /// are seeded deterministically; the input image is an arbitrary
    /// constant (cycle counts are data-independent).
    ///
    /// # Errors
    ///
    /// Propagates functional-compilation and machine faults, and
    /// [`Error::Setup`] when the network has no loss head.
    pub fn cross_check(&self, net: &Network) -> Result<CycleCrossCheck> {
        let artifact = self.compile(net)?;
        let reference = Executor::new(net, 0xC0FFEE)?;
        let mut fsim = FuncSim::from_artifact(net, &artifact)?;
        fsim.set_backend(ExecBackend::Interpreter);
        fsim.import_params(&reference)?;
        let (image, golden) = iteration_io(net, artifact.functional()?)?;
        // A bounded flight recorder rides along so a divergence can be
        // diagnosed from the run's final events without re-running.
        let mut tracer = Tracer::new(session_sink(&TraceConfig::flight_recorder(
            CROSS_CHECK_TAIL_EVENTS,
        )));
        let mut reg = MetricsRegistry::new();
        let functional =
            fsim.run_iteration_traced(&image, &golden, &FaultPlan::none(), &mut tracer, &mut reg)?;

        // The same iteration on the compiled micro-op tier: same
        // artifact, same deterministic parameter seed, same inputs. Both
        // tiers must agree bit for bit — on the statistics (cycles,
        // stalls, instruction counts) and on every word of result state.
        let mut csim = FuncSim::from_artifact(net, &artifact)?.with_backend(ExecBackend::Compiled);
        csim.import_params(&reference)?;
        let compiled_tier = csim.run_iteration(&image, &golden)?;
        let bits =
            |v: Option<Vec<f32>>| v.map(|v| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>());
        let state_identical = fsim.checkpoint() == csim.checkpoint()
            && net.layers().all(|n| {
                bits(fsim.layer_output(n.id())) == bits(csim.layer_output(n.id()))
                    && bits(fsim.layer_error(n.id())) == bits(csim.layer_error(n.id()))
            });
        let tiers_identical = functional == compiled_tier && state_identical;

        // Per-image service cycles at minibatch 1, so neither batching
        // efficiency nor the pipeline overlap distorts the comparison.
        // The mapping is PerfOptions-independent, so the artifact's
        // mapping is exactly what a minibatch-1 compile would produce.
        let perf = PerfSim::new(&self.node).with_options(PerfOptions {
            minibatch: 1,
            ..PerfOptions::default()
        });
        let result = perf.run_mapped(artifact.mapping(), RunKind::Training);
        let perf_per_image_cycles = result.stages.iter().map(|s| s.service_cycles.max(1)).sum();
        let trace = into_trace(tracer, reg);
        Ok(CycleCrossCheck {
            functional,
            compiled_tier,
            tiers_identical,
            perf_per_image_cycles,
            functional_metrics: trace.metrics,
            trace_tail: trace.events,
            tracks: trace.tracks,
            dropped: trace.dropped,
        })
    }

    /// Compiles `net`, runs it traced, and joins the trace with the
    /// compile's provenance and the analytic per-layer costs into a
    /// versioned [`crate::report::BenchReport`] — the document
    /// `repro --bench-json` serializes and `repro --check` diffs.
    ///
    /// # Errors
    ///
    /// Propagates mapping failures, and [`Error::Setup`] when the run's
    /// metrics do not cover the mapping's stages (a simulator/attribution
    /// version skew).
    pub fn bench_report(&self, net: &Network, kind: RunKind) -> Result<crate::report::BenchReport> {
        let artifact = self.compile(net)?;
        let perf_started = Instant::now();
        let traced = self.run_traced(net, kind, &TraceConfig::default())?;
        let perf_nanos = perf_started.elapsed().as_nanos() as u64;
        let attr = crate::attribution::Attribution::build(&traced, &artifact, net, &self.node)?;
        // The functional drill: one training iteration on the session's
        // selected tier, when the functional target can express the
        // network. Its statistics are cycle-accurate (diffed at 0%
        // tolerance across tiers); its wall-clock is the number the tiers
        // compete on.
        let (functional, functional_nanos) = match artifact.functional() {
            Err(_) => (None, 0),
            Ok(compiled) => {
                let reference = Executor::new(net, 0xC0FFEE)?;
                let mut fsim = FuncSim::from_artifact(net, &artifact)?;
                fsim.set_backend(self.exec_backend);
                fsim.import_params(&reference)?;
                let (image, golden) = iteration_io(net, compiled)?;
                let drill_started = Instant::now();
                let stats = fsim.run_iteration(&image, &golden)?;
                let nanos = drill_started.elapsed().as_nanos() as u64;
                (
                    Some(crate::report::BenchFunctional {
                        cycles: stats.cycles,
                        instructions: stats.instructions,
                        stalls: stats.stalls,
                    }),
                    nanos,
                )
            }
        };
        // The parallel node engine's wall-clock scaling: the same
        // whole-node model run sequentially and at 1/2/4/8 shards, every
        // sharded outcome verified bit-identical to the sequential
        // oracle. The nanoseconds are informational (host-dependent);
        // the identity check is not.
        let model = self
            .sim
            .node_model(artifact.mapping(), kind, &FaultPlan::none());
        const SCALING_REPS: u32 = 3;
        let started = Instant::now();
        let mut oracle = par::run_node_sequential(&model);
        for _ in 1..SCALING_REPS {
            oracle = par::run_node_sequential(&model);
        }
        let sequential_nanos = (started.elapsed().as_nanos() / u128::from(SCALING_REPS)) as u64;
        let mut scaling = Vec::new();
        for shards in [1usize, 2, 4, 8] {
            let started = Instant::now();
            let mut out = par::run_node_sharded(&model, shards);
            for _ in 1..SCALING_REPS {
                out = par::run_node_sharded(&model, shards);
            }
            let nanos = (started.elapsed().as_nanos() / u128::from(SCALING_REPS)) as u64;
            if out != oracle {
                return Err(Error::Setup {
                    detail: format!(
                        "parallel node engine diverged from the sequential oracle at {shards} shards"
                    ),
                });
            }
            scaling.push(crate::report::BenchShard {
                shards: shards as u64,
                nanos,
                speedup: sequential_nanos as f64 / nanos.max(1) as f64,
            });
        }
        let par_scaling = crate::report::BenchPar {
            shards: self.resolved_shards() as u64,
            sequential_nanos,
            scaling,
        };
        let cache = self.cache_stats();
        let wall = crate::report::BenchWall {
            compile_nanos: cache.compile_nanos,
            perf_nanos,
            functional_nanos,
        };
        Ok(crate::report::BenchReport::new(
            &attr,
            &traced.perf,
            &self.node,
            FaultPlan::none().seed(),
            artifact.provenance().cache_key(),
            cache,
            self.exec_backend.name(),
            wall,
            functional,
            par_scaling,
        ))
    }

    /// Training throughput of a single chip cluster (the iso-power unit the
    /// paper compares against one GPU card in Figure 18).
    ///
    /// # Errors
    ///
    /// Propagates mapping failures.
    pub fn cluster_train_images_per_sec(&self, net: &Network) -> Result<f64> {
        let r = self.train(net)?;
        Ok(r.images_per_sec / self.node.clusters as f64)
    }
}

/// Flight-recorder depth for [`Session::cross_check`]'s mismatch tail.
const CROSS_CHECK_TAIL_EVENTS: usize = 256;

/// The constant input image and golden vector session-driven iterations
/// use (cycle counts and fault behaviour are data-independent; functional
/// correctness is checked against the reference executor on the same
/// constants).
fn iteration_io(net: &Network, compiled: &CompiledNetwork) -> Result<(Vec<f32>, Vec<f32>)> {
    let input_len = compiled.buffers[net.input().id().index()]
        .output
        .map(|loc| loc.len as usize)
        .ok_or_else(|| Error::Setup {
            detail: "input layer has no output buffer".into(),
        })?;
    let golden_len = net
        .layers()
        .find(|n| matches!(n.layer(), Layer::Loss))
        .and_then(|n| compiled.buffers[n.id().index()].golden)
        .map(|loc| loc.len as usize)
        .ok_or_else(|| Error::Setup {
            detail: "network has no loss head; a training iteration needs one".into(),
        })?;
    Ok((vec![0.5; input_len], vec![0.0; golden_len]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use scaledeep_dnn::zoo;

    #[test]
    fn session_round_trip() {
        let s = Session::single_precision();
        let a = s.compile(&zoo::alexnet()).unwrap();
        assert!(a.mapping().conv_cols_used() > 0);
        let r = s.train(&zoo::alexnet()).unwrap();
        assert!(r.images_per_sec > 0.0);
    }

    #[test]
    fn sweep_compiles_each_network_exactly_once() {
        // An experiment-style sweep: one network, three run kinds. The
        // first run compiles; every subsequent run hits the cache.
        let s = Session::single_precision();
        let net = zoo::alexnet();
        s.train(&net).unwrap();
        s.evaluate(&net).unwrap();
        s.run_traced(&net, RunKind::Training, &TraceConfig::default())
            .unwrap();
        let stats = s.cache_stats();
        assert_eq!(stats.misses, 1, "one network, one pipeline run");
        assert!(stats.hits >= 2, "repeat runs must hit, got {}", stats.hits);
        let mut reg = MetricsRegistry::new();
        s.record_cache_metrics(&mut reg);
        assert_eq!(reg.counter_value("compile.cache.miss"), Some(1));
        assert!(reg.counter_value("compile.cache.hit").unwrap() >= 2);
    }

    #[test]
    fn clones_share_the_cache() {
        let s = Session::single_precision();
        let clone = s.clone();
        s.compile(&zoo::alexnet()).unwrap();
        clone.compile(&zoo::alexnet()).unwrap();
        let stats = s.cache_stats();
        assert_eq!((stats.misses, stats.hits), (1, 1));
        assert_eq!(s.cache_stats(), clone.cache_stats());
        assert!(stats.compile_nanos > 0);
    }

    #[test]
    fn degraded_compile_is_its_own_cache_entry() {
        let s = Session::single_precision();
        let net = zoo::alexnet();
        let healthy = s.compile(&net).unwrap();
        let degraded = s
            .compile_degraded(&net, &FailedTiles::from_columns([3]))
            .unwrap();
        assert!(degraded.is_degraded());
        assert_ne!(
            healthy.provenance().cache_key(),
            degraded.provenance().cache_key()
        );
        // Repeating both compiles hits the cache each time.
        s.compile(&net).unwrap();
        s.compile_degraded(&net, &FailedTiles::from_columns([3]))
            .unwrap();
        let stats = s.cache_stats();
        assert_eq!((stats.misses, stats.hits), (2, 2));
    }

    #[test]
    fn cluster_rate_is_a_quarter_of_node_rate() {
        let s = Session::single_precision();
        let node = s.train(&zoo::alexnet()).unwrap().images_per_sec;
        let cluster = s.cluster_train_images_per_sec(&zoo::alexnet()).unwrap();
        assert!((node / cluster - 4.0).abs() < 1e-9);
    }

    #[test]
    fn functional_and_perf_cycles_cross_check() {
        use scaledeep_dnn::{Activation, Conv, Fc, FeatureShape, NetworkBuilder};
        let mut b = NetworkBuilder::new("xcheck", FeatureShape::new(1, 8, 8));
        let c = b
            .conv(
                "c",
                Conv {
                    out_features: 4,
                    kernel: 3,
                    stride: 1,
                    pad: 1,
                    groups: 1,
                    bias: false,
                    activation: Activation::Relu,
                },
            )
            .unwrap();
        let f = b
            .fc_from(
                "f",
                c,
                Fc {
                    out_neurons: 10,
                    bias: false,
                    activation: Activation::None,
                },
            )
            .unwrap();
        let net = b.finish_with_loss(f).unwrap();
        // The functional machine models on-chip execution; lift the
        // wheel-spoke bottleneck (an off-chip link the compiled programs
        // never traverse) so both models price the same work.
        let mut node = presets::single_precision();
        node.cluster.spoke_bw = node.cluster.arc_bw;
        let x = Session::with_node(node).cross_check(&net).unwrap();
        println!(
            "functional {} cycles vs perf {} cycles (ratio {:.3})",
            x.functional.cycles,
            x.perf_per_image_cycles,
            x.ratio()
        );
        assert!(x.functional.cycles > 0);
        assert!(
            x.ratio() > 0.5 && x.ratio() < 2.0,
            "functional {} vs perf {} cycles diverge more than 2x",
            x.functional.cycles,
            x.perf_per_image_cycles
        );
    }

    fn tiny_training_net() -> Network {
        use scaledeep_dnn::{Activation, Conv, Fc, FeatureShape, NetworkBuilder};
        let mut b = NetworkBuilder::new("resil", FeatureShape::new(1, 6, 6));
        let c = b
            .conv(
                "c",
                Conv {
                    out_features: 2,
                    kernel: 3,
                    stride: 1,
                    pad: 1,
                    groups: 1,
                    bias: false,
                    activation: Activation::Relu,
                },
            )
            .unwrap();
        let f = b
            .fc_from(
                "f",
                c,
                Fc {
                    out_neurons: 4,
                    bias: false,
                    activation: Activation::None,
                },
            )
            .unwrap();
        b.finish_with_loss(f).unwrap()
    }

    #[test]
    fn clean_plan_runs_without_retry() {
        let s = Session::single_precision();
        let r = s
            .run_resilient(&tiny_training_net(), &FaultPlan::none())
            .unwrap();
        assert!(!r.retried);
        assert!(r.dead_tiles.is_empty());
        assert!(r.stats.cycles > 0);
    }

    #[test]
    fn tile_failure_triggers_degraded_retry() {
        use scaledeep_sim::fault::FaultKind;
        let s = Session::single_precision();
        let net = tiny_training_net();
        let clean = s.run_resilient(&net, &FaultPlan::none()).unwrap();
        let plan = FaultPlan::seeded(7).with_fault(1, FaultKind::TileFailure { tile: 0 });
        let r = s.run_resilient(&net, &plan).unwrap();
        assert!(r.retried, "tile failure must force the degraded retry");
        assert_eq!(r.dead_tiles, vec![0]);
        // The retried iteration runs the same programs on the degraded
        // layout — same instruction count, possibly different cycles.
        assert_eq!(r.stats.instructions, clean.stats.instructions);
    }

    #[test]
    fn node_outcome_is_shard_count_invariant() {
        use scaledeep_sim::fault::LinkFaults;
        let net = zoo::alexnet();
        let base = Session::single_precision();
        let artifact = base.compile(&net).unwrap();
        let plans = [
            FaultPlan::none(),
            FaultPlan::seeded(11).with_link_faults(LinkFaults {
                prob: 0.25,
                base_backoff: 16,
                max_retries: 4,
            }),
        ];
        for plan in &plans {
            for kind in [RunKind::Training, RunKind::Evaluation] {
                let oracle = base.node_outcome_sequential(&artifact, kind, plan);
                assert!(oracle.makespan > 0 && oracle.images_done > 0);
                for shards in [0, 1, 2, 4] {
                    let s = base.clone().with_shards(shards);
                    assert_eq!(s.shards(), shards);
                    assert!(s.resolved_shards() >= 1);
                    let got = s.node_outcome(&artifact, kind, plan);
                    assert_eq!(
                        got, oracle,
                        "sharded node outcome diverged at {shards} shards ({kind:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn bench_report_records_shard_scaling() {
        let report = Session::single_precision()
            .bench_report(&zoo::alexnet(), RunKind::Training)
            .unwrap();
        assert!(report.par.shards >= 1);
        assert_eq!(
            report
                .par
                .scaling
                .iter()
                .map(|s| s.shards)
                .collect::<Vec<_>>(),
            vec![1, 2, 4, 8]
        );
        assert!(report.par.scaling.iter().all(|s| s.speedup > 0.0));
    }

    #[test]
    fn half_precision_session_uses_hp_node() {
        let s = Session::half_precision();
        assert_eq!(s.node().precision, scaledeep_arch::Precision::Half);
    }

    #[test]
    fn traced_run_matches_untraced_result_and_exports() {
        use scaledeep_sim::perf::RunKind;
        let s = Session::single_precision();
        let net = zoo::alexnet();
        let traced = s
            .run_traced(&net, RunKind::Training, &TraceConfig::default())
            .unwrap();
        let plain = s.train(&net).unwrap();
        assert_eq!(traced.perf, plain, "tracing must not perturb the result");
        assert!(!traced.trace.events.is_empty());
        assert_eq!(traced.trace.dropped, 0);
        let summary = scaledeep_trace::validate_chrome_trace(&traced.trace.chrome_trace()).unwrap();
        assert!(summary.spans > 0);
        // The registry backs the result: spot-check one scalar.
        assert_eq!(
            traced.trace.metrics.gauge_value("perf.images_per_sec"),
            Some(plain.images_per_sec)
        );
    }

    #[test]
    fn resilient_trace_records_checkpoint_and_remap() {
        use scaledeep_sim::fault::FaultKind;
        use scaledeep_trace::Payload;
        let s = Session::single_precision();
        let net = tiny_training_net();
        let plan = FaultPlan::seeded(7).with_fault(1, FaultKind::TileFailure { tile: 0 });
        let (run, trace) = s
            .run_resilient_traced(&net, &plan, &TraceConfig::default())
            .unwrap();
        assert!(run.retried);
        let has = |want: fn(&Payload) -> bool| trace.events.iter().any(|e| want(&e.payload));
        assert!(has(|p| matches!(p, Payload::Checkpoint)));
        assert!(has(|p| matches!(p, Payload::Remap { dead_tiles: 1 })));
        assert!(has(|p| matches!(p, Payload::Fault { .. })));
        // Even with the retry's events excluded, the export stays valid.
        scaledeep_trace::validate_chrome_trace(&trace.chrome_trace()).unwrap();
        // The metrics back the returned stats (successful attempt only).
        assert_eq!(
            trace.metrics.counter_value("func.instructions"),
            Some(run.stats.instructions)
        );
    }

    #[test]
    fn progress_run_matches_untraced_result_and_streams_deterministically() {
        use scaledeep_sim::perf::RunKind;
        use scaledeep_trace::progress_channel;
        let s = Session::single_precision();
        let net = zoo::alexnet();
        let artifact = s.compile(&net).unwrap();
        let (tx, rx) = progress_channel(4096);
        let with = s.run_mapped_progress(&artifact, RunKind::Training, &tx);
        let plain = s.run_mapped(&artifact, RunKind::Training);
        assert_eq!(with, plain, "progress must not perturb the result");
        let updates = rx.drain();
        assert!(!updates.is_empty());
        assert_eq!(rx.dropped(), 0);
        assert!(
            updates.windows(2).all(|w| w[0].seq < w[1].seq),
            "sequence numbers must be strictly monotonic"
        );
        assert!(updates.iter().any(|u| u.kind.name() == "sync"));
        // Same artifact, same kind, fresh channel: byte-identical stream.
        let (tx2, rx2) = progress_channel(4096);
        s.run_mapped_progress(&artifact, RunKind::Training, &tx2);
        assert_eq!(updates, rx2.drain(), "progress must be seed-stable");
    }

    #[test]
    fn progress_compile_reports_phases_only_on_miss() {
        use scaledeep_trace::progress_channel;
        let s = Session::single_precision();
        let net = zoo::alexnet();
        let (tx, rx) = progress_channel(64);
        s.compile_with_progress(&net, &CompileOptions::default(), &tx)
            .unwrap();
        let phases: Vec<&str> = rx.drain().iter().filter_map(|u| u.kind.label()).collect();
        assert_eq!(phases, pipeline::PHASES);
        // A repeat compile is a cache hit: no phases run, none reported.
        s.compile_with_progress(&net, &CompileOptions::default(), &tx)
            .unwrap();
        assert!(rx.is_empty());
    }

    #[test]
    fn resilient_progress_reports_remap_and_matches_plain() {
        use scaledeep_sim::fault::FaultKind;
        use scaledeep_trace::progress_channel;
        let s = Session::single_precision();
        let net = tiny_training_net();
        let plan = FaultPlan::seeded(7).with_fault(1, FaultKind::TileFailure { tile: 0 });
        let (tx, rx) = progress_channel(1 << 16);
        let run = s.run_resilient_progress(&net, &plan, &tx).unwrap();
        assert!(run.retried);
        let updates = rx.drain();
        let saw = |name: &str| updates.iter().any(|u| u.kind.name() == name);
        assert!(saw("checkpoint"));
        assert!(saw("remap"));
        assert!(saw("fault"));
        assert!(saw("cycles"));
        let plain = s.run_resilient(&net, &plan).unwrap();
        assert_eq!(run.stats, plain.stats);
    }

    #[test]
    fn artifact_dir_serves_repeat_sessions_without_pipeline_phases() {
        let dir =
            std::env::temp_dir().join(format!("scaledeep-artifact-cache-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let net = zoo::alexnet_func();

        // First session: pipeline runs once, artifact lands on disk.
        let first = Session::single_precision().with_artifact_dir(&dir);
        let a = first.compile(&net).unwrap();
        let s = first.cache_stats();
        assert_eq!((s.misses, s.disk_hits), (1, 0));

        // Second session (fresh in-memory cache, same store): the
        // artifact loads from disk — zero pipeline phases run.
        let second = Session::single_precision().with_artifact_dir(&dir);
        let b = second.compile(&net).unwrap();
        let s = second.cache_stats();
        assert_eq!(
            (s.misses, s.disk_hits, s.hits),
            (0, 1, 0),
            "a repeat session must not touch the pipeline"
        );
        assert_eq!(s.compile_nanos, 0, "no wall-clock spent compiling");
        assert_eq!(a.mapping(), b.mapping());
        assert_eq!(a.provenance(), b.provenance());
        assert_eq!(a.lowered(), b.lowered());

        // Third compile in the second session hits memory, not disk.
        second.compile(&net).unwrap();
        assert_eq!(second.cache_stats().hits, 1);

        let mut reg = MetricsRegistry::new();
        second.record_cache_metrics(&mut reg);
        assert_eq!(reg.counter_value("compile.cache.disk_hit"), Some(1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn preset_design_keys_are_stable_across_sessions() {
        // The structural provenance keys of the two presets must re-derive
        // to the same values in a fresh session: a repeat session over the
        // same artifact store takes disk hits for both, proving the
        // design-layer refactor causes no spurious cache invalidation.
        let dir = std::env::temp_dir().join(format!(
            "scaledeep-design-key-stability-{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let net = zoo::alexnet_func();

        // One shared cache serves both design points via retarget().
        let sp = Session::single_precision().with_artifact_dir(&dir);
        sp.compile(&net).unwrap();
        let hp = sp.retarget(presets::half_precision());
        assert_eq!(hp.node().precision, scaledeep_arch::Precision::Half);
        hp.compile(&net).unwrap();
        // Stats cells are shared, so the ledger shows both compiles: the
        // two points keyed distinct entries (2 misses, no false sharing).
        let s = hp.cache_stats();
        assert_eq!((s.misses, s.hits, s.disk_hits), (2, 0, 0));

        // Fresh process-equivalent sessions: both keys must find their
        // stored artifacts — zero pipeline phases run.
        let sp2 = Session::single_precision().with_artifact_dir(&dir);
        sp2.compile(&net).unwrap();
        let hp2 = sp2.retarget(presets::half_precision());
        hp2.compile(&net).unwrap();
        let s = hp2.cache_stats();
        assert_eq!(
            (s.misses, s.disk_hits, s.corrupt),
            (0, 2, 0),
            "preset design keys drifted between sessions"
        );

        // Repeat compiles on the retargeted pair stay in memory.
        sp2.compile(&net).unwrap();
        hp2.compile(&net).unwrap();
        assert_eq!(hp2.cache_stats().hits, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn session_is_send_and_sync() {
        // The job server shares one Session across a worker pool; any
        // hidden Rc/RefCell/raw-pointer state would surface here at
        // compile time.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Session>();
        assert_send_sync::<CacheStats>();
        assert_send_sync::<Arc<CompiledArtifact>>();
        assert_send_sync::<scaledeep_sim::perf::PerfSim>();
        assert_send_sync::<FaultPlan>();
    }

    #[test]
    fn corrupt_disk_artifact_is_quarantined_and_recompiled() {
        let dir =
            std::env::temp_dir().join(format!("scaledeep-corrupt-cache-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let net = zoo::alexnet_func();

        // Seed the store with a valid artifact, then tear it.
        let first = Session::single_precision().with_artifact_dir(&dir);
        first.compile(&net).unwrap();
        let stored: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "json"))
            .collect();
        assert_eq!(stored.len(), 1);
        let text = std::fs::read_to_string(&stored[0]).unwrap();
        std::fs::write(&stored[0], &text[..text.len() / 3]).unwrap();

        // A fresh session must treat the torn file as a miss: quarantine
        // it, count it, recompile, and republish a loadable artifact.
        let second = Session::single_precision().with_artifact_dir(&dir);
        second.compile(&net).unwrap();
        let s = second.cache_stats();
        assert_eq!(
            (s.misses, s.disk_hits, s.corrupt),
            (1, 0, 1),
            "a torn artifact must recompile as a miss, got {s:?}"
        );
        let quarantined: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "corrupt"))
            .collect();
        assert_eq!(quarantined.len(), 1, "torn file must be quarantined");

        // The republished artifact serves the next session from disk.
        let third = Session::single_precision().with_artifact_dir(&dir);
        third.compile(&net).unwrap();
        let s = third.cache_stats();
        assert_eq!((s.misses, s.disk_hits, s.corrupt), (0, 1, 0));

        let mut reg = MetricsRegistry::new();
        second.record_cache_metrics(&mut reg);
        assert_eq!(reg.counter_value("compile.cache.corrupt"), Some(1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cross_check_tiers_are_bit_identical() {
        let mut node = presets::single_precision();
        node.cluster.spoke_bw = node.cluster.arc_bw;
        let x = Session::with_node(node)
            .cross_check(&zoo::alexnet_func())
            .unwrap();
        assert_eq!(
            x.functional, x.compiled_tier,
            "same-seed runs must report identical RunStats across tiers"
        );
        assert!(x.tiers_identical, "tier state diverged");
        assert!(x.functional.cycles > 0);
    }

    #[test]
    fn compiled_backend_session_runs_resilient_paths() {
        use scaledeep_sim::fault::FaultKind;
        let interp = Session::single_precision();
        let comp = Session::single_precision().with_exec_backend(ExecBackend::Compiled);
        assert_eq!(comp.exec_backend(), ExecBackend::Compiled);
        let net = tiny_training_net();
        let a = interp.run_resilient(&net, &FaultPlan::none()).unwrap();
        let b = comp.run_resilient(&net, &FaultPlan::none()).unwrap();
        assert_eq!(a.stats, b.stats, "clean runs must agree across tiers");
        // The degraded-retry path also honours the tier selection.
        let plan = FaultPlan::seeded(7).with_fault(1, FaultKind::TileFailure { tile: 0 });
        let ra = interp.run_resilient(&net, &plan).unwrap();
        let rb = comp.run_resilient(&net, &plan).unwrap();
        assert!(ra.retried && rb.retried);
        assert_eq!(ra.stats, rb.stats);
    }

    #[test]
    fn cross_check_carries_a_trace_tail_and_reports_only_on_mismatch() {
        let mut node = presets::single_precision();
        node.cluster.spoke_bw = node.cluster.arc_bw;
        let x = Session::with_node(node)
            .cross_check(&tiny_training_net())
            .unwrap();
        assert!(!x.trace_tail.is_empty());
        assert!(x.functional_metrics.counter_value("func.cycles").is_some());
        if x.agrees() {
            assert!(x.mismatch_report().is_none());
        } else {
            let report = x.mismatch_report().unwrap();
            assert!(report.contains("cycle cross-check mismatch"));
            assert!(report.contains("func.instructions"));
        }
    }
}
