//! The ScaleDeep instruction set (paper §3.2.2, Figure 8).
//!
//! Each CompHeavy tile runs a single thread whose program is stored in its
//! instruction memory. The ISA has 28 instructions in 5 groups:
//!
//! 1. **Scalar control** — register loads, ALU ops and branches executed on
//!    the tile's in-order scalar PE (loop tests, pointer arithmetic).
//! 2. **Coarse-grained data** — `NDCONV` / `MATMUL`, executed on the 2D PE
//!    array.
//! 3. **MemHeavy offload** — high Bytes/FLOP operations (activation
//!    functions, sampling, accumulation, the FC weight-gradient
//!    scale-accumulate) dispatched to a connected MemHeavy tile's SFUs.
//! 4. **MemHeavy data transfer** — DMA between MemHeavy tiles and external
//!    memory, prefetches, and neighbor FIFO passes.
//! 5. **Data-flow tracking** — `MEMTRACK` arming of hardware access-sequence
//!    trackers, ScaleDeep's synchronization primitive (§3.2.4).
//!
//! Since ScaleDeep targets static data flow, data instructions carry their
//! geometry as immediates resolved by the compiler's workload-mapping phase;
//! addresses may still be register-indirect ([`Addr::Reg`]) for loop-carried
//! address arithmetic.
//!
//! # Example
//!
//! ```
//! use scaledeep_isa::{Inst, Program, Reg};
//!
//! let prog = Program::new(
//!     "demo",
//!     vec![
//!         Inst::Ldri { rd: Reg::R0, value: 3 },
//!         Inst::Subri { rd: Reg::R0, rs: Reg::R0, imm: 1 },
//!         Inst::Bnez { rs: Reg::R0, offset: -1 },
//!         Inst::Halt,
//!     ],
//! );
//! let bytes = prog.encode();
//! let back = Program::decode("demo", &bytes)?;
//! assert_eq!(prog, back);
//! # Ok::<(), scaledeep_isa::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod disasm;
mod encode;
mod error;
mod inst;
pub mod micro;
mod program;
mod reg;

pub use builder::ProgramBuilder;
pub use error::{Error, Result};
pub use inst::{ActKind, Addr, DmaDir, Inst, InstGroup, MemRef, PoolMode, TileRef, EXT_MEM_TILE};
pub use micro::{samp_out, Loc, LoweredProgram, MicroOp};
pub use program::Program;
pub use reg::{Reg, NUM_REGS};
