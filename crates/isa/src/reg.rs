//! Scalar register file.

use std::fmt;

/// Number of scalar registers per CompHeavy tile.
pub const NUM_REGS: usize = 64;

/// A scalar register of the CompHeavy tile's in-order scalar PE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(u8);

impl Reg {
    /// Register 0 (conventionally a scratch/counter register; the ISA has
    /// no hardwired zero register).
    pub const R0: Reg = Reg(0);
    /// Register 1.
    pub const R1: Reg = Reg(1);
    /// Register 2.
    pub const R2: Reg = Reg(2);
    /// Register 3.
    pub const R3: Reg = Reg(3);

    /// Creates a register reference.
    ///
    /// # Panics
    ///
    /// Panics when `index >= NUM_REGS`.
    pub fn new(index: u8) -> Self {
        assert!(
            (index as usize) < NUM_REGS,
            "register r{index} out of range (0..{NUM_REGS})"
        );
        Reg(index)
    }

    /// Fallible constructor.
    pub fn try_new(index: u8) -> Option<Self> {
        ((index as usize) < NUM_REGS).then_some(Reg(index))
    }

    /// The register index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw encoding byte.
    pub const fn raw(self) -> u8 {
        self.0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_accepts_full_file() {
        for i in 0..NUM_REGS as u8 {
            assert_eq!(Reg::new(i).index(), i as usize);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_overflow() {
        let _ = Reg::new(64);
    }

    #[test]
    fn try_new_is_fallible() {
        assert!(Reg::try_new(63).is_some());
        assert!(Reg::try_new(64).is_none());
    }

    #[test]
    fn display_uses_r_prefix() {
        assert_eq!(Reg::new(17).to_string(), "r17");
    }
}
