//! Instruction definitions: 28 instructions in 5 groups.

use crate::reg::Reg;
use std::fmt;

/// A MemHeavy tile (or external memory) referenced by a data instruction.
///
/// The compiler's workload-mapping phase resolves the paper's abstract port
/// numbers to concrete tile indices within the chip; [`EXT_MEM_TILE`]
/// designates the external memory channel attached to the tile's column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileRef(pub u16);

/// The distinguished [`TileRef`] naming external memory.
pub const EXT_MEM_TILE: TileRef = TileRef(u16::MAX);

impl TileRef {
    /// True when this reference names external memory rather than a
    /// MemHeavy tile.
    pub const fn is_ext_mem(self) -> bool {
        self.0 == u16::MAX
    }
}

impl fmt::Display for TileRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_ext_mem() {
            f.write_str("EXT")
        } else {
            write!(f, "M{}", self.0)
        }
    }
}

/// An address within a tile's scratchpad: an immediate (the common case —
/// ScaleDeep data flow is static) or a scalar register holding a byte
/// offset (loop-carried address arithmetic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Addr {
    /// Immediate byte address.
    Imm(u32),
    /// Register-indirect byte address.
    Reg(Reg),
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Addr::Imm(a) => write!(f, "{a:#x}"),
            Addr::Reg(r) => write!(f, "[{r}]"),
        }
    }
}

/// A memory operand: a tile plus an address within it. Elements are f32
/// words; addresses are in elements (not bytes) for clarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// The tile holding the data.
    pub tile: TileRef,
    /// Element offset within the tile's scratchpad.
    pub addr: Addr,
}

impl MemRef {
    /// Immediate-addressed reference.
    pub const fn at(tile: TileRef, elem_offset: u32) -> Self {
        Self {
            tile,
            addr: Addr::Imm(elem_offset),
        }
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.tile, self.addr)
    }
}

/// Activation kind carried by `NDACTFN` (the MemHeavy SFUs implement ReLU,
/// tanh and sigmoid — paper §3.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActKind {
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

/// Sampling mode carried by `NDSUBSAMP` / `NDUPSAMP`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoolMode {
    /// Max pooling (ceil windows when `ceil` is set in the instruction).
    Max,
    /// Average pooling.
    Avg,
}

/// Direction of a DMA transfer relative to the issuing tile's MemHeavy
/// neighborhood.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DmaDir {
    /// Load into the destination tile.
    Load,
    /// Store out of the source tile.
    Store,
}

/// The five instruction groups of Figure 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum InstGroup {
    /// Scalar control instructions (scalar PE).
    ScalarControl,
    /// Coarse-grained data instructions (2D PE array).
    CoarseData,
    /// MemHeavy tile offload instructions (SFUs).
    MemOffload,
    /// MemHeavy tile data-transfer instructions (DMA).
    DataTransfer,
    /// Data-flow track instructions (synchronization).
    DataFlowTrack,
}

impl fmt::Display for InstGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            InstGroup::ScalarControl => "scalar-control",
            InstGroup::CoarseData => "coarse-data",
            InstGroup::MemOffload => "mem-offload",
            InstGroup::DataTransfer => "data-transfer",
            InstGroup::DataFlowTrack => "data-flow-track",
        })
    }
}

/// One ScaleDeep instruction.
///
/// Branch offsets are relative to the *next* instruction (offset `-1`
/// re-executes the branch itself's predecessor... more precisely: a branch
/// at index `i` with offset `k` transfers control to `i + 1 + k`).
#[derive(Debug, Clone, Copy, PartialEq)]
#[allow(missing_docs)] // operand fields are documented by the variant docs
pub enum Inst {
    // ---- Group 1: scalar control (14) ----
    /// Load an immediate into a scalar register.
    Ldri { rd: Reg, value: i64 },
    /// Copy a scalar register.
    Mov { rd: Reg, rs: Reg },
    /// `rd = rs1 + rs2`.
    Addr { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs + imm`.
    Addri { rd: Reg, rs: Reg, imm: i64 },
    /// `rd = rs1 - rs2`.
    Subr { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs - imm`.
    Subri { rd: Reg, rs: Reg, imm: i64 },
    /// `rd = rs1 * rs2`.
    Mulr { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = !rs` (bitwise inversion, used for flag toggling).
    Inv { rd: Reg, rs: Reg },
    /// Branch if `rs != 0`.
    Bnez { rs: Reg, offset: i32 },
    /// Branch if `rs == 0`.
    Beqz { rs: Reg, offset: i32 },
    /// Branch if `rs > 0`.
    Bgtz { rs: Reg, offset: i32 },
    /// Unconditional branch.
    Branch { offset: i32 },
    /// Stop the tile's thread.
    Halt,
    /// No operation.
    Nop,

    // ---- Group 2: coarse-grained data (2) ----
    /// Batch 2D convolution on the PE array: convolves one input feature
    /// (`in_h × in_w` at `input`) with `lanes` kernels of size `k × k`
    /// (contiguous at `kernel`), producing `lanes` partial output features
    /// (`out_h × out_w` each, contiguous at `output`). When `accumulate`
    /// is set the partial outputs are added into the destination
    /// (the ISA's `isACCUM`); when `flip` is set the kernel streaming
    /// memories are read in reverse, realizing the transposed convolution
    /// of the BP step.
    NdConv {
        input: MemRef,
        in_h: u16,
        in_w: u16,
        kernel: MemRef,
        k: u8,
        stride: u8,
        pad: u8,
        lanes: u8,
        output: MemRef,
        out_h: u16,
        out_w: u16,
        accumulate: bool,
        flip: bool,
    },
    /// Matrix–vector multiplication on the PE array: `rows` dot products of
    /// length `n_in` between the matrix rows at `matrix` and the vector at
    /// `input`, written (or accumulated) to `output`.
    MatMul {
        input: MemRef,
        n_in: u32,
        matrix: MemRef,
        rows: u32,
        output: MemRef,
        accumulate: bool,
    },

    // ---- Group 3: MemHeavy offload (6) ----
    /// Apply an activation function to `len` elements (SFU).
    NdActFn {
        kind: ActKind,
        src: MemRef,
        len: u32,
        dst: MemRef,
    },
    /// Multiply `len` error elements by the activation derivative evaluated
    /// at the stored pre-activation values (BP step).
    NdActBwd {
        kind: ActKind,
        pre: MemRef,
        err: MemRef,
        len: u32,
        dst: MemRef,
    },
    /// Down-sample one `in_h × in_w` feature with a `window × window`
    /// window at `stride` (FP step of a SAMP layer).
    NdSubsamp {
        mode: PoolMode,
        src: MemRef,
        in_h: u16,
        in_w: u16,
        window: u8,
        stride: u8,
        pad: u8,
        ceil: bool,
        dst: MemRef,
    },
    /// Up-sample one feature's errors (BP step of a SAMP layer): routes
    /// errors to the window argmax (max mode, recomputed from the stored
    /// forward input at `fwd`) or spreads them evenly (avg mode).
    NdUpsamp {
        mode: PoolMode,
        err: MemRef,
        fwd: MemRef,
        in_h: u16,
        in_w: u16,
        window: u8,
        stride: u8,
        pad: u8,
        ceil: bool,
        dst: MemRef,
    },
    /// `dst[i] += src[i]` for `len` elements (feature accumulation).
    NdAcc { dst: MemRef, src: MemRef, len: u32 },
    /// The SFU vector element-wise multiply-accumulate (the paper's
    /// Figure 5 kernel): `dst[i] += scale[i] * src[i]` for `len` elements.
    /// With `elementwise` clear, `scale` is a single broadcast element —
    /// the FC weight-gradient form (one output-error times the input
    /// vector, accumulated into one gradient row); with it set, `scale`
    /// is a full `len`-element vector — the Hadamard products of LSTM
    /// gating.
    VecScaleAcc {
        src: MemRef,
        len: u32,
        scalar: MemRef,
        dst: MemRef,
        elementwise: bool,
    },

    // ---- Group 4: MemHeavy data transfer (4) ----
    /// DMA `len` elements from `src` to `dst` (MemHeavy ↔ MemHeavy or
    /// external memory). `accumulate` adds into the destination — the
    /// commutative-accumulation transfer used for gradient aggregation.
    DmaLoad {
        src: MemRef,
        dst: MemRef,
        len: u32,
        accumulate: bool,
    },
    /// DMA `len` elements out of this column's MemHeavy tile to `dst`.
    DmaStore {
        src: MemRef,
        dst: MemRef,
        len: u32,
        accumulate: bool,
    },
    /// Prefetch `len` elements from external memory into a MemHeavy tile
    /// (issued at the start of the previous output-feature-batch iteration
    /// to hide latency — paper §3.2.3).
    Prefetch { src: MemRef, dst: MemRef, len: u32 },
    /// Pass `len` elements through the neighbor FIFO interface (the
    /// `PASSBUFF` of the paper's sample listing).
    PassBuff { src: MemRef, dst: MemRef, len: u32 },

    // ---- Group 5: data-flow track (2) ----
    /// Arm a hardware data-flow tracker on `[addr, addr+len)` of a tile:
    /// the range must receive `num_updates` writes before it may be read,
    /// and `num_reads` reads before it may be overwritten (paper Eq. 1).
    MemTrack {
        tile: TileRef,
        addr: u32,
        len: u32,
        num_updates: u16,
        num_reads: u16,
    },
    /// Arm a tracker on a *remote* tile via DMA (the listing's
    /// `DMA_MEMTRACK`), used when the tracked range lives across the chip.
    DmaMemTrack {
        tile: TileRef,
        addr: u32,
        len: u32,
        num_updates: u16,
        num_reads: u16,
    },
}

impl Inst {
    /// The instruction's group (Figure 8's left column).
    pub const fn group(&self) -> InstGroup {
        match self {
            Inst::Ldri { .. }
            | Inst::Mov { .. }
            | Inst::Addr { .. }
            | Inst::Addri { .. }
            | Inst::Subr { .. }
            | Inst::Subri { .. }
            | Inst::Mulr { .. }
            | Inst::Inv { .. }
            | Inst::Bnez { .. }
            | Inst::Beqz { .. }
            | Inst::Bgtz { .. }
            | Inst::Branch { .. }
            | Inst::Halt
            | Inst::Nop => InstGroup::ScalarControl,
            Inst::NdConv { .. } | Inst::MatMul { .. } => InstGroup::CoarseData,
            Inst::NdActFn { .. }
            | Inst::NdActBwd { .. }
            | Inst::NdSubsamp { .. }
            | Inst::NdUpsamp { .. }
            | Inst::NdAcc { .. }
            | Inst::VecScaleAcc { .. } => InstGroup::MemOffload,
            Inst::DmaLoad { .. }
            | Inst::DmaStore { .. }
            | Inst::Prefetch { .. }
            | Inst::PassBuff { .. } => InstGroup::DataTransfer,
            Inst::MemTrack { .. } | Inst::DmaMemTrack { .. } => InstGroup::DataFlowTrack,
        }
    }

    /// True for instructions that may redirect control flow.
    pub const fn is_branch(&self) -> bool {
        matches!(
            self,
            Inst::Bnez { .. } | Inst::Beqz { .. } | Inst::Bgtz { .. } | Inst::Branch { .. }
        )
    }

    /// The number of distinct instructions in the ISA.
    pub const COUNT: usize = 28;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_are_assigned() {
        assert_eq!(Inst::Halt.group(), InstGroup::ScalarControl);
        assert_eq!(
            Inst::NdAcc {
                dst: MemRef::at(TileRef(0), 0),
                src: MemRef::at(TileRef(1), 0),
                len: 4
            }
            .group(),
            InstGroup::MemOffload
        );
        assert_eq!(
            Inst::MemTrack {
                tile: TileRef(0),
                addr: 0,
                len: 4,
                num_updates: 1,
                num_reads: 1
            }
            .group(),
            InstGroup::DataFlowTrack
        );
    }

    #[test]
    fn branches_are_detected() {
        assert!(Inst::Branch { offset: 0 }.is_branch());
        assert!(Inst::Bnez {
            rs: Reg::R0,
            offset: -2
        }
        .is_branch());
        assert!(!Inst::Halt.is_branch());
    }

    #[test]
    fn ext_mem_tile_is_distinguished() {
        assert!(EXT_MEM_TILE.is_ext_mem());
        assert!(!TileRef(0).is_ext_mem());
        assert_eq!(EXT_MEM_TILE.to_string(), "EXT");
    }
}
