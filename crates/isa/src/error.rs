//! Error type for program encoding/decoding and building.

use std::fmt;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors from decoding or assembling programs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// The byte stream ended in the middle of an instruction.
    TruncatedStream {
        /// Byte offset at which decoding stopped.
        offset: usize,
    },
    /// An unknown opcode was encountered.
    BadOpcode {
        /// The offending opcode byte.
        opcode: u8,
        /// Byte offset of the opcode.
        offset: usize,
    },
    /// An operand field held an invalid value (bad register index,
    /// bad enum tag).
    BadOperand {
        /// Description of the bad field.
        what: &'static str,
        /// Byte offset of the instruction.
        offset: usize,
    },
    /// A label was referenced but never defined (program builder).
    UndefinedLabel {
        /// The label name.
        label: String,
    },
    /// A label was defined twice (program builder).
    DuplicateLabel {
        /// The label name.
        label: String,
    },
    /// A branch target is out of the i32 offset range.
    OffsetOverflow {
        /// The label whose distance overflowed.
        label: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::TruncatedStream { offset } => {
                write!(f, "instruction stream truncated at byte {offset}")
            }
            Error::BadOpcode { opcode, offset } => {
                write!(f, "unknown opcode {opcode:#x} at byte {offset}")
            }
            Error::BadOperand { what, offset } => {
                write!(f, "invalid {what} operand at byte {offset}")
            }
            Error::UndefinedLabel { label } => write!(f, "undefined label `{label}`"),
            Error::DuplicateLabel { label } => write!(f, "duplicate label `{label}`"),
            Error::OffsetOverflow { label } => {
                write!(f, "branch to `{label}` exceeds offset range")
            }
        }
    }
}

impl std::error::Error for Error {}
