//! Label-resolving program builder: the back half of the compiler's code
//! generator targets this instead of raw branch offsets.

use crate::error::{Error, Result};
use crate::inst::Inst;
use crate::program::Program;
use crate::reg::Reg;
use std::collections::HashMap;

/// Pending branch fix-up: instruction index + label + kind.
#[derive(Debug, Clone)]
enum Fixup {
    Bnez { at: usize, rs: Reg, label: String },
    Beqz { at: usize, rs: Reg, label: String },
    Bgtz { at: usize, rs: Reg, label: String },
    Branch { at: usize, label: String },
}

/// Builds a [`Program`] with symbolic labels for branch targets.
///
/// ```
/// use scaledeep_isa::{ProgramBuilder, Reg};
///
/// # fn main() -> Result<(), scaledeep_isa::Error> {
/// let mut b = ProgramBuilder::new("loop-demo");
/// b.ldri(Reg::R0, 3);
/// b.label("loop")?;
/// b.subri(Reg::R0, Reg::R0, 1);
/// b.bnez(Reg::R0, "loop");
/// b.halt();
/// let prog = b.finish()?;
/// assert_eq!(prog.len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    insts: Vec<Inst>,
    labels: HashMap<String, usize>,
    fixups: Vec<Fixup>,
}

impl ProgramBuilder {
    /// Starts an empty program.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            insts: Vec::new(),
            labels: HashMap::new(),
            fixups: Vec::new(),
        }
    }

    /// Current instruction count (the address of the next emitted
    /// instruction).
    pub fn here(&self) -> usize {
        self.insts.len()
    }

    /// Emits an arbitrary instruction.
    pub fn emit(&mut self, inst: Inst) -> &mut Self {
        self.insts.push(inst);
        self
    }

    /// Defines a label at the current position.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DuplicateLabel`] when the label already exists.
    pub fn label(&mut self, name: impl Into<String>) -> Result<&mut Self> {
        let name = name.into();
        if self.labels.insert(name.clone(), self.insts.len()).is_some() {
            return Err(Error::DuplicateLabel { label: name });
        }
        Ok(self)
    }

    /// Emits `LDRI rd, value`.
    pub fn ldri(&mut self, rd: Reg, value: i64) -> &mut Self {
        self.emit(Inst::Ldri { rd, value })
    }

    /// Emits `ADDRI rd, rs, imm`.
    pub fn addri(&mut self, rd: Reg, rs: Reg, imm: i64) -> &mut Self {
        self.emit(Inst::Addri { rd, rs, imm })
    }

    /// Emits `SUBRI rd, rs, imm`.
    pub fn subri(&mut self, rd: Reg, rs: Reg, imm: i64) -> &mut Self {
        self.emit(Inst::Subri { rd, rs, imm })
    }

    /// Emits a branch-if-not-zero to `label` (resolved at
    /// [`finish`](Self::finish)).
    pub fn bnez(&mut self, rs: Reg, label: impl Into<String>) -> &mut Self {
        self.fixups.push(Fixup::Bnez {
            at: self.insts.len(),
            rs,
            label: label.into(),
        });
        self.emit(Inst::Bnez { rs, offset: 0 })
    }

    /// Emits a branch-if-zero to `label`.
    pub fn beqz(&mut self, rs: Reg, label: impl Into<String>) -> &mut Self {
        self.fixups.push(Fixup::Beqz {
            at: self.insts.len(),
            rs,
            label: label.into(),
        });
        self.emit(Inst::Beqz { rs, offset: 0 })
    }

    /// Emits a branch-if-positive to `label`.
    pub fn bgtz(&mut self, rs: Reg, label: impl Into<String>) -> &mut Self {
        self.fixups.push(Fixup::Bgtz {
            at: self.insts.len(),
            rs,
            label: label.into(),
        });
        self.emit(Inst::Bgtz { rs, offset: 0 })
    }

    /// Emits an unconditional branch to `label`.
    pub fn branch(&mut self, label: impl Into<String>) -> &mut Self {
        self.fixups.push(Fixup::Branch {
            at: self.insts.len(),
            label: label.into(),
        });
        self.emit(Inst::Branch { offset: 0 })
    }

    /// Emits `HALT`.
    pub fn halt(&mut self) -> &mut Self {
        self.emit(Inst::Halt)
    }

    /// Resolves all labels and produces the program.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UndefinedLabel`] for dangling branches and
    /// [`Error::OffsetOverflow`] for out-of-range targets.
    pub fn finish(mut self) -> Result<Program> {
        for fixup in &self.fixups {
            let (at, label) = match fixup {
                Fixup::Bnez { at, label, .. }
                | Fixup::Beqz { at, label, .. }
                | Fixup::Bgtz { at, label, .. }
                | Fixup::Branch { at, label } => (*at, label),
            };
            let &target = self
                .labels
                .get(label)
                .ok_or_else(|| Error::UndefinedLabel {
                    label: label.clone(),
                })?;
            // Branch semantics: pc' = at + 1 + offset.
            let offset = target as i64 - at as i64 - 1;
            let offset = i32::try_from(offset).map_err(|_| Error::OffsetOverflow {
                label: label.clone(),
            })?;
            self.insts[at] = match fixup {
                Fixup::Bnez { rs, .. } => Inst::Bnez { rs: *rs, offset },
                Fixup::Beqz { rs, .. } => Inst::Beqz { rs: *rs, offset },
                Fixup::Bgtz { rs, .. } => Inst::Bgtz { rs: *rs, offset },
                Fixup::Branch { .. } => Inst::Branch { offset },
            };
        }
        Ok(Program::new(self.name, self.insts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backward_branch_resolves_negative() {
        let mut b = ProgramBuilder::new("t");
        b.ldri(Reg::R0, 2);
        b.label("top").unwrap();
        b.subri(Reg::R0, Reg::R0, 1);
        b.bnez(Reg::R0, "top");
        b.halt();
        let p = b.finish().unwrap();
        // bnez at index 2; target 1; offset = 1 - 2 - 1 = -2.
        assert_eq!(
            p.insts()[2],
            Inst::Bnez {
                rs: Reg::R0,
                offset: -2
            }
        );
    }

    #[test]
    fn forward_branch_resolves_positive() {
        let mut b = ProgramBuilder::new("t");
        b.branch("end");
        b.ldri(Reg::R0, 1);
        b.label("end").unwrap();
        b.halt();
        let p = b.finish().unwrap();
        // branch at 0, target 2: offset = 1.
        assert_eq!(p.insts()[0], Inst::Branch { offset: 1 });
    }

    #[test]
    fn undefined_label_errors() {
        let mut b = ProgramBuilder::new("t");
        b.branch("nowhere");
        assert!(matches!(
            b.finish().unwrap_err(),
            Error::UndefinedLabel { .. }
        ));
    }

    #[test]
    fn duplicate_label_errors() {
        let mut b = ProgramBuilder::new("t");
        b.label("x").unwrap();
        assert!(matches!(
            b.label("x").unwrap_err(),
            Error::DuplicateLabel { .. }
        ));
    }
}
