//! Lowered micro-op form of a [`Program`] — the compiled execution tier's
//! input.
//!
//! The functional simulator's interpreter re-matches [`Inst`] variants and
//! re-derives operand ranges on every dispatch. [`lower`] performs that
//! work once per program, at compile time, producing a dense stream of
//! [`MicroOp`]s in which every data instruction carries:
//!
//! * its operand ranges as typed [`OperandSpec`]s — the tile/external
//!   split is a [`Loc`] (no `u16::MAX` sentinel), lengths are
//!   pre-computed, and only register-indirect addresses remain to be
//!   resolved at run time;
//! * a [`DataForm`] with all geometry immediates unpacked (including the
//!   sampling output extents, via [`samp_out`]);
//! * a [`CostClass`] with the work amount pre-multiplied, so pricing a
//!   dispatch is one division instead of an instruction match.
//!
//! Lowering is purely mechanical — every field is copied or arithmetically
//! derived from the instruction — so a lowered program is semantically
//! identical to its source by construction. Scalar-control instructions
//! pass through unchanged ([`MicroOp::Scalar`]): they touch only the
//! register file and are already cheap to interpret.
//!
//! [`samp_out`] is also the single shared definition of the sampling
//! output extent: `scaledeep_dnn::Pool::output_shape` and the simulator's
//! subsample/upsample execution both delegate here.

use crate::inst::{ActKind, Addr, Inst, MemRef, PoolMode, TileRef};
use crate::program::Program;

/// Where an operand lives: a MemHeavy tile or external memory. The typed
/// replacement for the `u16::MAX` external-memory sentinel — lowering and
/// execution cannot mis-encode the distinguished value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Loc {
    /// A MemHeavy tile's scratchpad.
    Tile(u16),
    /// The external memory channel (host-managed, untracked).
    External,
}

impl Loc {
    /// The tile index, or `None` for external memory.
    pub const fn tile(self) -> Option<u16> {
        match self {
            Loc::Tile(t) => Some(t),
            Loc::External => None,
        }
    }

    /// True for external memory.
    pub const fn is_external(self) -> bool {
        matches!(self, Loc::External)
    }
}

impl From<TileRef> for Loc {
    fn from(t: TileRef) -> Self {
        if t.is_ext_mem() {
            Loc::External
        } else {
            Loc::Tile(t.0)
        }
    }
}

impl From<Loc> for TileRef {
    fn from(l: Loc) -> Self {
        match l {
            Loc::Tile(t) => TileRef(t),
            Loc::External => crate::inst::EXT_MEM_TILE,
        }
    }
}

impl std::fmt::Display for Loc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        TileRef::from(*self).fmt(f)
    }
}

/// One pre-resolved operand range of a data micro-op. The length and
/// location are fixed at lowering; only an [`Addr::Reg`] address needs the
/// register file at run time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OperandSpec {
    /// Where the operand lives.
    pub loc: Loc,
    /// Element address within the location (immediate or register).
    pub addr: Addr,
    /// Element length.
    pub len: u32,
}

impl OperandSpec {
    fn new(m: MemRef, len: u32) -> Self {
        Self {
            loc: m.tile.into(),
            addr: m.addr,
            len,
        }
    }
}

/// The pre-classified cost of a micro-op: which rate of the cycle-cost
/// table applies, with the work amount already multiplied out. Pricing a
/// lowered dispatch is `work.div_ceil(rate).max(1)` — no instruction
/// match.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostClass {
    /// One scalar-control instruction.
    Scalar,
    /// One tracker arm.
    Track,
    /// Convolution multiply-accumulates (ConvLayer column FMA rate).
    ConvMacs(u64),
    /// Matrix-multiply multiply-accumulates (FcLayer column FMA rate).
    FcMacs(u64),
    /// Special-function operations (MemHeavy SFU rate).
    SfuOps(u64),
    /// Elements moved (CompHeavy↔MemHeavy link rate).
    TransferElems(u64),
}

/// The operation a data micro-op performs, with every geometry immediate
/// unpacked to native widths and derived extents pre-computed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DataForm {
    /// `NDCONV`: reads `[input, kernels]`, writes the output features.
    Conv {
        /// Input feature height.
        in_h: usize,
        /// Input feature width.
        in_w: usize,
        /// Kernel side length.
        k: usize,
        /// Convolution stride.
        stride: usize,
        /// Symmetric zero padding.
        pad: usize,
        /// Kernels convolved per instruction (output lanes).
        lanes: usize,
        /// Output feature height.
        out_h: usize,
        /// Output feature width.
        out_w: usize,
        /// Add into the destination instead of overwriting.
        accumulate: bool,
        /// Read the kernels reversed (transposed convolution of BP).
        flip: bool,
    },
    /// `MATMUL`: reads `[input, matrix]`, writes the output vector.
    MatMul {
        /// Dot-product length.
        n_in: usize,
        /// Add into the destination instead of overwriting.
        accumulate: bool,
    },
    /// `NDACTFN`: reads `[src]`, writes the activated elements.
    ActFn {
        /// Activation function.
        kind: ActKind,
    },
    /// `NDACTFN` backward: reads `[pre, err]`, writes the scaled errors.
    ActBwd {
        /// Activation function whose derivative applies.
        kind: ActKind,
    },
    /// `NDSUBSAMP`: reads `[src]`, writes the pooled feature.
    Subsamp {
        /// Pooling mode.
        mode: PoolMode,
        /// Input feature height.
        in_h: usize,
        /// Input feature width.
        in_w: usize,
        /// Window side length.
        window: usize,
        /// Window stride.
        stride: usize,
        /// Symmetric zero padding.
        pad: usize,
        /// Pre-computed output height ([`samp_out`]).
        out_h: usize,
        /// Pre-computed output width ([`samp_out`]).
        out_w: usize,
    },
    /// `NDUPSAMP`: reads `[err, fwd]`, writes the routed errors.
    Upsamp {
        /// Pooling mode being reversed.
        mode: PoolMode,
        /// Forward input feature height.
        in_h: usize,
        /// Forward input feature width.
        in_w: usize,
        /// Window side length.
        window: usize,
        /// Window stride.
        stride: usize,
        /// Symmetric zero padding.
        pad: usize,
        /// Pre-computed pooled height ([`samp_out`]).
        out_h: usize,
        /// Pre-computed pooled width ([`samp_out`]).
        out_w: usize,
    },
    /// `NDACC`: reads `[src]`, accumulates into the destination.
    Acc,
    /// `VECSCALEACC`: reads `[src, scale]`, accumulates `scale * src`.
    ScaleAcc {
        /// Whether `scale` is a full vector (Hadamard) or one broadcast
        /// element.
        elementwise: bool,
    },
    /// All four transfer forms (`DMALOAD`/`DMASTORE`/`PREFETCH`/
    /// `PASSBUFF`): reads `[src]`, copies (or accumulates) into the
    /// destination.
    Copy {
        /// Add into the destination instead of overwriting.
        accumulate: bool,
    },
}

/// One lowered data instruction: its form, pre-resolved operand ranges
/// (reads in execution order, exactly one write), and pre-classified
/// cost.
#[derive(Debug, Clone, PartialEq)]
pub struct DataOp {
    /// What the op computes.
    pub form: DataForm,
    /// Read operands, in the order the form consumes them.
    pub reads: Vec<OperandSpec>,
    /// The single write operand.
    pub write: OperandSpec,
    /// Pre-classified dispatch cost.
    pub cost: CostClass,
}

/// One element of a lowered program.
#[derive(Debug, Clone, PartialEq)]
pub enum MicroOp {
    /// A scalar-control instruction, passed through unchanged.
    Scalar(Inst),
    /// A tracker arm (`MEMTRACK` / `DMA_MEMTRACK`), fields unpacked.
    Track {
        /// Tracked tile.
        tile: u16,
        /// Range start (elements).
        addr: u32,
        /// Range length (elements).
        len: u32,
        /// Writes required before the range is readable.
        num_updates: u16,
        /// Reads required before the range may be overwritten.
        num_reads: u16,
    },
    /// A data instruction, fully lowered.
    Data(DataOp),
}

/// A program lowered to its micro-op stream. Produced once per compile by
/// [`lower`]; executed by the functional simulator's compiled tier.
#[derive(Debug, Clone, PartialEq)]
pub struct LoweredProgram {
    name: String,
    ops: Vec<MicroOp>,
}

impl LoweredProgram {
    /// The source program's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The micro-op stream.
    pub fn ops(&self) -> &[MicroOp] {
        &self.ops
    }

    /// Number of micro-ops (equals the source program's length).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Output spatial extent of a sampling window over one dimension: ceil
/// mode keeps partial border windows (Caffe-style), floor mode drops
/// them. The single shared definition used by the graph layer
/// (`Pool::output_shape`), the lowering pass, and the simulator.
pub fn samp_out(in_d: usize, window: usize, stride: usize, pad: usize, ceil: bool) -> usize {
    let span = in_d + 2 * pad - window;
    if ceil {
        span.div_ceil(stride) + 1
    } else {
        span / stride + 1
    }
}

/// Lowers a program to its micro-op stream. Positions map one-to-one
/// (micro-op `i` is instruction `i`), so branch offsets keep their
/// meaning.
pub fn lower(program: &Program) -> LoweredProgram {
    LoweredProgram {
        name: program.name().to_string(),
        ops: program.insts().iter().map(lower_inst).collect(),
    }
}

/// Lowers one instruction.
pub fn lower_inst(inst: &Inst) -> MicroOp {
    let data = |form, reads, write, cost| {
        MicroOp::Data(DataOp {
            form,
            reads,
            write,
            cost,
        })
    };
    match *inst {
        Inst::NdConv {
            input,
            in_h,
            in_w,
            kernel,
            k,
            stride,
            pad,
            lanes,
            output,
            out_h,
            out_w,
            accumulate,
            flip,
        } => {
            let in_len = u32::from(in_h) * u32::from(in_w);
            let ker_len = u32::from(lanes) * u32::from(k) * u32::from(k);
            let out_len = u32::from(lanes) * u32::from(out_h) * u32::from(out_w);
            let macs = u64::from(lanes)
                * u64::from(out_h)
                * u64::from(out_w)
                * u64::from(k)
                * u64::from(k);
            data(
                DataForm::Conv {
                    in_h: in_h as usize,
                    in_w: in_w as usize,
                    k: k as usize,
                    stride: stride as usize,
                    pad: pad as usize,
                    lanes: lanes as usize,
                    out_h: out_h as usize,
                    out_w: out_w as usize,
                    accumulate,
                    flip,
                },
                vec![
                    OperandSpec::new(input, in_len),
                    OperandSpec::new(kernel, ker_len),
                ],
                OperandSpec::new(output, out_len),
                CostClass::ConvMacs(macs),
            )
        }
        Inst::MatMul {
            input,
            n_in,
            matrix,
            rows,
            output,
            accumulate,
        } => data(
            DataForm::MatMul {
                n_in: n_in as usize,
                accumulate,
            },
            vec![
                OperandSpec::new(input, n_in),
                OperandSpec::new(matrix, rows * n_in),
            ],
            OperandSpec::new(output, rows),
            CostClass::FcMacs(u64::from(rows) * u64::from(n_in)),
        ),
        Inst::NdActFn {
            kind,
            src,
            len,
            dst,
        } => data(
            DataForm::ActFn { kind },
            vec![OperandSpec::new(src, len)],
            OperandSpec::new(dst, len),
            CostClass::SfuOps(u64::from(len)),
        ),
        Inst::NdActBwd {
            kind,
            pre,
            err,
            len,
            dst,
        } => data(
            DataForm::ActBwd { kind },
            vec![OperandSpec::new(pre, len), OperandSpec::new(err, len)],
            OperandSpec::new(dst, len),
            CostClass::SfuOps(u64::from(len)),
        ),
        Inst::NdSubsamp {
            mode,
            src,
            in_h,
            in_w,
            window,
            stride,
            pad,
            ceil,
            dst,
        } => {
            let (ih, iw) = (in_h as usize, in_w as usize);
            let (win, st, pd) = (window as usize, stride as usize, pad as usize);
            let oh = samp_out(ih, win, st, pd, ceil);
            let ow = samp_out(iw, win, st, pd, ceil);
            data(
                DataForm::Subsamp {
                    mode,
                    in_h: ih,
                    in_w: iw,
                    window: win,
                    stride: st,
                    pad: pd,
                    out_h: oh,
                    out_w: ow,
                },
                vec![OperandSpec::new(src, (ih * iw) as u32)],
                OperandSpec::new(dst, (oh * ow) as u32),
                CostClass::SfuOps((ih * iw) as u64),
            )
        }
        Inst::NdUpsamp {
            mode,
            err,
            fwd,
            in_h,
            in_w,
            window,
            stride,
            pad,
            ceil,
            dst,
        } => {
            let (ih, iw) = (in_h as usize, in_w as usize);
            let (win, st, pd) = (window as usize, stride as usize, pad as usize);
            let oh = samp_out(ih, win, st, pd, ceil);
            let ow = samp_out(iw, win, st, pd, ceil);
            data(
                DataForm::Upsamp {
                    mode,
                    in_h: ih,
                    in_w: iw,
                    window: win,
                    stride: st,
                    pad: pd,
                    out_h: oh,
                    out_w: ow,
                },
                vec![
                    OperandSpec::new(err, (oh * ow) as u32),
                    OperandSpec::new(fwd, (ih * iw) as u32),
                ],
                OperandSpec::new(dst, (ih * iw) as u32),
                CostClass::SfuOps((ih * iw) as u64),
            )
        }
        Inst::NdAcc { dst, src, len } => data(
            DataForm::Acc,
            vec![OperandSpec::new(src, len)],
            OperandSpec::new(dst, len),
            CostClass::SfuOps(u64::from(len)),
        ),
        Inst::VecScaleAcc {
            src,
            len,
            scalar,
            dst,
            elementwise,
        } => data(
            DataForm::ScaleAcc { elementwise },
            vec![
                OperandSpec::new(src, len),
                OperandSpec::new(scalar, if elementwise { len } else { 1 }),
            ],
            OperandSpec::new(dst, len),
            CostClass::SfuOps(u64::from(len)),
        ),
        Inst::DmaLoad {
            src,
            dst,
            len,
            accumulate,
        }
        | Inst::DmaStore {
            src,
            dst,
            len,
            accumulate,
        } => data(
            DataForm::Copy { accumulate },
            vec![OperandSpec::new(src, len)],
            OperandSpec::new(dst, len),
            CostClass::TransferElems(u64::from(len)),
        ),
        Inst::Prefetch { src, dst, len } | Inst::PassBuff { src, dst, len } => data(
            DataForm::Copy { accumulate: false },
            vec![OperandSpec::new(src, len)],
            OperandSpec::new(dst, len),
            CostClass::TransferElems(u64::from(len)),
        ),
        Inst::MemTrack {
            tile,
            addr,
            len,
            num_updates,
            num_reads,
        }
        | Inst::DmaMemTrack {
            tile,
            addr,
            len,
            num_updates,
            num_reads,
        } => MicroOp::Track {
            tile: tile.0,
            addr,
            len,
            num_updates,
            num_reads,
        },
        scalar => MicroOp::Scalar(scalar),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::EXT_MEM_TILE;
    use crate::reg::Reg;

    #[test]
    fn loc_round_trips_through_tileref() {
        assert_eq!(Loc::from(TileRef(3)), Loc::Tile(3));
        assert_eq!(Loc::from(EXT_MEM_TILE), Loc::External);
        assert_eq!(TileRef::from(Loc::Tile(3)), TileRef(3));
        assert_eq!(TileRef::from(Loc::External), EXT_MEM_TILE);
        assert!(Loc::External.is_external());
        assert_eq!(Loc::Tile(7).tile(), Some(7));
        assert_eq!(Loc::External.tile(), None);
    }

    #[test]
    fn samp_out_matches_both_modes() {
        // GoogLeNet-style 3x3/2 ceil pooling: 28 -> 14.
        assert_eq!(samp_out(28, 3, 2, 0, true), 14);
        // CNN-S-style floor pooling drops the partial window: 28 -> 13.
        assert_eq!(samp_out(28, 3, 2, 0, false), 13);
        assert_eq!(samp_out(2, 3, 3, 1, false), 1);
    }

    #[test]
    fn scalar_instructions_pass_through() {
        let i = Inst::Ldri {
            rd: Reg::R0,
            value: 7,
        };
        assert_eq!(lower_inst(&i), MicroOp::Scalar(i));
        assert_eq!(lower_inst(&Inst::Halt), MicroOp::Scalar(Inst::Halt));
    }

    #[test]
    fn track_fields_unpack() {
        let i = Inst::DmaMemTrack {
            tile: TileRef(2),
            addr: 8,
            len: 16,
            num_updates: 3,
            num_reads: 1,
        };
        assert_eq!(
            lower_inst(&i),
            MicroOp::Track {
                tile: 2,
                addr: 8,
                len: 16,
                num_updates: 3,
                num_reads: 1,
            }
        );
    }

    #[test]
    fn conv_lowering_precomputes_lengths_and_macs() {
        let i = Inst::NdConv {
            input: MemRef::at(TileRef(0), 0),
            in_h: 4,
            in_w: 5,
            kernel: MemRef::at(TileRef(1), 9),
            k: 3,
            stride: 1,
            pad: 1,
            lanes: 2,
            output: MemRef::at(EXT_MEM_TILE, 13),
            out_h: 4,
            out_w: 5,
            accumulate: true,
            flip: true,
        };
        let MicroOp::Data(d) = lower_inst(&i) else {
            panic!("conv lowers to data");
        };
        assert_eq!(d.reads.len(), 2);
        assert_eq!(d.reads[0].len, 20);
        assert_eq!(d.reads[1].len, 2 * 9);
        assert_eq!(d.reads[1].loc, Loc::Tile(1));
        assert_eq!(d.write.len, 2 * 20);
        assert_eq!(d.write.loc, Loc::External);
        assert_eq!(d.cost, CostClass::ConvMacs(2 * 4 * 5 * 9));
        assert!(matches!(
            d.form,
            DataForm::Conv {
                accumulate: true,
                flip: true,
                ..
            }
        ));
    }

    #[test]
    fn subsamp_lowering_uses_samp_out() {
        let i = Inst::NdSubsamp {
            mode: PoolMode::Max,
            src: MemRef::at(TileRef(0), 0),
            in_h: 28,
            in_w: 28,
            window: 3,
            stride: 2,
            pad: 0,
            ceil: true,
            dst: MemRef::at(TileRef(0), 784),
        };
        let MicroOp::Data(d) = lower_inst(&i) else {
            panic!("subsamp lowers to data");
        };
        assert_eq!(d.write.len, 14 * 14);
        assert_eq!(d.cost, CostClass::SfuOps(784));
        assert!(matches!(
            d.form,
            DataForm::Subsamp {
                out_h: 14,
                out_w: 14,
                ..
            }
        ));
    }

    #[test]
    fn every_transfer_form_lowers_to_copy() {
        let src = MemRef::at(TileRef(0), 0);
        let dst = MemRef::at(TileRef(1), 0);
        for (inst, acc) in [
            (
                Inst::DmaLoad {
                    src,
                    dst,
                    len: 4,
                    accumulate: true,
                },
                true,
            ),
            (
                Inst::DmaStore {
                    src,
                    dst,
                    len: 4,
                    accumulate: false,
                },
                false,
            ),
            (Inst::Prefetch { src, dst, len: 4 }, false),
            (Inst::PassBuff { src, dst, len: 4 }, false),
        ] {
            let MicroOp::Data(d) = lower_inst(&inst) else {
                panic!("transfer lowers to data");
            };
            assert_eq!(d.form, DataForm::Copy { accumulate: acc }, "{inst}");
            assert_eq!(d.cost, CostClass::TransferElems(4));
        }
    }

    #[test]
    fn lowered_program_preserves_positions() {
        let p = Program::new(
            "t",
            vec![
                Inst::Ldri {
                    rd: Reg::R0,
                    value: 1,
                },
                Inst::NdAcc {
                    dst: MemRef::at(TileRef(0), 0),
                    src: MemRef::at(TileRef(0), 4),
                    len: 4,
                },
                Inst::Halt,
            ],
        );
        let l = lower(&p);
        assert_eq!(l.name(), "t");
        assert_eq!(l.len(), p.len());
        assert!(matches!(l.ops()[0], MicroOp::Scalar(_)));
        assert!(matches!(l.ops()[1], MicroOp::Data(_)));
        assert!(matches!(l.ops()[2], MicroOp::Scalar(Inst::Halt)));
    }
}
