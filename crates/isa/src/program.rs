//! Program container.

use crate::encode;
use crate::error::Result;
use crate::inst::{Inst, InstGroup};
use std::fmt;

/// A program for one CompHeavy tile: the contents of its instruction memory.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    name: String,
    insts: Vec<Inst>,
}

impl Program {
    /// Wraps a list of instructions as a named program.
    pub fn new(name: impl Into<String>, insts: Vec<Inst>) -> Self {
        Self {
            name: name.into(),
            insts,
        }
    }

    /// The program name (by convention `"<chip>.<col>.<role>"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instructions.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True when the program holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Instruction count per group — useful for the instruction-overhead
    /// analysis behind Figure 19's final utilization factor.
    pub fn group_histogram(&self) -> [(InstGroup, usize); 5] {
        let mut h = [
            (InstGroup::ScalarControl, 0),
            (InstGroup::CoarseData, 0),
            (InstGroup::MemOffload, 0),
            (InstGroup::DataTransfer, 0),
            (InstGroup::DataFlowTrack, 0),
        ];
        for inst in &self.insts {
            let g = inst.group();
            for slot in &mut h {
                if slot.0 == g {
                    slot.1 += 1;
                }
            }
        }
        h
    }

    /// Serializes the program to its binary instruction-memory image.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.insts.len() * 8);
        for inst in &self.insts {
            encode::encode_inst(inst, &mut out);
        }
        out
    }

    /// Decodes a binary image back into a program.
    ///
    /// # Errors
    ///
    /// Returns decoding errors for truncated streams, unknown opcodes or
    /// invalid operand fields.
    pub fn decode(name: impl Into<String>, bytes: &[u8]) -> Result<Self> {
        let mut insts = Vec::new();
        let mut offset = 0;
        while offset < bytes.len() {
            let (inst, next) = encode::decode_inst(bytes, offset)?;
            insts.push(inst);
            offset = next;
        }
        Ok(Self::new(name, insts))
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "--- Program for {} ---", self.name)?;
        for (i, inst) in self.insts.iter().enumerate() {
            writeln!(f, "{i:4}: {inst}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{MemRef, TileRef};
    use crate::reg::Reg;

    fn sample() -> Program {
        Program::new(
            "t",
            vec![
                Inst::Ldri {
                    rd: Reg::R0,
                    value: 5,
                },
                Inst::NdAcc {
                    dst: MemRef::at(TileRef(1), 0),
                    src: MemRef::at(TileRef(2), 64),
                    len: 32,
                },
                Inst::Halt,
            ],
        )
    }

    #[test]
    fn histogram_counts_groups() {
        let h = sample().group_histogram();
        assert_eq!(h[0].1, 2); // ldri + halt
        assert_eq!(h[2].1, 1); // ndacc
    }

    #[test]
    fn display_lists_instructions() {
        let s = sample().to_string();
        assert!(s.contains("LDRI"));
        assert!(s.contains("HALT"));
    }

    #[test]
    fn empty_program_is_empty() {
        assert!(Program::new("e", vec![]).is_empty());
        assert!(!sample().is_empty());
    }
}
