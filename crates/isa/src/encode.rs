//! Binary encoding of the instruction memory image.
//!
//! Variable-length little-endian encoding: one opcode byte followed by the
//! operands in declaration order. Addresses use a 1-byte tag
//! (0 = immediate u32, 1 = register).

use crate::error::{Error, Result};
use crate::inst::{ActKind, Addr, Inst, MemRef, PoolMode, TileRef};
use crate::reg::Reg;

// Opcode assignments (stable across versions; gaps are never reused).
const OP_LDRI: u8 = 0;
const OP_MOV: u8 = 1;
const OP_ADDR: u8 = 2;
const OP_ADDRI: u8 = 3;
const OP_SUBR: u8 = 4;
const OP_SUBRI: u8 = 5;
const OP_MULR: u8 = 6;
const OP_INV: u8 = 7;
const OP_BNEZ: u8 = 8;
const OP_BEQZ: u8 = 9;
const OP_BGTZ: u8 = 10;
const OP_BRANCH: u8 = 11;
const OP_HALT: u8 = 12;
const OP_NOP: u8 = 13;
const OP_NDCONV: u8 = 14;
const OP_MATMUL: u8 = 15;
const OP_NDACTFN: u8 = 16;
const OP_NDACTBWD: u8 = 17;
const OP_NDSUBSAMP: u8 = 18;
const OP_NDUPSAMP: u8 = 19;
const OP_NDACC: u8 = 20;
const OP_VECSCALEACC: u8 = 21;
const OP_DMALOAD: u8 = 22;
const OP_DMASTORE: u8 = 23;
const OP_PREFETCH: u8 = 24;
const OP_PASSBUFF: u8 = 25;
const OP_MEMTRACK: u8 = 26;
const OP_DMAMEMTRACK: u8 = 27;

struct Writer<'a>(&'a mut Vec<u8>);

impl Writer<'_> {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn i32(&mut self, v: i32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn reg(&mut self, r: Reg) {
        self.u8(r.raw());
    }
    fn boolean(&mut self, b: bool) {
        self.u8(u8::from(b));
    }
    fn addr(&mut self, a: Addr) {
        match a {
            Addr::Imm(v) => {
                self.u8(0);
                self.u32(v);
            }
            Addr::Reg(r) => {
                self.u8(1);
                self.reg(r);
            }
        }
    }
    fn mem(&mut self, m: MemRef) {
        self.u16(m.tile.0);
        self.addr(m.addr);
    }
    fn act(&mut self, k: ActKind) {
        self.u8(match k {
            ActKind::Relu => 0,
            ActKind::Tanh => 1,
            ActKind::Sigmoid => 2,
        });
    }
    fn pool(&mut self, m: PoolMode) {
        self.u8(match m {
            PoolMode::Max => 0,
            PoolMode::Avg => 1,
        });
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
    start: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.bytes.len() {
            return Err(Error::TruncatedStream { offset: self.pos });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }
    fn i32(&mut self) -> Result<i32> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }
    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }
    fn reg(&mut self) -> Result<Reg> {
        let raw = self.u8()?;
        Reg::try_new(raw).ok_or(Error::BadOperand {
            what: "register",
            offset: self.start,
        })
    }
    fn boolean(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(Error::BadOperand {
                what: "bool flag",
                offset: self.start,
            }),
        }
    }
    fn addr(&mut self) -> Result<Addr> {
        match self.u8()? {
            0 => Ok(Addr::Imm(self.u32()?)),
            1 => Ok(Addr::Reg(self.reg()?)),
            _ => Err(Error::BadOperand {
                what: "address tag",
                offset: self.start,
            }),
        }
    }
    fn mem(&mut self) -> Result<MemRef> {
        let tile = TileRef(self.u16()?);
        let addr = self.addr()?;
        Ok(MemRef { tile, addr })
    }
    fn act(&mut self) -> Result<ActKind> {
        match self.u8()? {
            0 => Ok(ActKind::Relu),
            1 => Ok(ActKind::Tanh),
            2 => Ok(ActKind::Sigmoid),
            _ => Err(Error::BadOperand {
                what: "activation kind",
                offset: self.start,
            }),
        }
    }
    fn pool(&mut self) -> Result<PoolMode> {
        match self.u8()? {
            0 => Ok(PoolMode::Max),
            1 => Ok(PoolMode::Avg),
            _ => Err(Error::BadOperand {
                what: "pool mode",
                offset: self.start,
            }),
        }
    }
}

/// Appends one encoded instruction to `out`.
pub(crate) fn encode_inst(inst: &Inst, out: &mut Vec<u8>) {
    let mut w = Writer(out);
    match *inst {
        Inst::Ldri { rd, value } => {
            w.u8(OP_LDRI);
            w.reg(rd);
            w.i64(value);
        }
        Inst::Mov { rd, rs } => {
            w.u8(OP_MOV);
            w.reg(rd);
            w.reg(rs);
        }
        Inst::Addr { rd, rs1, rs2 } => {
            w.u8(OP_ADDR);
            w.reg(rd);
            w.reg(rs1);
            w.reg(rs2);
        }
        Inst::Addri { rd, rs, imm } => {
            w.u8(OP_ADDRI);
            w.reg(rd);
            w.reg(rs);
            w.i64(imm);
        }
        Inst::Subr { rd, rs1, rs2 } => {
            w.u8(OP_SUBR);
            w.reg(rd);
            w.reg(rs1);
            w.reg(rs2);
        }
        Inst::Subri { rd, rs, imm } => {
            w.u8(OP_SUBRI);
            w.reg(rd);
            w.reg(rs);
            w.i64(imm);
        }
        Inst::Mulr { rd, rs1, rs2 } => {
            w.u8(OP_MULR);
            w.reg(rd);
            w.reg(rs1);
            w.reg(rs2);
        }
        Inst::Inv { rd, rs } => {
            w.u8(OP_INV);
            w.reg(rd);
            w.reg(rs);
        }
        Inst::Bnez { rs, offset } => {
            w.u8(OP_BNEZ);
            w.reg(rs);
            w.i32(offset);
        }
        Inst::Beqz { rs, offset } => {
            w.u8(OP_BEQZ);
            w.reg(rs);
            w.i32(offset);
        }
        Inst::Bgtz { rs, offset } => {
            w.u8(OP_BGTZ);
            w.reg(rs);
            w.i32(offset);
        }
        Inst::Branch { offset } => {
            w.u8(OP_BRANCH);
            w.i32(offset);
        }
        Inst::Halt => w.u8(OP_HALT),
        Inst::Nop => w.u8(OP_NOP),
        Inst::NdConv {
            input,
            in_h,
            in_w,
            kernel,
            k,
            stride,
            pad,
            lanes,
            output,
            out_h,
            out_w,
            accumulate,
            flip,
        } => {
            w.u8(OP_NDCONV);
            w.mem(input);
            w.u16(in_h);
            w.u16(in_w);
            w.mem(kernel);
            w.u8(k);
            w.u8(stride);
            w.u8(pad);
            w.u8(lanes);
            w.mem(output);
            w.u16(out_h);
            w.u16(out_w);
            w.boolean(accumulate);
            w.boolean(flip);
        }
        Inst::MatMul {
            input,
            n_in,
            matrix,
            rows,
            output,
            accumulate,
        } => {
            w.u8(OP_MATMUL);
            w.mem(input);
            w.u32(n_in);
            w.mem(matrix);
            w.u32(rows);
            w.mem(output);
            w.boolean(accumulate);
        }
        Inst::NdActFn {
            kind,
            src,
            len,
            dst,
        } => {
            w.u8(OP_NDACTFN);
            w.act(kind);
            w.mem(src);
            w.u32(len);
            w.mem(dst);
        }
        Inst::NdActBwd {
            kind,
            pre,
            err,
            len,
            dst,
        } => {
            w.u8(OP_NDACTBWD);
            w.act(kind);
            w.mem(pre);
            w.mem(err);
            w.u32(len);
            w.mem(dst);
        }
        Inst::NdSubsamp {
            mode,
            src,
            in_h,
            in_w,
            window,
            stride,
            pad,
            ceil,
            dst,
        } => {
            w.u8(OP_NDSUBSAMP);
            w.pool(mode);
            w.mem(src);
            w.u16(in_h);
            w.u16(in_w);
            w.u8(window);
            w.u8(stride);
            w.u8(pad);
            w.boolean(ceil);
            w.mem(dst);
        }
        Inst::NdUpsamp {
            mode,
            err,
            fwd,
            in_h,
            in_w,
            window,
            stride,
            pad,
            ceil,
            dst,
        } => {
            w.u8(OP_NDUPSAMP);
            w.pool(mode);
            w.mem(err);
            w.mem(fwd);
            w.u16(in_h);
            w.u16(in_w);
            w.u8(window);
            w.u8(stride);
            w.u8(pad);
            w.boolean(ceil);
            w.mem(dst);
        }
        Inst::NdAcc { dst, src, len } => {
            w.u8(OP_NDACC);
            w.mem(dst);
            w.mem(src);
            w.u32(len);
        }
        Inst::VecScaleAcc {
            src,
            len,
            scalar,
            dst,
            elementwise,
        } => {
            w.u8(OP_VECSCALEACC);
            w.mem(src);
            w.u32(len);
            w.mem(scalar);
            w.mem(dst);
            w.boolean(elementwise);
        }
        Inst::DmaLoad {
            src,
            dst,
            len,
            accumulate,
        } => {
            w.u8(OP_DMALOAD);
            w.mem(src);
            w.mem(dst);
            w.u32(len);
            w.boolean(accumulate);
        }
        Inst::DmaStore {
            src,
            dst,
            len,
            accumulate,
        } => {
            w.u8(OP_DMASTORE);
            w.mem(src);
            w.mem(dst);
            w.u32(len);
            w.boolean(accumulate);
        }
        Inst::Prefetch { src, dst, len } => {
            w.u8(OP_PREFETCH);
            w.mem(src);
            w.mem(dst);
            w.u32(len);
        }
        Inst::PassBuff { src, dst, len } => {
            w.u8(OP_PASSBUFF);
            w.mem(src);
            w.mem(dst);
            w.u32(len);
        }
        Inst::MemTrack {
            tile,
            addr,
            len,
            num_updates,
            num_reads,
        } => {
            w.u8(OP_MEMTRACK);
            w.u16(tile.0);
            w.u32(addr);
            w.u32(len);
            w.u16(num_updates);
            w.u16(num_reads);
        }
        Inst::DmaMemTrack {
            tile,
            addr,
            len,
            num_updates,
            num_reads,
        } => {
            w.u8(OP_DMAMEMTRACK);
            w.u16(tile.0);
            w.u32(addr);
            w.u32(len);
            w.u16(num_updates);
            w.u16(num_reads);
        }
    }
}

/// Decodes one instruction starting at `offset`, returning it and the next
/// offset.
pub(crate) fn decode_inst(bytes: &[u8], offset: usize) -> Result<(Inst, usize)> {
    let mut r = Reader {
        bytes,
        pos: offset,
        start: offset,
    };
    let opcode = r.u8()?;
    let inst = match opcode {
        OP_LDRI => Inst::Ldri {
            rd: r.reg()?,
            value: r.i64()?,
        },
        OP_MOV => Inst::Mov {
            rd: r.reg()?,
            rs: r.reg()?,
        },
        OP_ADDR => Inst::Addr {
            rd: r.reg()?,
            rs1: r.reg()?,
            rs2: r.reg()?,
        },
        OP_ADDRI => Inst::Addri {
            rd: r.reg()?,
            rs: r.reg()?,
            imm: r.i64()?,
        },
        OP_SUBR => Inst::Subr {
            rd: r.reg()?,
            rs1: r.reg()?,
            rs2: r.reg()?,
        },
        OP_SUBRI => Inst::Subri {
            rd: r.reg()?,
            rs: r.reg()?,
            imm: r.i64()?,
        },
        OP_MULR => Inst::Mulr {
            rd: r.reg()?,
            rs1: r.reg()?,
            rs2: r.reg()?,
        },
        OP_INV => Inst::Inv {
            rd: r.reg()?,
            rs: r.reg()?,
        },
        OP_BNEZ => Inst::Bnez {
            rs: r.reg()?,
            offset: r.i32()?,
        },
        OP_BEQZ => Inst::Beqz {
            rs: r.reg()?,
            offset: r.i32()?,
        },
        OP_BGTZ => Inst::Bgtz {
            rs: r.reg()?,
            offset: r.i32()?,
        },
        OP_BRANCH => Inst::Branch { offset: r.i32()? },
        OP_HALT => Inst::Halt,
        OP_NOP => Inst::Nop,
        OP_NDCONV => Inst::NdConv {
            input: r.mem()?,
            in_h: r.u16()?,
            in_w: r.u16()?,
            kernel: r.mem()?,
            k: r.u8()?,
            stride: r.u8()?,
            pad: r.u8()?,
            lanes: r.u8()?,
            output: r.mem()?,
            out_h: r.u16()?,
            out_w: r.u16()?,
            accumulate: r.boolean()?,
            flip: r.boolean()?,
        },
        OP_MATMUL => Inst::MatMul {
            input: r.mem()?,
            n_in: r.u32()?,
            matrix: r.mem()?,
            rows: r.u32()?,
            output: r.mem()?,
            accumulate: r.boolean()?,
        },
        OP_NDACTFN => Inst::NdActFn {
            kind: r.act()?,
            src: r.mem()?,
            len: r.u32()?,
            dst: r.mem()?,
        },
        OP_NDACTBWD => Inst::NdActBwd {
            kind: r.act()?,
            pre: r.mem()?,
            err: r.mem()?,
            len: r.u32()?,
            dst: r.mem()?,
        },
        OP_NDSUBSAMP => Inst::NdSubsamp {
            mode: r.pool()?,
            src: r.mem()?,
            in_h: r.u16()?,
            in_w: r.u16()?,
            window: r.u8()?,
            stride: r.u8()?,
            pad: r.u8()?,
            ceil: r.boolean()?,
            dst: r.mem()?,
        },
        OP_NDUPSAMP => Inst::NdUpsamp {
            mode: r.pool()?,
            err: r.mem()?,
            fwd: r.mem()?,
            in_h: r.u16()?,
            in_w: r.u16()?,
            window: r.u8()?,
            stride: r.u8()?,
            pad: r.u8()?,
            ceil: r.boolean()?,
            dst: r.mem()?,
        },
        OP_NDACC => Inst::NdAcc {
            dst: r.mem()?,
            src: r.mem()?,
            len: r.u32()?,
        },
        OP_VECSCALEACC => Inst::VecScaleAcc {
            src: r.mem()?,
            len: r.u32()?,
            scalar: r.mem()?,
            dst: r.mem()?,
            elementwise: r.boolean()?,
        },
        OP_DMALOAD => Inst::DmaLoad {
            src: r.mem()?,
            dst: r.mem()?,
            len: r.u32()?,
            accumulate: r.boolean()?,
        },
        OP_DMASTORE => Inst::DmaStore {
            src: r.mem()?,
            dst: r.mem()?,
            len: r.u32()?,
            accumulate: r.boolean()?,
        },
        OP_PREFETCH => Inst::Prefetch {
            src: r.mem()?,
            dst: r.mem()?,
            len: r.u32()?,
        },
        OP_PASSBUFF => Inst::PassBuff {
            src: r.mem()?,
            dst: r.mem()?,
            len: r.u32()?,
        },
        OP_MEMTRACK => Inst::MemTrack {
            tile: TileRef(r.u16()?),
            addr: r.u32()?,
            len: r.u32()?,
            num_updates: r.u16()?,
            num_reads: r.u16()?,
        },
        OP_DMAMEMTRACK => Inst::DmaMemTrack {
            tile: TileRef(r.u16()?),
            addr: r.u32()?,
            len: r.u32()?,
            num_updates: r.u16()?,
            num_reads: r.u16()?,
        },
        op => return Err(Error::BadOpcode { opcode: op, offset }),
    };
    Ok((inst, r.pos))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;

    fn one_of_each() -> Vec<Inst> {
        let m = |t: u16, a: u32| MemRef::at(TileRef(t), a);
        vec![
            Inst::Ldri {
                rd: Reg::R1,
                value: -7,
            },
            Inst::Mov {
                rd: Reg::R1,
                rs: Reg::R2,
            },
            Inst::Addr {
                rd: Reg::R0,
                rs1: Reg::R1,
                rs2: Reg::R2,
            },
            Inst::Addri {
                rd: Reg::R0,
                rs: Reg::R1,
                imm: 9,
            },
            Inst::Subr {
                rd: Reg::R0,
                rs1: Reg::R1,
                rs2: Reg::R2,
            },
            Inst::Subri {
                rd: Reg::R0,
                rs: Reg::R1,
                imm: 1,
            },
            Inst::Mulr {
                rd: Reg::R0,
                rs1: Reg::R1,
                rs2: Reg::R2,
            },
            Inst::Inv {
                rd: Reg::R0,
                rs: Reg::R1,
            },
            Inst::Bnez {
                rs: Reg::R0,
                offset: -3,
            },
            Inst::Beqz {
                rs: Reg::R0,
                offset: 4,
            },
            Inst::Bgtz {
                rs: Reg::R0,
                offset: 0,
            },
            Inst::Branch { offset: -10 },
            Inst::Halt,
            Inst::Nop,
            Inst::NdConv {
                input: m(3, 100),
                in_h: 27,
                in_w: 27,
                kernel: MemRef {
                    tile: TileRef(4),
                    addr: Addr::Reg(Reg::R3),
                },
                k: 5,
                stride: 1,
                pad: 2,
                lanes: 4,
                output: m(5, 0),
                out_h: 27,
                out_w: 27,
                accumulate: true,
                flip: false,
            },
            Inst::MatMul {
                input: m(1, 0),
                n_in: 4096,
                matrix: m(1, 4096),
                rows: 64,
                output: m(2, 0),
                accumulate: false,
            },
            Inst::NdActFn {
                kind: ActKind::Relu,
                src: m(1, 0),
                len: 64,
                dst: m(1, 64),
            },
            Inst::NdActBwd {
                kind: ActKind::Tanh,
                pre: m(1, 0),
                err: m(1, 64),
                len: 64,
                dst: m(1, 128),
            },
            Inst::NdSubsamp {
                mode: PoolMode::Max,
                src: m(1, 0),
                in_h: 10,
                in_w: 10,
                window: 2,
                stride: 2,
                pad: 0,
                ceil: true,
                dst: m(1, 100),
            },
            Inst::NdUpsamp {
                mode: PoolMode::Avg,
                err: m(1, 0),
                fwd: m(1, 25),
                in_h: 10,
                in_w: 10,
                window: 2,
                stride: 2,
                pad: 0,
                ceil: false,
                dst: m(1, 125),
            },
            Inst::NdAcc {
                dst: m(1, 0),
                src: m(2, 0),
                len: 128,
            },
            Inst::VecScaleAcc {
                src: m(1, 0),
                len: 256,
                scalar: m(2, 7),
                dst: m(3, 0),
                elementwise: true,
            },
            Inst::DmaLoad {
                src: MemRef::at(EXT_MEM_TILE_REF, 0),
                dst: m(1, 0),
                len: 512,
                accumulate: false,
            },
            Inst::DmaStore {
                src: m(1, 0),
                dst: m(9, 0),
                len: 512,
                accumulate: true,
            },
            Inst::Prefetch {
                src: MemRef::at(EXT_MEM_TILE_REF, 1 << 20),
                dst: m(1, 0),
                len: 2048,
            },
            Inst::PassBuff {
                src: m(1, 0),
                dst: m(2, 0),
                len: 64,
            },
            Inst::MemTrack {
                tile: TileRef(5),
                addr: 0,
                len: 1024,
                num_updates: 16,
                num_reads: 3,
            },
            Inst::DmaMemTrack {
                tile: TileRef(90),
                addr: 4096,
                len: 64,
                num_updates: 1,
                num_reads: 1,
            },
        ]
    }

    const EXT_MEM_TILE_REF: TileRef = crate::inst::EXT_MEM_TILE;

    #[test]
    fn isa_has_28_instructions() {
        assert_eq!(one_of_each().len(), Inst::COUNT);
    }

    #[test]
    fn every_instruction_round_trips() {
        for inst in one_of_each() {
            let mut bytes = Vec::new();
            encode_inst(&inst, &mut bytes);
            let (back, consumed) = decode_inst(&bytes, 0).unwrap();
            assert_eq!(back, inst);
            assert_eq!(consumed, bytes.len(), "{inst:?} left trailing bytes");
        }
    }

    #[test]
    fn program_round_trips() {
        let prog = Program::new("all", one_of_each());
        let bytes = prog.encode();
        let back = Program::decode("all", &bytes).unwrap();
        assert_eq!(prog, back);
    }

    #[test]
    fn truncated_stream_is_detected() {
        let prog = Program::new(
            "t",
            vec![Inst::Ldri {
                rd: Reg::R0,
                value: 1,
            }],
        );
        let bytes = prog.encode();
        let err = Program::decode("t", &bytes[..bytes.len() - 1]).unwrap_err();
        assert!(matches!(err, Error::TruncatedStream { .. }));
    }

    #[test]
    fn unknown_opcode_is_detected() {
        let err = Program::decode("t", &[0xEE]).unwrap_err();
        assert!(matches!(err, Error::BadOpcode { opcode: 0xEE, .. }));
    }

    #[test]
    fn bad_register_is_detected() {
        // LDRI with register byte 200.
        let bytes = [OP_LDRI, 200, 0, 0, 0, 0, 0, 0, 0, 0];
        let err = Program::decode("t", &bytes).unwrap_err();
        assert!(matches!(
            err,
            Error::BadOperand {
                what: "register",
                ..
            }
        ));
    }
}
