//! Textual disassembly, in the spirit of the paper's Figure 13 listing.

use crate::inst::{ActKind, DmaDir, Inst, PoolMode};
use std::fmt;

impl fmt::Display for ActKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ActKind::Relu => "ReLU",
            ActKind::Tanh => "tanh",
            ActKind::Sigmoid => "sigmoid",
        })
    }
}

impl fmt::Display for PoolMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PoolMode::Max => "max",
            PoolMode::Avg => "avg",
        })
    }
}

impl fmt::Display for DmaDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DmaDir::Load => "load",
            DmaDir::Store => "store",
        })
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn acc(b: bool) -> &'static str {
            if b {
                ", ACC"
            } else {
                ""
            }
        }
        match self {
            Inst::Ldri { rd, value } => write!(f, "LDRI {rd}, {value}"),
            Inst::Mov { rd, rs } => write!(f, "MOV {rd}, {rs}"),
            Inst::Addr { rd, rs1, rs2 } => write!(f, "ADDR {rd}, {rs1}, {rs2}"),
            Inst::Addri { rd, rs, imm } => write!(f, "ADDRI {rd}, {rs}, {imm}"),
            Inst::Subr { rd, rs1, rs2 } => write!(f, "SUBR {rd}, {rs1}, {rs2}"),
            Inst::Subri { rd, rs, imm } => write!(f, "SUBRI {rd}, {rs}, {imm}"),
            Inst::Mulr { rd, rs1, rs2 } => write!(f, "MULR {rd}, {rs1}, {rs2}"),
            Inst::Inv { rd, rs } => write!(f, "INV {rd}, {rs}"),
            Inst::Bnez { rs, offset } => write!(f, "BNEZ {rs}, {offset}"),
            Inst::Beqz { rs, offset } => write!(f, "BEQZ {rs}, {offset}"),
            Inst::Bgtz { rs, offset } => write!(f, "BGTZ {rs}, {offset}"),
            Inst::Branch { offset } => write!(f, "BRANCH {offset}"),
            Inst::Halt => f.write_str("HALT"),
            Inst::Nop => f.write_str("NOP"),
            Inst::NdConv {
                input,
                in_h,
                in_w,
                kernel,
                k,
                stride,
                pad,
                lanes,
                output,
                out_h,
                out_w,
                accumulate,
                flip,
            } => write!(
                f,
                "ND_CONV{} {input} ({in_h}x{in_w}), {kernel} ({k}x{k}/{stride} p{pad}) x{lanes} -> {output} ({out_h}x{out_w}){}",
                if *flip { "_T" } else { "" },
                acc(*accumulate)
            ),
            Inst::MatMul {
                input,
                n_in,
                matrix,
                rows,
                output,
                accumulate,
            } => write!(
                f,
                "MATMUL {input} ({n_in}), {matrix} ({rows}x{n_in}) -> {output}{}",
                acc(*accumulate)
            ),
            Inst::NdActFn { kind, src, len, dst } => {
                write!(f, "ND_ACT {kind} {src} ({len}) -> {dst}")
            }
            Inst::NdActBwd {
                kind,
                pre,
                err,
                len,
                dst,
            } => write!(f, "ND_ACT_BWD {kind} pre={pre} err={err} ({len}) -> {dst}"),
            Inst::NdSubsamp {
                mode,
                src,
                in_h,
                in_w,
                window,
                stride,
                ..
            } => write!(
                f,
                "ND_SUBSAMP {mode} {src} ({in_h}x{in_w}) {window}x{window}/{stride}"
            ),
            Inst::NdUpsamp {
                mode,
                err,
                dst,
                window,
                stride,
                ..
            } => write!(f, "ND_UPSAMP {mode} {err} {window}x{window}/{stride} -> {dst}"),
            Inst::NdAcc { dst, src, len } => write!(f, "ND_ACC {dst} += {src} ({len})"),
            Inst::VecScaleAcc {
                src,
                len,
                scalar,
                dst,
                elementwise,
            } => {
                if *elementwise {
                    write!(f, "VEC_MUL_ACC {dst} += {scalar}[..] * {src} ({len})")
                } else {
                    write!(f, "VEC_SCALE_ACC {dst} += [{scalar}] * {src} ({len})")
                }
            }
            Inst::DmaLoad {
                src,
                dst,
                len,
                accumulate,
            } => write!(f, "DMA_LOAD {src} -> {dst} ({len}){}", acc(*accumulate)),
            Inst::DmaStore {
                src,
                dst,
                len,
                accumulate,
            } => write!(f, "DMA_STORE {src} -> {dst} ({len}){}", acc(*accumulate)),
            Inst::Prefetch { src, dst, len } => write!(f, "PREFETCH {src} -> {dst} ({len})"),
            Inst::PassBuff { src, dst, len } => write!(f, "PASSBUFF {src} -> {dst} ({len})"),
            Inst::MemTrack {
                tile,
                addr,
                len,
                num_updates,
                num_reads,
            } => write!(
                f,
                "MEMTRACK {tile}:[{addr}, +{len}) updates={num_updates} reads={num_reads}"
            ),
            Inst::DmaMemTrack {
                tile,
                addr,
                len,
                num_updates,
                num_reads,
            } => write!(
                f,
                "DMA_MEMTRACK {tile}:[{addr}, +{len}) updates={num_updates} reads={num_reads}"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::inst::{Inst, MemRef, TileRef};
    use crate::reg::Reg;

    #[test]
    fn disassembly_is_readable() {
        let i = Inst::NdConv {
            input: MemRef::at(TileRef(3), 0),
            in_h: 27,
            in_w: 27,
            kernel: MemRef::at(TileRef(3), 1024),
            k: 5,
            stride: 1,
            pad: 2,
            lanes: 4,
            output: MemRef::at(TileRef(4), 0),
            out_h: 27,
            out_w: 27,
            accumulate: true,
            flip: false,
        };
        let s = i.to_string();
        assert!(s.contains("ND_CONV"));
        assert!(s.contains("5x5/1"));
        assert!(s.contains("ACC"));
    }

    #[test]
    fn scalar_disassembly() {
        assert_eq!(
            Inst::Subri {
                rd: Reg::R1,
                rs: Reg::R1,
                imm: 1
            }
            .to_string(),
            "SUBRI r1, r1, 1"
        );
        assert_eq!(Inst::Branch { offset: -14 }.to_string(), "BRANCH -14");
    }
}
