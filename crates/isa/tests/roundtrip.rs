//! Encode/decode round-trip property: every one of the ISA's 28
//! instruction forms, with operands driven to their register and
//! immediate boundary values, must survive
//! `Program::encode` → `Program::decode` bit-identically.

use proptest::prelude::*;
use proptest::strategy::boxed;
use scaledeep_isa::{ActKind, Addr, Inst, MemRef, PoolMode, Program, Reg, TileRef, NUM_REGS};

// ---------- operand strategies (boundaries over-weighted) ----------

fn reg() -> impl Strategy<Value = Reg> {
    prop_oneof![Just(0u8), Just((NUM_REGS - 1) as u8), 0u8..NUM_REGS as u8,].prop_map(Reg::new)
}

fn imm_i64() -> impl Strategy<Value = i64> {
    prop_oneof![
        Just(i64::MIN),
        Just(i64::MAX),
        Just(0i64),
        Just(-1i64),
        any::<i64>(),
    ]
}

fn offset_i32() -> impl Strategy<Value = i32> {
    prop_oneof![
        Just(i32::MIN),
        Just(i32::MAX),
        Just(0i32),
        Just(-1i32),
        any::<i32>(),
    ]
}

fn len_u32() -> impl Strategy<Value = u32> {
    prop_oneof![Just(0u32), Just(u32::MAX), any::<u32>()]
}

fn dim_u16() -> impl Strategy<Value = u16> {
    prop_oneof![Just(0u16), Just(u16::MAX), any::<u16>()]
}

fn small_u8() -> impl Strategy<Value = u8> {
    prop_oneof![Just(0u8), Just(u8::MAX), any::<u8>()]
}

fn tile() -> impl Strategy<Value = TileRef> {
    // u16::MAX is the distinguished external-memory reference — a
    // boundary the codec must preserve exactly.
    prop_oneof![Just(0u16), Just(u16::MAX), any::<u16>()].prop_map(TileRef)
}

fn addr() -> impl Strategy<Value = Addr> {
    prop_oneof![
        boxed((prop_oneof![Just(0u32), Just(u32::MAX), any::<u32>()]).prop_map(Addr::Imm)),
        boxed(reg().prop_map(Addr::Reg)),
    ]
}

fn mem() -> impl Strategy<Value = MemRef> {
    (tile(), addr()).prop_map(|(tile, addr)| MemRef { tile, addr })
}

fn act_kind() -> impl Strategy<Value = ActKind> {
    prop_oneof![
        Just(ActKind::Relu),
        Just(ActKind::Tanh),
        Just(ActKind::Sigmoid)
    ]
}

fn pool_mode() -> impl Strategy<Value = PoolMode> {
    prop_oneof![Just(PoolMode::Max), Just(PoolMode::Avg)]
}

// ---------- one strategy per instruction form (all 28) ----------

fn inst() -> impl Strategy<Value = Inst> {
    let arms: Vec<Box<dyn Strategy<Value = Inst>>> = vec![
        // Group 1: scalar control (14).
        boxed((reg(), imm_i64()).prop_map(|(rd, value)| Inst::Ldri { rd, value })),
        boxed((reg(), reg()).prop_map(|(rd, rs)| Inst::Mov { rd, rs })),
        boxed((reg(), reg(), reg()).prop_map(|(rd, rs1, rs2)| Inst::Addr { rd, rs1, rs2 })),
        boxed((reg(), reg(), imm_i64()).prop_map(|(rd, rs, imm)| Inst::Addri { rd, rs, imm })),
        boxed((reg(), reg(), reg()).prop_map(|(rd, rs1, rs2)| Inst::Subr { rd, rs1, rs2 })),
        boxed((reg(), reg(), imm_i64()).prop_map(|(rd, rs, imm)| Inst::Subri { rd, rs, imm })),
        boxed((reg(), reg(), reg()).prop_map(|(rd, rs1, rs2)| Inst::Mulr { rd, rs1, rs2 })),
        boxed((reg(), reg()).prop_map(|(rd, rs)| Inst::Inv { rd, rs })),
        boxed((reg(), offset_i32()).prop_map(|(rs, offset)| Inst::Bnez { rs, offset })),
        boxed((reg(), offset_i32()).prop_map(|(rs, offset)| Inst::Beqz { rs, offset })),
        boxed((reg(), offset_i32()).prop_map(|(rs, offset)| Inst::Bgtz { rs, offset })),
        boxed(offset_i32().prop_map(|offset| Inst::Branch { offset })),
        boxed(Just(Inst::Halt)),
        boxed(Just(Inst::Nop)),
        // Group 2: coarse-grained data (2).
        boxed(
            (
                mem(),
                dim_u16(),
                dim_u16(),
                mem(),
                small_u8(),
                small_u8(),
                small_u8(),
                small_u8(),
                mem(),
                dim_u16(),
                dim_u16(),
                (any::<bool>(), any::<bool>()),
            )
                .prop_map(
                    |(
                        input,
                        in_h,
                        in_w,
                        kernel,
                        k,
                        stride,
                        pad,
                        lanes,
                        output,
                        out_h,
                        out_w,
                        (accumulate, flip),
                    )| {
                        Inst::NdConv {
                            input,
                            in_h,
                            in_w,
                            kernel,
                            k,
                            stride,
                            pad,
                            lanes,
                            output,
                            out_h,
                            out_w,
                            accumulate,
                            flip,
                        }
                    },
                ),
        ),
        boxed(
            (mem(), len_u32(), mem(), len_u32(), mem(), any::<bool>()).prop_map(
                |(input, n_in, matrix, rows, output, accumulate)| Inst::MatMul {
                    input,
                    n_in,
                    matrix,
                    rows,
                    output,
                    accumulate,
                },
            ),
        ),
        // Group 3: MemHeavy offload (6).
        boxed(
            (act_kind(), mem(), len_u32(), mem()).prop_map(|(kind, src, len, dst)| Inst::NdActFn {
                kind,
                src,
                len,
                dst,
            }),
        ),
        boxed((act_kind(), mem(), mem(), len_u32(), mem()).prop_map(
            |(kind, pre, err, len, dst)| Inst::NdActBwd {
                kind,
                pre,
                err,
                len,
                dst,
            },
        )),
        boxed(
            (
                pool_mode(),
                mem(),
                dim_u16(),
                dim_u16(),
                small_u8(),
                small_u8(),
                small_u8(),
                any::<bool>(),
                mem(),
            )
                .prop_map(|(mode, src, in_h, in_w, window, stride, pad, ceil, dst)| {
                    Inst::NdSubsamp {
                        mode,
                        src,
                        in_h,
                        in_w,
                        window,
                        stride,
                        pad,
                        ceil,
                        dst,
                    }
                }),
        ),
        boxed(
            (
                pool_mode(),
                mem(),
                mem(),
                dim_u16(),
                dim_u16(),
                small_u8(),
                small_u8(),
                small_u8(),
                any::<bool>(),
                mem(),
            )
                .prop_map(
                    |(mode, err, fwd, in_h, in_w, window, stride, pad, ceil, dst)| Inst::NdUpsamp {
                        mode,
                        err,
                        fwd,
                        in_h,
                        in_w,
                        window,
                        stride,
                        pad,
                        ceil,
                        dst,
                    },
                ),
        ),
        boxed((mem(), mem(), len_u32()).prop_map(|(dst, src, len)| Inst::NdAcc { dst, src, len })),
        boxed((mem(), len_u32(), mem(), mem(), any::<bool>()).prop_map(
            |(src, len, scalar, dst, elementwise)| Inst::VecScaleAcc {
                src,
                len,
                scalar,
                dst,
                elementwise,
            },
        )),
        // Group 4: MemHeavy data transfer (4).
        boxed(
            (mem(), mem(), len_u32(), any::<bool>()).prop_map(|(src, dst, len, accumulate)| {
                Inst::DmaLoad {
                    src,
                    dst,
                    len,
                    accumulate,
                }
            }),
        ),
        boxed(
            (mem(), mem(), len_u32(), any::<bool>()).prop_map(|(src, dst, len, accumulate)| {
                Inst::DmaStore {
                    src,
                    dst,
                    len,
                    accumulate,
                }
            }),
        ),
        boxed(
            (mem(), mem(), len_u32()).prop_map(|(src, dst, len)| Inst::Prefetch { src, dst, len }),
        ),
        boxed(
            (mem(), mem(), len_u32()).prop_map(|(src, dst, len)| Inst::PassBuff { src, dst, len }),
        ),
        // Group 5: data-flow track (2).
        boxed(
            (tile(), len_u32(), len_u32(), dim_u16(), dim_u16()).prop_map(
                |(tile, addr, len, num_updates, num_reads)| Inst::MemTrack {
                    tile,
                    addr,
                    len,
                    num_updates,
                    num_reads,
                },
            ),
        ),
        boxed(
            (tile(), len_u32(), len_u32(), dim_u16(), dim_u16()).prop_map(
                |(tile, addr, len, num_updates, num_reads)| Inst::DmaMemTrack {
                    tile,
                    addr,
                    len,
                    num_updates,
                    num_reads,
                },
            ),
        ),
    ];
    assert_eq!(arms.len(), Inst::COUNT, "one strategy arm per instruction");
    proptest::strategy::OneOf::new(arms)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary instruction streams survive the codec bit-identically.
    #[test]
    fn program_round_trips_bit_identically(insts in prop::collection::vec(inst(), 1..64)) {
        let program = Program::new("rt", insts);
        let bytes = program.encode();
        let decoded = Program::decode("rt", &bytes).expect("decodes");
        prop_assert_eq!(&program, &decoded);
        // And the re-encoding is byte-identical (canonical encoding).
        prop_assert_eq!(bytes, decoded.encode());
    }
}

/// A deterministic sweep pinning one boundary-valued exemplar of each of
/// the 28 forms — so a codec regression on a rare form fails even if the
/// random sweep misses it.
#[test]
fn every_form_round_trips_at_the_boundaries() {
    let r0 = Reg::new(0);
    let r63 = Reg::new((NUM_REGS - 1) as u8);
    let ext = MemRef {
        tile: TileRef(u16::MAX),
        addr: Addr::Imm(u32::MAX),
    };
    let ind = MemRef {
        tile: TileRef(0),
        addr: Addr::Reg(r63),
    };
    let forms = vec![
        Inst::Ldri {
            rd: r63,
            value: i64::MIN,
        },
        Inst::Mov { rd: r0, rs: r63 },
        Inst::Addr {
            rd: r0,
            rs1: r63,
            rs2: r0,
        },
        Inst::Addri {
            rd: r63,
            rs: r0,
            imm: i64::MAX,
        },
        Inst::Subr {
            rd: r0,
            rs1: r0,
            rs2: r63,
        },
        Inst::Subri {
            rd: r63,
            rs: r63,
            imm: i64::MIN,
        },
        Inst::Mulr {
            rd: r63,
            rs1: r0,
            rs2: r63,
        },
        Inst::Inv { rd: r0, rs: r0 },
        Inst::Bnez {
            rs: r63,
            offset: i32::MIN,
        },
        Inst::Beqz {
            rs: r0,
            offset: i32::MAX,
        },
        Inst::Bgtz {
            rs: r63,
            offset: -1,
        },
        Inst::Branch { offset: 0 },
        Inst::Halt,
        Inst::Nop,
        Inst::NdConv {
            input: ext,
            in_h: u16::MAX,
            in_w: 0,
            kernel: ind,
            k: u8::MAX,
            stride: 0,
            pad: u8::MAX,
            lanes: 0,
            output: ext,
            out_h: 0,
            out_w: u16::MAX,
            accumulate: true,
            flip: true,
        },
        Inst::MatMul {
            input: ind,
            n_in: u32::MAX,
            matrix: ext,
            rows: 0,
            output: ind,
            accumulate: false,
        },
        Inst::NdActFn {
            kind: ActKind::Sigmoid,
            src: ext,
            len: u32::MAX,
            dst: ind,
        },
        Inst::NdActBwd {
            kind: ActKind::Tanh,
            pre: ind,
            err: ext,
            len: 0,
            dst: ext,
        },
        Inst::NdSubsamp {
            mode: PoolMode::Max,
            src: ext,
            in_h: u16::MAX,
            in_w: u16::MAX,
            window: u8::MAX,
            stride: u8::MAX,
            pad: u8::MAX,
            ceil: true,
            dst: ind,
        },
        Inst::NdUpsamp {
            mode: PoolMode::Avg,
            err: ind,
            fwd: ext,
            in_h: 0,
            in_w: 0,
            window: 0,
            stride: 0,
            pad: 0,
            ceil: false,
            dst: ext,
        },
        Inst::NdAcc {
            dst: ext,
            src: ind,
            len: u32::MAX,
        },
        Inst::VecScaleAcc {
            src: ind,
            len: 0,
            scalar: ext,
            dst: ind,
            elementwise: true,
        },
        Inst::DmaLoad {
            src: ext,
            dst: ind,
            len: u32::MAX,
            accumulate: true,
        },
        Inst::DmaStore {
            src: ind,
            dst: ext,
            len: 0,
            accumulate: false,
        },
        Inst::Prefetch {
            src: ext,
            dst: ext,
            len: u32::MAX,
        },
        Inst::PassBuff {
            src: ind,
            dst: ind,
            len: 0,
        },
        Inst::MemTrack {
            tile: TileRef(u16::MAX),
            addr: u32::MAX,
            len: u32::MAX,
            num_updates: u16::MAX,
            num_reads: 0,
        },
        Inst::DmaMemTrack {
            tile: TileRef(0),
            addr: 0,
            len: 0,
            num_updates: 0,
            num_reads: u16::MAX,
        },
    ];
    assert_eq!(forms.len(), Inst::COUNT);
    let program = Program::new("boundary", forms);
    let decoded = Program::decode("boundary", &program.encode()).expect("decodes");
    assert_eq!(program, decoded);
}
