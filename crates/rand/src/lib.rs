//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a cargo registry, so the
//! workspace vendors the *API subset it actually uses* as a local path
//! crate: `StdRng::seed_from_u64` and `Rng::gen_range` over float and
//! integer ranges. The generator is a SplitMix64-seeded xoshiro256**,
//! which is deterministic for a given seed (all the workspace requires —
//! compiled and reference executions only need to see *identical*
//! parameters, not bit-compatibility with upstream `rand`).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random-value sources (subset of `rand::Rng`).
pub trait Rng {
    /// The next 64 raw bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform value in `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Ranges that can be sampled uniformly (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! float_range {
    ($t:ty) => {
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                self.start + (self.end - self.start) * rng.gen_f64() as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "empty range");
                a + (b - a) * rng.gen_f64() as $t
            }
        }
    };
}
float_range!(f32);
float_range!(f64);

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "empty range");
                let span = (b as i128 - a as i128) as u128 + 1;
                (a as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Generator types (subset of `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// SplitMix64. Deterministic per seed; not cryptographic.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            Self {
                s: [
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: f32 = r.gen_range(-0.5f32..=0.5);
            assert!((-0.5..=0.5).contains(&v));
            let w: f64 = r.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&w));
        }
    }

    #[test]
    fn int_ranges_cover_and_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..200 {
            let v: usize = r.gen_range(0usize..8);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "uniform draw covers the range");
    }
}
