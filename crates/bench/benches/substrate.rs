//! Criterion micro-benchmarks of the substrates the figure benches stand
//! on: compiler mapping latency, functional-simulator instruction
//! throughput, ISA encode/decode, and the DES pipeline engine. These act
//! as performance regressions for the simulator itself (the paper's
//! simulator had to be fast enough to sweep 11 networks).

use criterion::{criterion_group, criterion_main, Criterion};
use scaledeep_arch::presets;
use scaledeep_compiler::pipeline;
use scaledeep_compiler::{CompileOptions, Compiler};
use scaledeep_dnn::{zoo, Activation, Conv, Fc, FeatureShape, Network, NetworkBuilder};
use scaledeep_isa::Program;
use scaledeep_sim::func::FuncSim;
use scaledeep_sim::perf::PerfSim;
use scaledeep_tensor::Executor;

/// One pipeline compile of `net` with default options on the baseline node.
fn compile_default(net: &Network) -> scaledeep_compiler::CompiledArtifact {
    pipeline::compile(
        &presets::single_precision(),
        net,
        &CompileOptions::default(),
    )
    .expect("compiles")
}

fn bench_mapping(c: &mut Criterion) {
    let node = presets::single_precision();
    let compiler = Compiler::new(&node);
    let nets = [zoo::alexnet(), zoo::googlenet(), zoo::vgg_e()];
    let mut g = c.benchmark_group("substrate/mapping");
    for net in &nets {
        g.bench_function(net.name(), |b| b.iter(|| compiler.map(net).expect("maps")));
    }
    g.finish();
}

fn bench_perf_sim(c: &mut Criterion) {
    let node = presets::single_precision();
    let sim = PerfSim::new(&node);
    let net = zoo::vgg_d();
    let mut g = c.benchmark_group("substrate/perf-sim");
    g.sample_size(20);
    g.bench_function("train-vgg-d", |b| {
        b.iter(|| sim.train(&net).expect("simulates"))
    });
    g.finish();
}

fn bench_functional_sim(c: &mut Criterion) {
    let mut b = NetworkBuilder::new("bench", FeatureShape::new(1, 12, 12));
    b.conv(
        "c1",
        Conv {
            out_features: 4,
            kernel: 3,
            stride: 1,
            pad: 1,
            groups: 1,
            bias: false,
            activation: Activation::Relu,
        },
    )
    .unwrap();
    let f = b
        .fc(
            "f1",
            Fc {
                out_neurons: 8,
                bias: false,
                activation: Activation::None,
            },
        )
        .unwrap();
    let net = b.finish_with_loss(f).unwrap();
    let artifact = compile_default(&net);
    let reference = Executor::new(&net, 1).unwrap();
    let mut sim = FuncSim::from_artifact(&net, &artifact).unwrap();
    sim.import_params(&reference).unwrap();
    let image = vec![0.5f32; 144];
    let golden = vec![0.25f32; 8];

    let mut g = c.benchmark_group("substrate/functional-sim");
    g.bench_function("training-iteration", |b| {
        b.iter(|| sim.run_iteration(&image, &golden).expect("runs"))
    });
    g.finish();
}

fn bench_isa_codec(c: &mut Criterion) {
    let net = zoo::alexnet();
    // A realistic instruction stream: compile a reduced AlexNet head.
    let mut b = NetworkBuilder::new("head", FeatureShape::new(3, 16, 16));
    b.conv(
        "c1",
        Conv {
            out_features: 8,
            kernel: 3,
            stride: 1,
            pad: 1,
            groups: 1,
            bias: false,
            activation: Activation::Relu,
        },
    )
    .unwrap();
    let f = b
        .fc(
            "f",
            Fc {
                out_neurons: 10,
                bias: false,
                activation: Activation::None,
            },
        )
        .unwrap();
    let head = b.finish_with_loss(f).unwrap();
    let artifact = compile_default(&head);
    let compiled = artifact.functional().unwrap();
    let program = &compiled.programs[0];
    let bytes = program.encode();
    let _ = net;

    let mut g = c.benchmark_group("substrate/isa");
    g.bench_function("encode", |b| b.iter(|| program.encode()));
    g.bench_function("decode", |b| {
        b.iter(|| Program::decode("p", &bytes).expect("decodes"))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_mapping,
    bench_perf_sim,
    bench_functional_sim,
    bench_isa_codec
);
criterion_main!(benches);
