//! Criterion bench: regenerates architecture table derivation (fig14_arch).

use criterion::{criterion_group, criterion_main, Criterion};
use scaledeep::experiments;
use scaledeep_bench::SIM_SAMPLE_SIZE;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig14_arch");
    g.sample_size(SIM_SAMPLE_SIZE);
    g.bench_function("fig14", |b| {
        b.iter(|| {
            let tables = experiments::run_by_id("fig14").expect("known experiment");
            assert!(!tables.is_empty());
            tables
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
