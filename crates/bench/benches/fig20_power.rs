//! Criterion bench: regenerates power/efficiency sweep (fig20_power).

use criterion::{criterion_group, criterion_main, Criterion};
use scaledeep::experiments;
use scaledeep_bench::SIM_SAMPLE_SIZE;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig20_power");
    g.sample_size(SIM_SAMPLE_SIZE);
    g.bench_function("fig20", |b| {
        b.iter(|| {
            let tables = experiments::run_by_id("fig20").expect("known experiment");
            assert!(!tables.is_empty());
            tables
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
