//! Tracing-overhead regression: a functional-simulator training
//! iteration with a disabled tracer (`NullSink`) must cost the same as
//! the untraced entry point. The criterion display times both paths plus
//! a fully-recording `VecSink` run for scale; a manual min-of-N check
//! then asserts the disabled-tracer path stays within noise of the
//! baseline (the `wants` guards compile to a branch on a constant, so a
//! real regression here means a guard was lost).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use scaledeep_arch::presets;
use scaledeep_compiler::pipeline::{compile, CompileOptions};
use scaledeep_dnn::{zoo, Activation, Conv, Fc, FeatureShape, NetworkBuilder};
use scaledeep_sim::fault::FaultPlan;
use scaledeep_sim::func::FuncSim;
use scaledeep_tensor::Executor;
use scaledeep_trace::{MetricsRegistry, Tracer, VecSink};
use std::time::Instant;

fn bench_net() -> (FuncSim, Vec<f32>, Vec<f32>) {
    let mut b = NetworkBuilder::new("overhead", FeatureShape::new(1, 12, 12));
    b.conv(
        "c1",
        Conv {
            out_features: 4,
            kernel: 3,
            stride: 1,
            pad: 1,
            groups: 1,
            bias: false,
            activation: Activation::Relu,
        },
    )
    .unwrap();
    let f = b
        .fc(
            "f1",
            Fc {
                out_neurons: 8,
                bias: false,
                activation: Activation::None,
            },
        )
        .unwrap();
    let net = b.finish_with_loss(f).unwrap();
    let artifact = compile(
        &presets::single_precision(),
        &net,
        &CompileOptions::default(),
    )
    .unwrap();
    let reference = Executor::new(&net, 1).unwrap();
    let mut sim = FuncSim::from_artifact(&net, &artifact).unwrap();
    sim.import_params(&reference).unwrap();
    let _ = zoo::BENCHMARK_NAMES;
    (sim, vec![0.5f32; 144], vec![0.25f32; 8])
}

fn bench_tracing(c: &mut Criterion) {
    let (mut sim, image, golden) = bench_net();
    let mut g = c.benchmark_group("trace-overhead/functional-iteration");
    g.sample_size(30);
    g.bench_function("untraced-baseline", |b| {
        b.iter(|| sim.run_iteration(&image, &golden).expect("runs"))
    });
    g.bench_function("null-sink", |b| {
        b.iter(|| {
            let mut tracer = Tracer::disabled();
            let mut reg = MetricsRegistry::new();
            sim.run_iteration_traced(&image, &golden, &FaultPlan::none(), &mut tracer, &mut reg)
                .expect("runs")
        })
    });
    g.bench_function("vec-sink-recording", |b| {
        b.iter(|| {
            let mut tracer = Tracer::new(VecSink::new());
            let mut reg = MetricsRegistry::new();
            sim.run_iteration_traced(&image, &golden, &FaultPlan::none(), &mut tracer, &mut reg)
                .expect("runs")
        })
    });
    g.finish();
}

/// Best-of-N wall-clock time of `f`, in nanoseconds.
fn min_of_n<F: FnMut()>(n: usize, mut f: F) -> u128 {
    (0..n)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos()
        })
        .min()
        .unwrap_or(0)
}

fn assert_null_sink_is_free(c: &mut Criterion) {
    let _ = c;
    let (mut sim, image, golden) = bench_net();
    // Warm up both paths before timing.
    for _ in 0..3 {
        sim.run_iteration(&image, &golden).expect("runs");
    }
    let baseline = min_of_n(20, || {
        black_box(sim.run_iteration(&image, &golden).expect("runs"));
    });
    let disabled = min_of_n(20, || {
        let mut tracer = Tracer::disabled();
        let mut reg = MetricsRegistry::new();
        black_box(
            sim.run_iteration_traced(&image, &golden, &FaultPlan::none(), &mut tracer, &mut reg)
                .expect("runs"),
        );
    });
    let ratio = disabled as f64 / baseline.max(1) as f64;
    println!("null-sink / baseline min-of-20 ratio: {ratio:.3}");
    assert!(
        ratio < 1.5,
        "disabled tracing regressed the functional sim: {disabled} ns vs {baseline} ns"
    );
}

criterion_group!(benches, bench_tracing, assert_null_sink_is_free);
criterion_main!(benches);
