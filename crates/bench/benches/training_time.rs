//! Criterion bench: regenerates the training-time projection
//! (training-time).

use criterion::{criterion_group, criterion_main, Criterion};
use scaledeep::experiments;
use scaledeep_bench::SIM_SAMPLE_SIZE;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("training_time");
    g.sample_size(SIM_SAMPLE_SIZE);
    g.bench_function("training-time", |b| {
        b.iter(|| {
            let tables = experiments::run_by_id("training-time").expect("known experiment");
            assert!(!tables.is_empty());
            tables
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
