//! Criterion bench: regenerates fig1-style FLOP analysis across the zoo (fig01_flops).

use criterion::{criterion_group, criterion_main, Criterion};
use scaledeep::experiments;
use scaledeep_bench::SIM_SAMPLE_SIZE;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig01_flops");
    g.sample_size(SIM_SAMPLE_SIZE);
    g.bench_function("fig1", |b| {
        b.iter(|| {
            let tables = experiments::run_by_id("fig1").expect("known experiment");
            assert!(!tables.is_empty());
            tables
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
