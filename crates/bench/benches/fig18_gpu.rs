//! Criterion bench: regenerates GPU speedup comparison (fig18_gpu).

use criterion::{criterion_group, criterion_main, Criterion};
use scaledeep::experiments;
use scaledeep_bench::SIM_SAMPLE_SIZE;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig18_gpu");
    g.sample_size(SIM_SAMPLE_SIZE);
    g.bench_function("fig18", |b| {
        b.iter(|| {
            let tables = experiments::run_by_id("fig18").expect("known experiment");
            assert!(!tables.is_empty());
            tables
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
