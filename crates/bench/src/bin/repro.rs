//! `repro` — regenerates every table and figure of the ScaleDeep paper.
//!
//! Usage:
//!
//! ```text
//! repro                # run every experiment
//! repro fig16 fig18    # run selected experiments
//! repro --list         # list experiment ids
//! repro --net alexnet  # drill into one benchmark's mapping & pipeline
//! ```

use scaledeep::experiments::{run_by_id, EXPERIMENT_IDS};
use scaledeep::Session;
use scaledeep_dnn::zoo;

fn drill_into(name: &str) -> Result<(), String> {
    let net = zoo::by_name(name).ok_or_else(|| format!("unknown benchmark `{name}`"))?;
    println!("{net}");
    let session = Session::single_precision();
    let mapping = session.compile(&net).map_err(|e| e.to_string())?;
    println!(
        "mapping: {} ConvLayer cols on {} chip(s) / {} cluster(s); {} FcLayer cols\n",
        mapping.conv_cols_used(),
        mapping.chips_spanned(),
        mapping.clusters_spanned(),
        mapping.fc_cols_used()
    );
    let r = session.train(&net).map_err(|e| e.to_string())?;
    println!("training pipeline ({} replicas):", r.pipelines);
    for s in &r.stages {
        println!(
            "  {:24} {:>10} cycles/image{}",
            s.name,
            s.service_cycles,
            if s.bottleneck { "  <- bottleneck" } else { "" }
        );
    }
    println!(
        "\n{:.0} images/s, utilization {:.2}, {:.0} W, {:.1} GFLOPs/W",
        r.images_per_sec,
        r.pe_utilization,
        r.avg_power.total(),
        r.gflops_per_watt
    );
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for id in EXPERIMENT_IDS {
            println!("{id}");
        }
        return;
    }
    if let Some(pos) = args.iter().position(|a| a == "--net") {
        match args.get(pos + 1) {
            Some(name) => {
                if let Err(e) = drill_into(name) {
                    eprintln!("{e}");
                    std::process::exit(1);
                }
            }
            None => {
                eprintln!("--net requires a benchmark name");
                std::process::exit(1);
            }
        }
        return;
    }
    let ids: Vec<&str> = if args.is_empty() {
        EXPERIMENT_IDS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    let mut failed = false;
    for id in ids {
        match run_by_id(id) {
            Some(tables) => {
                for t in tables {
                    println!("{t}");
                }
            }
            None => {
                eprintln!("unknown experiment `{id}` (try --list)");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
