//! `repro` — regenerates every table and figure of the ScaleDeep paper.
//!
//! Run `repro --help` (or see [`USAGE`]) for the full subcommand and
//! gate listing.

use scaledeep::dse::{self, DseConfig, DseReport, Expansion};
use scaledeep::experiments::{run_by_id, EXPERIMENT_IDS};
use scaledeep::report::Table;
use scaledeep::{BenchReport, Session, TraceConfig};
use scaledeep_arch::{DesignPoint, Knob, KnobValue, ParamSpace, ALL_KNOBS};
use scaledeep_compiler::codegen::CompiledNetwork;
use scaledeep_compiler::FailedTiles;
use scaledeep_dnn::zoo;
use scaledeep_dnn::Layer;
use scaledeep_sim::fault::{FaultPlan, LinkFaults};
use scaledeep_sim::func::{ExecBackend, FuncSim};
use scaledeep_trace::{validate_chrome_trace, CategoryMask};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The full usage text, printed by `--help`. Every subcommand and every
/// CI gate the binary implements is enumerated here — when a new mode is
/// added, it is added to this listing in the same change.
const USAGE: &str = "\
repro — regenerates every table and figure of the ScaleDeep paper.

Experiments:
  repro                      run every experiment
  repro fig16 fig18          run selected experiments
  repro --list               list experiment ids

Drills:
  repro --net alexnet        drill into one benchmark's mapping & pipeline
  repro --degraded alexnet 2 remap around 2 dead columns and compare
  repro --trace out.json [--trace-net vgg_a] [--trace-filter stage,fault]
                             trace a training run: Chrome JSON + per-cycle CSV
  repro --sweep alexnet      run-kind sweep: compile/simulate split + cache ledger

Benchmark reports and gates (CI):
  repro --bench-json out.json --bench-net alexnet [--bench-kind training]
                             write the measured BENCH report
  repro --check BENCH_alexnet.json [--tolerance 0.05]
                             regression gate: re-run and diff vs the baseline
  repro par-check            gate: sharded node engine vs the sequential oracle
  repro serve-drill --seed 42 [--write-bench BENCH_serve-drill.json] [--summary]
                    [--stats-json stats.json]
                             seeded chaos drill (gate: exits nonzero on violation);
                             --stats-json writes the final server stats snapshot

Design-space exploration:
  repro dse [--net alexnet] [--kind training] [--suite dse]
            [--axis knob=v1,v2]... [--sample N --seed S]
            [--workers N] [--out BENCH_dse-<suite>.json]
                             sweep a parameter grid (or seeded sample) and
                             report the sample + its Pareto frontier
  repro dse --check BENCH_dse-smoke.json
                             gate: re-run the baseline's embedded sweep and
                             require a byte-identical document
  repro dse --knobs          list sweepable knob names

Job server:
  repro serve [--port 7878] [--workers 4] [--queue 16]
                             line-JSON job server over TCP
  repro watch [--port 7878] [--host 127.0.0.1] [--net cnn-s] [--jobs 3]
                             live client: submit watched jobs to a running
                             `repro serve`, stream their progress lines, and
                             finish with a server stats snapshot

Global flags:
  --tier interpreter|compiled  functional execution tier for --sweep,
                               --bench-json, and --check (tiers are
                               bit-identical; wall-clock only)
  --shards N                   parallel node-engine shard count (0 = auto);
                               never changes results — par-check enforces it
";

/// Runs every experiment in `ids` across a scoped worker pool. Each
/// experiment's tables are rendered into a private buffer and printed in
/// the original order once all workers join, so the output is
/// byte-identical to a sequential run. Returns `false` when any id is
/// unknown.
fn run_experiments(ids: &[&str]) -> bool {
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(ids.len().max(1));
    let next = AtomicUsize::new(0);
    let outputs: Vec<Mutex<Option<String>>> = ids.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                use std::fmt::Write;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(id) = ids.get(i) else { break };
                    if let Some(tables) = run_by_id(id) {
                        let mut buf = String::new();
                        for t in tables {
                            writeln!(buf, "{t}").expect("write to String cannot fail");
                        }
                        *outputs[i].lock().expect("no panics hold this lock") = Some(buf);
                    }
                }
            });
        }
    });
    let mut ok = true;
    for (id, slot) in ids.iter().zip(outputs) {
        match slot.into_inner().expect("workers joined") {
            Some(buf) => print!("{buf}"),
            None => {
                eprintln!("unknown experiment `{id}` (try --list)");
                ok = false;
            }
        }
    }
    ok
}

fn drill_into(name: &str) -> Result<(), String> {
    let net = zoo::by_name(name).ok_or_else(|| format!("unknown benchmark `{name}`"))?;
    println!("{net}");
    let session = Session::single_precision();
    let artifact = session.compile(&net).map_err(|e| e.to_string())?;
    let mapping = artifact.mapping();
    println!(
        "mapping: {} ConvLayer cols on {} chip(s) / {} cluster(s); {} FcLayer cols\n",
        mapping.conv_cols_used(),
        mapping.chips_spanned(),
        mapping.clusters_spanned(),
        mapping.fc_cols_used()
    );
    let r = session.train(&net).map_err(|e| e.to_string())?;
    println!("training pipeline ({} replicas):", r.pipelines);
    for s in &r.stages {
        println!(
            "  {:24} {:>10} cycles/image{}",
            s.name,
            s.service_cycles,
            if s.bottleneck { "  <- bottleneck" } else { "" }
        );
    }
    println!(
        "\n{:.0} images/s, utilization {:.2}, {:.0} W, {:.1} GFLOPs/W",
        r.images_per_sec,
        r.pe_utilization,
        r.avg_power.total(),
        r.gflops_per_watt
    );
    Ok(())
}

fn degraded_drill(name: &str, dead_cols: usize, shards: usize) -> Result<(), String> {
    let net = zoo::by_name(name).ok_or_else(|| format!("unknown benchmark `{name}`"))?;
    let session = Session::single_precision().with_shards(shards);
    let healthy = session.compile(&net).map_err(|e| e.to_string())?;
    let failed = FailedTiles::from_columns(0..dead_cols);
    let degraded = session
        .compile_degraded(&net, &failed)
        .map_err(|e| e.to_string())?;
    println!(
        "healthy:  {} cols on {} chip(s)",
        healthy.mapping().conv_cols_used(),
        healthy.mapping().chips_spanned()
    );
    println!(
        "degraded: {} cols on {} chip(s), routing around {:?}",
        degraded.mapping().conv_cols_used(),
        degraded.mapping().chips_spanned(),
        degraded.mapping().failed_cols()
    );
    let base = session.run_mapped(&healthy, scaledeep_sim::perf::RunKind::Training);
    let deg = session.run_mapped(&degraded, scaledeep_sim::perf::RunKind::Training);
    println!(
        "throughput: {:.0} -> {:.0} images/s ({:.1}% retained)",
        base.images_per_sec,
        deg.images_per_sec,
        100.0 * deg.images_per_sec / base.images_per_sec
    );
    // The faulted node-engine drill: both layouts under transient link
    // faults on the sharded engine, each checked against the sequential
    // oracle (the drill doubles as a determinism gate).
    let plan = FaultPlan::seeded(42).with_link_faults(LinkFaults {
        prob: 0.2,
        base_backoff: 16,
        max_retries: 4,
    });
    let kind = scaledeep_sim::perf::RunKind::Training;
    for (label, artifact) in [("healthy", &healthy), ("degraded", &degraded)] {
        let oracle = session.node_outcome_sequential(artifact, kind, &plan);
        let got = session.node_outcome(artifact, kind, &plan);
        if got != oracle {
            return Err(format!(
                "{label}: sharded node engine diverged from the sequential oracle"
            ));
        }
        println!(
            "{label} fault drill ({} shards): {} link retries, {} retry cycles — bit-identical to the sequential oracle",
            session.resolved_shards(),
            got.faults.link_retries,
            got.faults.retry_cycles
        );
    }
    Ok(())
}

/// Sweeps one benchmark through every run kind of a single session —
/// training, evaluation, and a traced training run — and reports where
/// the wall-clock went: compile time (the phase pipeline, first run only)
/// versus simulate time, plus the session's compile-cache ledger. With
/// the provenance-keyed cache the whole sweep compiles the network
/// exactly once. Ends with the functional drill: the same training
/// iteration on both execution tiers, wall-clocked head to head.
fn sweep(name: &str, tier: ExecBackend, shards: usize) -> Result<(), String> {
    use std::time::Instant;
    type RunFn<'a> = &'a dyn Fn() -> Result<f64, String>;
    let net = zoo::by_name(name).ok_or_else(|| format!("unknown benchmark `{name}`"))?;
    let session = Session::single_precision()
        .with_exec_backend(tier)
        .with_shards(shards);
    let runs: [(&str, RunFn); 3] = [
        ("train", &|| {
            session
                .train(&net)
                .map(|r| r.images_per_sec)
                .map_err(|e| e.to_string())
        }),
        ("evaluate", &|| {
            session
                .evaluate(&net)
                .map(|r| r.images_per_sec)
                .map_err(|e| e.to_string())
        }),
        ("train (traced)", &|| {
            session
                .run_traced(
                    &net,
                    scaledeep_sim::perf::RunKind::Training,
                    &TraceConfig::default(),
                )
                .map(|t| t.perf.images_per_sec)
                .map_err(|e| e.to_string())
        }),
    ];
    let mut total_nanos = 0u64;
    for (kind, run) in runs {
        let started = Instant::now();
        let images_per_sec = run()?;
        let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        total_nanos += nanos;
        println!("{name}: {kind:<15} {images_per_sec:>10.0} images/s  ({nanos} ns wall)");
    }
    let stats = session.cache_stats();
    let simulate_nanos = total_nanos.saturating_sub(stats.compile_nanos);
    println!(
        "wall-clock split: compile {} ns ({:.1}%), simulate {} ns ({:.1}%)",
        stats.compile_nanos,
        100.0 * stats.compile_nanos as f64 / total_nanos.max(1) as f64,
        simulate_nanos,
        100.0 * simulate_nanos as f64 / total_nanos.max(1) as f64,
    );
    println!(
        "compile cache: {} miss(es), {} hit(s) — {} run kinds, 1 pipeline run",
        stats.misses, stats.hits, 3
    );

    // The parallel node engine rides along on every sweep: the training
    // model on the sharded engine against the sequential oracle.
    let artifact = session.compile(&net).map_err(|e| e.to_string())?;
    let kind = scaledeep_sim::perf::RunKind::Training;
    let oracle = session.node_outcome_sequential(&artifact, kind, &FaultPlan::none());
    let sharded = session.node_outcome(&artifact, kind, &FaultPlan::none());
    if sharded != oracle {
        return Err(format!(
            "{name}: sharded node engine diverged from the sequential oracle"
        ));
    }
    println!(
        "node engine ({} shards): makespan {} cycles, {} images, {} syncs — bit-identical to the sequential oracle",
        session.resolved_shards(),
        sharded.makespan,
        sharded.images_done,
        sharded.syncs
    );

    // The functional drill: the same training iteration on the
    // interpreter tier and on the pre-decoded micro-op tier. Full-scale
    // benchmarks that exceed the functional target fall back to their
    // `-func` proxy (same layer cadence at functional scale).
    let func_net = match session.compile(&net) {
        Ok(a) if a.functional().is_ok() => Some(net),
        _ => zoo::by_name(&format!("{name}-func")),
    };
    match func_net {
        Some(func_net) => functional_drill(&func_net),
        None => {
            println!("functional drill: skipped (no functional compile, no `{name}-func` proxy)");
            Ok(())
        }
    }
}

/// Timed iterations per tier in the functional drill — enough that the
/// iteration loop, not simulator setup, dominates the wall-clock. Each
/// tier additionally runs one untimed warm-up iteration first (caches,
/// branch predictors, lazily-grown scratch), which still participates in
/// the cross-tier identity check.
const DRILL_ITERATIONS: u64 = 5;

/// Runs one warm-up plus [`DRILL_ITERATIONS`] timed training iterations
/// of `net` on each execution tier, verifies the tiers' statistics are
/// identical, and reports the per-tier wall-clock and the resulting
/// speedup.
fn functional_drill(net: &scaledeep_dnn::Network) -> Result<(), String> {
    use std::time::Instant;
    let session = Session::single_precision();
    let artifact = session.compile(net).map_err(|e| e.to_string())?;
    let compiled = artifact.functional().map_err(|e| e.to_string())?;
    let (image, golden) = drill_io(net, compiled)?;
    let reference = scaledeep_tensor::Executor::new(net, 0xC0FFEE).map_err(|e| format!("{e:?}"))?;
    let mut walls = [0u64; 2];
    let mut runs = Vec::new();
    for (i, tier) in [ExecBackend::Interpreter, ExecBackend::Compiled]
        .into_iter()
        .enumerate()
    {
        let mut fsim = FuncSim::from_artifact(net, &artifact)
            .map_err(|e| e.to_string())?
            .with_backend(tier);
        fsim.import_params(&reference).map_err(|e| e.to_string())?;
        let mut stats = Vec::new();
        stats.push(
            fsim.run_iteration(&image, &golden)
                .map_err(|e| e.to_string())?,
        );
        let started = Instant::now();
        for _ in 0..DRILL_ITERATIONS {
            stats.push(
                fsim.run_iteration(&image, &golden)
                    .map_err(|e| e.to_string())?,
            );
        }
        walls[i] = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        println!(
            "{}: functional ({:<11}) {:>9} insts  {:>9} cycles  {:>6} stalls  ({} ns wall, {DRILL_ITERATIONS} iterations)",
            net.name(),
            tier.name(),
            stats[0].instructions,
            stats[0].cycles,
            stats[0].stalls,
            walls[i],
        );
        runs.push(stats);
    }
    if runs[0] != runs[1] {
        return Err("execution tiers DIVERGED: per-iteration statistics differ".to_string());
    }
    println!(
        "tiers bit-identical across {DRILL_ITERATIONS} iterations; compiled tier speedup {:.2}x",
        walls[0] as f64 / walls[1].max(1) as f64
    );
    Ok(())
}

/// The constant iteration inputs the drill feeds both tiers: sized from
/// the compiled layout's input and golden buffers (mirrors the session's
/// internal convention; values are arbitrary — cycle counts are
/// data-independent and both tiers see the same words).
fn drill_io(
    net: &scaledeep_dnn::Network,
    compiled: &CompiledNetwork,
) -> Result<(Vec<f32>, Vec<f32>), String> {
    let input_len = compiled.buffers[net.input().id().index()]
        .output
        .map(|loc| loc.len as usize)
        .ok_or("input layer has no output buffer")?;
    let golden_len = net
        .layers()
        .find(|n| matches!(n.layer(), Layer::Loss))
        .and_then(|n| compiled.buffers[n.id().index()].golden)
        .map(|loc| loc.len as usize)
        .ok_or("network has no loss head; a training iteration needs one")?;
    Ok((vec![0.5; input_len], vec![0.0; golden_len]))
}

/// Traces a training run of `name` through the performance pipeline,
/// writing the Chrome/Perfetto JSON to `path` and the per-cycle CSV next
/// to it, then self-validates the JSON and prints the metrics report.
fn trace_run(name: &str, path: &str, filter: CategoryMask) -> Result<(), String> {
    let net = zoo::by_name(name).ok_or_else(|| format!("unknown benchmark `{name}`"))?;
    let cfg = TraceConfig {
        filter,
        ..TraceConfig::default()
    };
    let session = Session::single_precision();
    let traced = session
        .run_traced(&net, scaledeep_sim::perf::RunKind::Training, &cfg)
        .map_err(|e| e.to_string())?;

    let json = traced.trace.chrome_trace();
    let summary = validate_chrome_trace(&json)
        .map_err(|e| format!("generated trace failed validation: {e}"))?;
    std::fs::write(path, &json).map_err(|e| format!("writing {path}: {e}"))?;
    let csv_path = csv_sidecar_path(path);
    std::fs::write(&csv_path, traced.trace.cycle_csv())
        .map_err(|e| format!("writing {csv_path}: {e}"))?;

    println!(
        "{name}: {} events on {} tracks ({} spans, {} instants, {} dropped)",
        traced.trace.events.len(),
        summary.tracks,
        summary.spans,
        summary.instants,
        traced.trace.dropped
    );
    println!("wrote {path} (chrome://tracing) and {csv_path}\n");
    println!("{}", traced.trace.metrics_report());
    Ok(())
}

/// The per-cycle CSV always rides next to a `--trace` JSON output:
/// `out.json -> out.csv`, and any other extension just gains `.csv`.
fn csv_sidecar_path(path: &str) -> String {
    match path.strip_suffix(".json") {
        Some(stem) => format!("{stem}.csv"),
        None => format!("{path}.csv"),
    }
}

/// `repro serve`: binds the fault-tolerant job server to a local TCP
/// port and serves the line-delimited JSON protocol until killed. One
/// request object per line in, one typed reply/error object per line
/// out, in order, per connection.
fn serve(port: u16, workers: usize, queue_capacity: usize, shards: usize) -> Result<(), String> {
    use scaledeep_serve::{Server, ServerConfig};
    let cfg = ServerConfig {
        workers,
        queue_capacity,
        shards,
        ..ServerConfig::default()
    };
    let listener = std::net::TcpListener::bind(("127.0.0.1", port))
        .map_err(|e| format!("binding 127.0.0.1:{port}: {e}"))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    let server = Server::start(Session::single_precision(), cfg);
    println!(
        "serving on {addr} ({} workers, queue capacity {}, default deadline {} ms, {} node-engine shards)",
        cfg.workers,
        cfg.queue_capacity,
        cfg.default_deadline_ms,
        if cfg.shards == 0 { "auto".to_string() } else { cfg.shards.to_string() }
    );
    println!(r#"example: {{"tenant":"t0","op":"simulate","network":"alexnet","kind":"training"}}"#);
    server.serve_tcp(&listener).map_err(|e| e.to_string())
}

/// `repro watch`: the live telemetry client. Connects to a running
/// `repro serve`, submits `jobs` progress-subscribed simulate jobs (one
/// tenant each from a fixed rotation) plus a final `stats` request, then
/// renders the interleaved per-job progress lines as they arrive, a
/// per-job summary table, and the server-wide stats snapshot.
fn watch(host: &str, port: u16, net: &str, jobs: usize) -> Result<(), String> {
    use scaledeep_serve::protocol::{self, ServerLine};
    use scaledeep_serve::{JobKind, JobRequest, StatValue};
    use std::io::{BufRead, BufReader, Write as _};
    let tenants = ["alpha", "beta", "gamma"];
    let addr = format!("{host}:{port}");
    let stream = std::net::TcpStream::connect(&addr)
        .map_err(|e| format!("connecting {addr} (is `repro serve` running?): {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    for i in 0..jobs {
        let req = JobRequest::new(
            tenants[i % tenants.len()],
            JobKind::Simulate {
                network: net.into(),
                kind: scaledeep_sim::perf::RunKind::Training,
            },
        )
        .with_progress();
        writeln!(writer, "{}", protocol::request_to_json(&req)).map_err(|e| e.to_string())?;
    }
    writeln!(writer, "{}", protocol::stats_request_json()).map_err(|e| e.to_string())?;
    writer.flush().map_err(|e| e.to_string())?;
    println!("watching {addr}: {jobs} `{net}` job(s) + stats");

    // One row per job id, in arrival order.
    let mut table_rows: Vec<WatchRow> = Vec::new();
    let mut finished = 0usize;
    for line in BufReader::new(stream).lines() {
        let line = line.map_err(|e| format!("reading {addr}: {e}"))?;
        match protocol::server_line_from_json(&line).map_err(|e| format!("bad line: {e}"))? {
            ServerLine::Progress(ev) => {
                let what = match (ev.label, ev.value) {
                    (Some(label), Some(v)) => format!("{} {label} #{v}", ev.kind),
                    (Some(label), None) => format!("{} {label}", ev.kind),
                    (None, Some(v)) => format!("{} {v}", ev.kind),
                    (None, None) => ev.kind.clone(),
                };
                println!(
                    "  job {} ({:<6}) seq {:>3}  cycle {:>10}  {:<24} syncs={} faults={} retries={}{}",
                    ev.job,
                    ev.tenant,
                    ev.seq,
                    ev.cycle,
                    what,
                    ev.syncs,
                    ev.faults,
                    ev.retries,
                    if ev.dropped > 0 {
                        format!("  ({} dropped)", ev.dropped)
                    } else {
                        String::new()
                    }
                );
                let row = match table_rows.iter_mut().find(|r| r.job == ev.job) {
                    Some(row) => row,
                    None => {
                        table_rows.push(WatchRow::new(ev.job, ev.tenant.clone()));
                        table_rows.last_mut().expect("just pushed")
                    }
                };
                row.updates += 1;
                row.dropped = ev.dropped;
                row.syncs = ev.syncs;
                row.faults = ev.faults;
                row.retries = ev.retries;
            }
            ServerLine::Result(result) => {
                finished += 1;
                let outcome = match &result {
                    Ok(reply) => format!("{reply:?}"),
                    Err(e) => format!("error: {e}"),
                };
                // Responses arrive in submission order; a job that never
                // streamed (e.g. rejected at admission) gets its own row.
                match table_rows.get_mut(finished - 1) {
                    Some(row) => row.outcome = outcome,
                    None => {
                        let mut row = WatchRow::new(0, "?".into());
                        row.outcome = outcome;
                        table_rows.push(row);
                    }
                }
            }
            ServerLine::Stats(snap) => {
                let mut t = Table::new("server stats snapshot")
                    .headers(["metric", "count", "p50", "p99", "value"]);
                for (name, v) in &snap.metrics {
                    match v {
                        StatValue::Counter(c) => t.row([
                            name.clone(),
                            "-".into(),
                            "-".into(),
                            "-".into(),
                            c.to_string(),
                        ]),
                        StatValue::Gauge(g) => t.row([
                            name.clone(),
                            "-".into(),
                            "-".into(),
                            "-".into(),
                            format!("{g:.0}"),
                        ]),
                        StatValue::Hist {
                            count, p50, p99, ..
                        } => t.row([
                            name.clone(),
                            count.to_string(),
                            format!("{p50:.0}"),
                            format!("{p99:.0}"),
                            "-".into(),
                        ]),
                    };
                }
                print_watch_summary(&table_rows);
                print!("{t}");
                return Ok(());
            }
        }
    }
    Err(format!(
        "{addr} closed after {finished} of {jobs} job(s) without answering stats"
    ))
}

/// One `repro watch` summary row: the running progress totals and final
/// outcome of a watched job.
struct WatchRow {
    job: u64,
    tenant: String,
    updates: u64,
    dropped: u64,
    syncs: u64,
    faults: u64,
    retries: u64,
    outcome: String,
}

impl WatchRow {
    fn new(job: u64, tenant: String) -> Self {
        Self {
            job,
            tenant,
            updates: 0,
            dropped: 0,
            syncs: 0,
            faults: 0,
            retries: 0,
            outcome: "…".into(),
        }
    }
}

/// The per-job half of the `repro watch` output.
fn print_watch_summary(rows: &[WatchRow]) {
    let mut t = Table::new("watched jobs").headers([
        "job", "tenant", "updates", "dropped", "syncs", "faults", "retries", "outcome",
    ]);
    for r in rows {
        t.row([
            r.job.to_string(),
            r.tenant.clone(),
            r.updates.to_string(),
            r.dropped.to_string(),
            r.syncs.to_string(),
            r.faults.to_string(),
            r.retries.to_string(),
            r.outcome.clone(),
        ]);
    }
    print!("{t}");
}

/// `repro serve-drill`: runs the seeded chaos drill, prints the
/// degradation table and deterministic verdict, optionally writes the
/// BENCH JSON and/or the final server stats snapshot (the CI artifact),
/// and exits nonzero when any drill invariant is violated.
fn serve_drill(
    seed: u64,
    write_bench: Option<&str>,
    stats_json: Option<&str>,
    summary_only: bool,
) -> Result<(), String> {
    let cfg = scaledeep_serve::DrillConfig {
        seed,
        ..scaledeep_serve::DrillConfig::default()
    };
    let report = scaledeep_serve::run_drill(&cfg);
    if summary_only {
        print!("{}", report.deterministic_summary());
    } else {
        print!("{}", report.render());
    }
    if let Some(path) = write_bench {
        let json = report.to_bench_json();
        std::fs::write(path, &json).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {path}");
    }
    if let Some(path) = stats_json {
        let json = report.stats_json();
        std::fs::write(path, &json).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {path}");
    }
    let violated = report.invariants();
    if violated.is_empty() {
        Ok(())
    } else {
        Err(format!("{} drill invariant(s) violated", violated.len()))
    }
}

/// `repro par-check`: the CI gate over the sharded node engine. Runs the
/// whole-node model of each small benchmark — fault-free and under
/// transient link faults, training and evaluation — at shard counts 1,
/// 2, 4, and the resolved `--shards` count, and verifies every outcome
/// is bit-identical to the sequential oracle. Exits nonzero on the first
/// divergence.
fn par_check(shards: usize) -> Result<(), String> {
    use scaledeep_sim::perf::RunKind;
    let session = Session::single_precision().with_shards(shards);
    let plans = [
        ("fault-free", FaultPlan::none()),
        (
            "link-faults",
            FaultPlan::seeded(42).with_link_faults(LinkFaults {
                prob: 0.3,
                base_backoff: 8,
                max_retries: 4,
            }),
        ),
    ];
    let mut checked = 0u32;
    for name in ["alexnet", "cnn-s"] {
        let net = zoo::by_name(name).ok_or_else(|| format!("unknown benchmark `{name}`"))?;
        let artifact = session.compile(&net).map_err(|e| e.to_string())?;
        for (plan_name, plan) in &plans {
            for kind in [RunKind::Training, RunKind::Evaluation] {
                let oracle = session.node_outcome_sequential(&artifact, kind, plan);
                for n in [1, 2, 4, session.resolved_shards().max(1)] {
                    let got = session
                        .clone()
                        .with_shards(n)
                        .node_outcome(&artifact, kind, plan);
                    if got != oracle {
                        return Err(format!(
                            "{name} {kind:?} {plan_name}: {n}-shard run diverged from the sequential oracle"
                        ));
                    }
                    checked += 1;
                }
            }
        }
        println!("{name}: sharded runs bit-identical to the sequential oracle");
    }
    println!("par-check: {checked} sharded runs verified");
    Ok(())
}

/// Parses one `--axis` spec: `knob=v1,v2,...` with kebab-case knob
/// names and `single`/`half` or finite numbers as values.
fn parse_axis(spec: &str) -> Result<(Knob, Vec<KnobValue>), String> {
    let (name, values) = spec
        .split_once('=')
        .ok_or_else(|| format!("--axis expects knob=v1,v2,..., got `{spec}`"))?;
    let knob = Knob::parse(name).map_err(|e| e.to_string())?;
    let parsed: Result<Vec<KnobValue>, String> = values
        .split(',')
        .map(|v| KnobValue::parse(v).map_err(|e| e.to_string()))
        .collect();
    let parsed = parsed?;
    if parsed.is_empty() {
        return Err(format!("--axis {name} needs at least one value"));
    }
    Ok((knob, parsed))
}

/// `repro dse`: expands the requested parameter space around the paper's
/// Figure 14 base point, evaluates every candidate in parallel, prints
/// the sample with its Pareto frontier, and optionally writes the
/// deterministic `BENCH_dse-<suite>.json` document.
fn dse_cmd(args: &[String], shards: usize) -> Result<(), String> {
    if args.iter().any(|a| a == "--knobs") {
        for knob in ALL_KNOBS {
            println!("{knob}");
        }
        return Ok(());
    }
    let flag = |name: &str| -> Option<&String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|p| args.get(p + 1))
    };
    let workers = match flag("--workers") {
        Some(s) => s
            .parse::<usize>()
            .map_err(|_| format!("--workers requires a non-negative integer, got `{s}`"))?,
        None => 0,
    };
    if let Some(baseline) = flag("--check") {
        return dse_check(baseline, workers, shards);
    }
    let net_name = flag("--net").map(String::as_str).unwrap_or("alexnet");
    let net = zoo::by_name(net_name).ok_or_else(|| format!("unknown benchmark `{net_name}`"))?;
    let kind = parse_kind(flag("--kind").map(String::as_str).unwrap_or("training"))?;
    let suite = flag("--suite").map(String::as_str).unwrap_or("dse");
    let mut space = ParamSpace::new(DesignPoint::figure14_sp());
    for (i, arg) in args.iter().enumerate() {
        if arg == "--axis" {
            let spec = args
                .get(i + 1)
                .ok_or("--axis requires a knob=v1,v2,... spec")?;
            let (knob, values) = parse_axis(spec)?;
            space = space.axis(knob, values);
        }
    }
    let expansion = match flag("--sample") {
        Some(s) => {
            let n = s
                .parse::<u64>()
                .map_err(|_| format!("--sample requires a non-negative integer, got `{s}`"))?;
            let seed = match flag("--seed") {
                Some(s) => s
                    .parse::<u64>()
                    .map_err(|_| format!("--seed requires a non-negative integer, got `{s}`"))?,
                None => 0,
            };
            Expansion::Sample { n, seed }
        }
        None => Expansion::Grid,
    };
    let cfg = DseConfig {
        suite: suite.to_string(),
        kind,
        expansion,
        workers,
        shards,
    };
    let report = dse::run(&Session::single_precision(), &net, &space, &cfg);
    print_dse(&report);
    if let Some(out) = flag("--out") {
        let text = report.to_json();
        DseReport::from_json(&text)
            .map_err(|e| format!("generated report failed validation: {e}"))?;
        std::fs::write(out, &text).map_err(|e| format!("writing {out}: {e}"))?;
        println!("wrote {out} (schema v{})", report.schema_version);
    }
    Ok(())
}

/// Renders a DSE report as the summary table plus the frontier line.
fn print_dse(report: &DseReport) {
    let mut t = Table::new(format!(
        "dse {} ({}, {}): {} point(s), {} unique compile(s)",
        report.suite,
        report.network,
        report.kind,
        report.points.len(),
        report.unique_compiles
    ))
    .headers(["label", "img/s", "GFLOPs/W", "J/img", "pareto"]);
    for (i, p) in report.points.iter().enumerate() {
        t.row([
            p.label.clone(),
            format!("{:.0}", p.images_per_sec),
            format!("{:.1}", p.gflops_per_watt),
            format!("{:.4}", p.joules_per_image),
            if report.frontier.contains(&(i as u64)) {
                "*".to_string()
            } else {
                String::new()
            },
        ]);
    }
    print!("{t}");
    for inf in &report.infeasible {
        println!("infeasible: {} — {}", inf.label, inf.error);
    }
    println!(
        "frontier: {} of {} point(s) non-dominated",
        report.frontier.len(),
        report.points.len()
    );
}

/// `repro dse --check`: re-runs the baseline's embedded sweep (base
/// point, axes, expansion — no side channel) and requires the fresh
/// document to be byte-identical. On mismatch, prints the first
/// differing field and fails.
fn dse_check(path: &str, workers: usize, shards: usize) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let baseline = DseReport::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
    let net = zoo::by_name(&baseline.network)
        .ok_or_else(|| format!("{path}: unknown benchmark `{}`", baseline.network))?;
    let cfg = DseConfig {
        suite: baseline.suite.clone(),
        kind: baseline.run_kind()?,
        expansion: baseline.expansion,
        workers,
        shards,
    };
    let fresh = dse::run(&Session::single_precision(), &net, &baseline.space(), &cfg);
    let fresh_text = fresh.to_json();
    if fresh_text == text {
        println!(
            "{}: byte-identical to {path} ({} point(s), frontier of {})",
            baseline.suite,
            baseline.points.len(),
            baseline.frontier.len()
        );
        return Ok(());
    }
    let a = scaledeep_trace::json::parse(&fresh_text).map_err(|e| e.to_string())?;
    let b = scaledeep_trace::json::parse(&text).map_err(|e| e.to_string())?;
    match dse::first_difference(&a, &b) {
        Some(diff) => Err(format!("{path}: re-run diverged — {diff}")),
        None => Err(format!(
            "{path}: re-run is semantically equal but not byte-identical \
             (formatting drift in the renderer?)"
        )),
    }
}

fn parse_kind(s: &str) -> Result<scaledeep_sim::perf::RunKind, String> {
    match s {
        "training" => Ok(scaledeep_sim::perf::RunKind::Training),
        "evaluation" => Ok(scaledeep_sim::perf::RunKind::Evaluation),
        other => Err(format!(
            "unknown run kind `{other}` (expected training|evaluation)"
        )),
    }
}

/// Builds a session matching a report's stated precision.
fn session_for_precision(precision: &str) -> Result<Session, String> {
    match precision {
        "single" => Ok(Session::single_precision()),
        "half" => Ok(Session::half_precision()),
        other => Err(format!("unknown precision `{other}`")),
    }
}

/// `--bench-json`: runs `name` traced, joins the trace with the compile's
/// provenance and the analytic costs into the versioned BENCH report, and
/// writes it to `out` (validating it through the schema reader first).
fn bench_json(name: &str, kind_str: &str, out: &str, tier: ExecBackend) -> Result<(), String> {
    let net = zoo::by_name(name).ok_or_else(|| format!("unknown benchmark `{name}`"))?;
    let kind = parse_kind(kind_str)?;
    let session = Session::single_precision().with_exec_backend(tier);
    let report = session
        .bench_report(&net, kind)
        .map_err(|e| e.to_string())?;
    let text = report.to_json();
    BenchReport::from_json(&text)
        .map_err(|e| format!("generated report failed validation: {e}"))?;
    std::fs::write(out, &text).map_err(|e| format!("writing {out}: {e}"))?;

    println!(
        "{name} ({kind_str}): {} busy cycles over {} stages, {:.0} images/s, {:.3} J/image",
        report.totals.busy_cycles,
        report.layers.len(),
        report.totals.images_per_sec,
        report.totals.joules_per_image
    );
    for l in &report.layers {
        println!(
            "  {:24} {:>12} cycles  fp/bp/wg {:>3.0}/{:>2.0}/{:>2.0}%  {:9}-bound  {:.4} J",
            l.name,
            l.busy_cycles,
            100.0 * l.fp_cycles as f64 / l.busy_cycles.max(1) as f64,
            100.0 * l.bp_cycles as f64 / l.busy_cycles.max(1) as f64,
            100.0 * l.wg_cycles as f64 / l.busy_cycles.max(1) as f64,
            l.bound,
            l.joules_per_image
        );
    }
    println!("wrote {out} (schema v{})", report.schema_version);
    Ok(())
}

/// `--check`: re-runs the baseline's network/kind/precision on this tree
/// and diffs the fresh report against the baseline with a relative
/// tolerance. Returns the regression messages (empty = gate passes).
fn bench_check(
    baseline_path: &str,
    tolerance: f64,
    tier: ExecBackend,
) -> Result<Vec<String>, String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("reading {baseline_path}: {e}"))?;
    let baseline = BenchReport::from_json(&text).map_err(|e| format!("{baseline_path}: {e}"))?;
    let net = zoo::by_name(&baseline.network)
        .ok_or_else(|| format!("{baseline_path}: unknown benchmark `{}`", baseline.network))?;
    let kind = parse_kind(&baseline.kind)?;
    let session = session_for_precision(&baseline.precision)?.with_exec_backend(tier);
    let fresh = session
        .bench_report(&net, kind)
        .map_err(|e| e.to_string())?;
    if fresh.provenance != baseline.provenance {
        println!(
            "note: provenance {} vs baseline {} — the compile inputs changed",
            fresh.provenance, baseline.provenance
        );
    }
    let fails = fresh.check_against(&baseline, tolerance);
    if fails.is_empty() {
        println!(
            "{}: within {:.1}% of {baseline_path} ({} metrics checked across {} layers)",
            baseline.network,
            100.0 * tolerance,
            15 + 2 * baseline.layers.len(),
            baseline.layers.len()
        );
    }
    Ok(fails)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return;
    }
    let tier = match args.iter().position(|a| a == "--tier") {
        Some(pos) => {
            let Some(name) = args.get(pos + 1) else {
                eprintln!("--tier requires interpreter|compiled");
                std::process::exit(1);
            };
            let Some(tier) = ExecBackend::parse(name) else {
                eprintln!("unknown tier `{name}` (expected interpreter|compiled)");
                std::process::exit(1);
            };
            args.drain(pos..pos + 2);
            tier
        }
        None => ExecBackend::Interpreter,
    };
    let shards = match args.iter().position(|a| a == "--shards") {
        Some(pos) => {
            let parsed = args.get(pos + 1).and_then(|s| s.parse::<usize>().ok());
            let Some(n) = parsed else {
                eprintln!("--shards requires a non-negative integer (0 = auto)");
                std::process::exit(1);
            };
            args.drain(pos..pos + 2);
            n
        }
        None => 0,
    };
    if args.iter().any(|a| a == "--list") {
        for id in EXPERIMENT_IDS {
            println!("{id}");
        }
        return;
    }
    let flag_value = |args: &[String], flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|p| args.get(p + 1))
            .cloned()
    };
    let parse_or_die = |value: Option<String>, flag: &str, default: u64| -> u64 {
        match value {
            None => default,
            Some(s) => s.parse().unwrap_or_else(|_| {
                eprintln!("{flag} requires a non-negative integer, got `{s}`");
                std::process::exit(1);
            }),
        }
    };
    if args.first().map(String::as_str) == Some("serve") {
        let port = parse_or_die(flag_value(&args, "--port"), "--port", 7878);
        let Ok(port) = u16::try_from(port) else {
            eprintln!("--port must fit in 16 bits, got {port}");
            std::process::exit(1);
        };
        let workers = parse_or_die(flag_value(&args, "--workers"), "--workers", 4) as usize;
        let queue = parse_or_die(flag_value(&args, "--queue"), "--queue", 16) as usize;
        if let Err(e) = serve(port, workers.max(1), queue.max(1), shards) {
            eprintln!("{e}");
            std::process::exit(1);
        }
        return;
    }
    if args.first().map(String::as_str) == Some("watch") {
        let port = parse_or_die(flag_value(&args, "--port"), "--port", 7878);
        let Ok(port) = u16::try_from(port) else {
            eprintln!("--port must fit in 16 bits, got {port}");
            std::process::exit(1);
        };
        let host = flag_value(&args, "--host").unwrap_or_else(|| "127.0.0.1".into());
        let net = flag_value(&args, "--net").unwrap_or_else(|| "cnn-s".into());
        let jobs = parse_or_die(flag_value(&args, "--jobs"), "--jobs", 3) as usize;
        if let Err(e) = watch(&host, port, &net, jobs.max(1)) {
            eprintln!("{e}");
            std::process::exit(1);
        }
        return;
    }
    if args.first().map(String::as_str) == Some("dse") {
        if let Err(e) = dse_cmd(&args[1..], shards) {
            eprintln!("{e}");
            std::process::exit(1);
        }
        return;
    }
    if args.first().map(String::as_str) == Some("par-check") {
        if let Err(e) = par_check(shards) {
            eprintln!("{e}");
            std::process::exit(1);
        }
        return;
    }
    if args.first().map(String::as_str) == Some("serve-drill") {
        let seed = parse_or_die(flag_value(&args, "--seed"), "--seed", 0);
        let write_bench = flag_value(&args, "--write-bench");
        let stats_json = flag_value(&args, "--stats-json");
        let summary_only = args.iter().any(|a| a == "--summary");
        if let Err(e) = serve_drill(
            seed,
            write_bench.as_deref(),
            stats_json.as_deref(),
            summary_only,
        ) {
            eprintln!("{e}");
            std::process::exit(1);
        }
        return;
    }
    if let Some(pos) = args.iter().position(|a| a == "--bench-json") {
        let Some(out) = args.get(pos + 1) else {
            eprintln!("--bench-json requires an output path");
            std::process::exit(1);
        };
        let name = args
            .iter()
            .position(|a| a == "--bench-net")
            .and_then(|p| args.get(p + 1))
            .map(String::as_str)
            .unwrap_or("alexnet");
        let kind = args
            .iter()
            .position(|a| a == "--bench-kind")
            .and_then(|p| args.get(p + 1))
            .map(String::as_str)
            .unwrap_or("training");
        if let Err(e) = bench_json(name, kind, out, tier) {
            eprintln!("{e}");
            std::process::exit(1);
        }
        return;
    }
    if let Some(pos) = args.iter().position(|a| a == "--check") {
        let Some(baseline) = args.get(pos + 1) else {
            eprintln!("--check requires a baseline BENCH json path");
            std::process::exit(1);
        };
        let tolerance = match args
            .iter()
            .position(|a| a == "--tolerance")
            .and_then(|p| args.get(p + 1))
        {
            Some(s) => match s.parse::<f64>() {
                Ok(t) if t >= 0.0 => t,
                _ => {
                    eprintln!("--tolerance requires a non-negative number, got `{s}`");
                    std::process::exit(1);
                }
            },
            None => 0.05,
        };
        match bench_check(baseline, tolerance, tier) {
            Ok(fails) if fails.is_empty() => {}
            Ok(fails) => {
                for f in &fails {
                    eprintln!("regression: {f}");
                }
                eprintln!("{} regression(s) vs {baseline}", fails.len());
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
        return;
    }
    if let Some(pos) = args.iter().position(|a| a == "--trace") {
        let Some(path) = args.get(pos + 1) else {
            eprintln!("--trace requires an output path");
            std::process::exit(1);
        };
        let name = args
            .iter()
            .position(|a| a == "--trace-net")
            .and_then(|p| args.get(p + 1))
            .map(String::as_str)
            .unwrap_or("alexnet");
        let filter = match args
            .iter()
            .position(|a| a == "--trace-filter")
            .and_then(|p| args.get(p + 1))
        {
            Some(spec) => match CategoryMask::parse_list(spec) {
                Ok(mask) => mask,
                Err(e) => {
                    eprintln!("--trace-filter: {e}");
                    std::process::exit(1);
                }
            },
            None => CategoryMask::all(),
        };
        if let Err(e) = trace_run(name, path, filter) {
            eprintln!("{e}");
            std::process::exit(1);
        }
        return;
    }
    if let Some(pos) = args.iter().position(|a| a == "--sweep") {
        let name = args.get(pos + 1).map(String::as_str).unwrap_or("alexnet");
        if let Err(e) = sweep(name, tier, shards) {
            eprintln!("{e}");
            std::process::exit(1);
        }
        return;
    }
    if let Some(pos) = args.iter().position(|a| a == "--degraded") {
        let name = args.get(pos + 1).map(String::as_str).unwrap_or("alexnet");
        let dead = args
            .get(pos + 2)
            .and_then(|s| s.parse::<usize>().ok())
            .unwrap_or(1);
        if let Err(e) = degraded_drill(name, dead, shards) {
            eprintln!("{e}");
            std::process::exit(1);
        }
        return;
    }
    if let Some(pos) = args.iter().position(|a| a == "--net") {
        match args.get(pos + 1) {
            Some(name) => {
                if let Err(e) = drill_into(name) {
                    eprintln!("{e}");
                    std::process::exit(1);
                }
            }
            None => {
                eprintln!("--net requires a benchmark name");
                std::process::exit(1);
            }
        }
        return;
    }
    let ids: Vec<&str> = if args.is_empty() {
        EXPERIMENT_IDS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    if !run_experiments(&ids) {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_sidecar_replaces_json_extension() {
        assert_eq!(csv_sidecar_path("out.json"), "out.csv");
        assert_eq!(csv_sidecar_path("a/b/trace.json"), "a/b/trace.csv");
    }

    #[test]
    fn csv_sidecar_appends_for_other_extensions() {
        assert_eq!(csv_sidecar_path("out.trace"), "out.trace.csv");
        assert_eq!(csv_sidecar_path("out"), "out.csv");
        // `.json` must be a suffix, not merely present.
        assert_eq!(csv_sidecar_path("out.json.bak"), "out.json.bak.csv");
    }

    #[test]
    fn run_kinds_parse() {
        assert!(parse_kind("training").is_ok());
        assert!(parse_kind("evaluation").is_ok());
        assert!(parse_kind("Training").is_err());
    }

    #[test]
    fn axis_specs_parse() {
        let (knob, values) = parse_axis("clusters=1,2,4").expect("parses");
        assert_eq!(knob, Knob::Clusters);
        assert_eq!(values.len(), 3);
        let (knob, values) = parse_axis("precision=single,half").expect("parses");
        assert_eq!(knob, Knob::Precision);
        assert_eq!(values.len(), 2);
        assert!(parse_axis("clusters").is_err());
        assert!(parse_axis("no-such-knob=1").is_err());
        assert!(parse_axis("clusters=abc").is_err());
    }

    #[test]
    fn usage_names_every_subcommand_and_gate() {
        for needle in [
            "serve",
            "serve-drill",
            "watch",
            "--stats-json",
            "par-check",
            "dse",
            "--check",
            "--bench-json",
            "--sweep",
            "--degraded",
            "--trace",
            "--list",
            "--tier",
            "--shards",
        ] {
            assert!(USAGE.contains(needle), "usage text lacks `{needle}`");
        }
    }
}
