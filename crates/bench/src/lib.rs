//! Benchmark-harness support crate: the `repro` binary and the Criterion
//! benches live here; each bench regenerates one paper figure's data
//! (DESIGN.md carries the experiment index).

#![forbid(unsafe_code)]

/// Criterion sample size used by the simulation-heavy benches — each
/// iteration runs full pipeline simulations, so a small sample keeps
/// `cargo bench` latency reasonable while still detecting regressions.
pub const SIM_SAMPLE_SIZE: usize = 10;
