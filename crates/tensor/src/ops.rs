//! Reference layer kernels: forward, input-gradient (BP) and
//! weight-gradient (WG) implementations for every layer type.
//!
//! All kernels are direct loop implementations of the textbook definitions;
//! they are the crate's source of truth and are cross-checked by finite
//! differences in the test suite.

mod act;
mod conv;
mod eltwise;
mod fc;
mod pool;

pub use act::{activation_backward, activation_forward};
pub use conv::{conv_backward_input, conv_backward_weights, conv_forward, ConvParams};
pub use eltwise::{concat_backward, concat_forward, shortcut_backward, shortcut_forward};
pub use fc::{fc_backward_input, fc_backward_weights, fc_forward};
pub use pool::{pool_backward, pool_forward, PoolOutput};
