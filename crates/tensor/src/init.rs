//! Weight initialization.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fills `weights` with Xavier/Glorot-uniform values for a layer with the
/// given fan-in and fan-out, using a deterministic seeded RNG so compiled
/// and reference executions see identical parameters.
pub fn xavier_init(weights: &mut [f32], fan_in: usize, fan_out: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let bound = (6.0 / (fan_in + fan_out) as f64).sqrt() as f32;
    for w in weights {
        *w = rng.gen_range(-bound..=bound);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_is_deterministic() {
        let mut a = vec![0.0; 16];
        let mut b = vec![0.0; 16];
        xavier_init(&mut a, 8, 8, 7);
        xavier_init(&mut b, 8, 8, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn init_is_bounded() {
        let mut w = vec![0.0; 1000];
        xavier_init(&mut w, 100, 100, 1);
        let bound = (6.0f64 / 200.0).sqrt() as f32;
        assert!(w.iter().all(|v| v.abs() <= bound));
        // and not all zero
        assert!(w.iter().any(|v| v.abs() > 1e-4));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = vec![0.0; 16];
        let mut b = vec![0.0; 16];
        xavier_init(&mut a, 8, 8, 1);
        xavier_init(&mut b, 8, 8, 2);
        assert_ne!(a, b);
    }
}
