//! Reference tensor library and DNN training executor.
//!
//! ScaleDeep's compiler and functional simulator need a *golden model*: a
//! plain, obviously-correct implementation of forward propagation,
//! backpropagation and weight-gradient computation for every layer type in
//! [`scaledeep_dnn`]. This crate provides exactly that — dense f32 tensors,
//! direct (non-optimized) layer kernels, and an [`Executor`] that trains a
//! [`scaledeep_dnn::Network`] with minibatch SGD.
//!
//! Numerical fidelity is favored over speed everywhere: kernels are written
//! as straight loops matching the textbook definitions, and gradients are
//! verified against finite differences in the test suite.
//!
//! # Example
//!
//! ```
//! use scaledeep_dnn::{NetworkBuilder, Conv, Fc, FeatureShape};
//! use scaledeep_tensor::{Executor, Tensor};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = NetworkBuilder::new("toy", FeatureShape::new(1, 6, 6));
//! b.conv("c", Conv::relu(2, 3, 1, 1))?;
//! let out = b.fc("f", Fc::linear(4))?;
//! let net = b.finish_with_loss(out)?;
//!
//! let mut exec = Executor::new(&net, 42)?;
//! let x = Tensor::zeros(FeatureShape::new(1, 6, 6));
//! let y = exec.forward(&x)?;
//! assert_eq!(y.shape(), FeatureShape::vector(4));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod executor;
mod init;
pub mod ops;
mod sgd;
mod tensor;

pub use error::{Error, Result};
pub use executor::{Executor, TrainStats};
pub use init::xavier_init;
pub use sgd::Sgd;
pub use tensor::Tensor;
