//! Dense f32 tensors in feature-major (CHW) layout.

use crate::error::{Error, Result};
use scaledeep_dnn::FeatureShape;
use std::fmt;

/// A dense, owned f32 tensor shaped as `features × height × width`
/// (feature-major / CHW layout, matching the per-feature-map distribution
/// the ScaleDeep chip uses).
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: FeatureShape,
    data: Vec<f32>,
}

impl Tensor {
    /// An all-zeros tensor of the given shape.
    pub fn zeros(shape: FeatureShape) -> Self {
        Self {
            shape,
            data: vec![0.0; shape.elems()],
        }
    }

    /// Builds a tensor from raw data in CHW order.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] when `data.len() != shape.elems()`.
    pub fn from_vec(shape: FeatureShape, data: Vec<f32>) -> Result<Self> {
        if data.len() != shape.elems() {
            return Err(Error::ShapeMismatch {
                expected: shape,
                got: FeatureShape::vector(data.len()),
            });
        }
        Ok(Self { shape, data })
    }

    /// The tensor's shape.
    pub fn shape(&self) -> FeatureShape {
        self.shape
    }

    /// Flat view of the data in CHW order.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat view of the data in CHW order.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its backing storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at (feature, row, col).
    ///
    /// # Panics
    ///
    /// Panics when the coordinates are out of bounds.
    #[inline]
    pub fn at(&self, f: usize, y: usize, x: usize) -> f32 {
        debug_assert!(f < self.shape.features && y < self.shape.height && x < self.shape.width);
        self.data[(f * self.shape.height + y) * self.shape.width + x]
    }

    /// Mutable element at (feature, row, col).
    ///
    /// # Panics
    ///
    /// Panics when the coordinates are out of bounds.
    #[inline]
    pub fn at_mut(&mut self, f: usize, y: usize, x: usize) -> &mut f32 {
        debug_assert!(f < self.shape.features && y < self.shape.height && x < self.shape.width);
        &mut self.data[(f * self.shape.height + y) * self.shape.width + x]
    }

    /// Reinterprets the tensor as a flat vector shape (n × 1 × 1), without
    /// copying. Used at the CONV → FC boundary.
    pub fn flatten(mut self) -> Self {
        self.shape = FeatureShape::vector(self.data.len());
        self
    }

    /// Maximum absolute difference against another tensor of the same shape.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] when shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> Result<f32> {
        if self.shape.elems() != other.shape.elems() {
            return Err(Error::ShapeMismatch {
                expected: self.shape,
                got: other.shape,
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max))
    }

    /// Sum of squares of all elements (used for loss computation).
    pub fn squared_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum()
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({} elems, shape {})", self.data.len(), self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_is_chw() {
        let mut t = Tensor::zeros(FeatureShape::new(2, 3, 4));
        *t.at_mut(1, 2, 3) = 7.0;
        assert_eq!(t.as_slice()[12 + 2 * 4 + 3], 7.0);
        assert_eq!(t.at(1, 2, 3), 7.0);
    }

    #[test]
    fn from_vec_validates_length() {
        let err = Tensor::from_vec(FeatureShape::new(1, 2, 2), vec![1.0; 3]).unwrap_err();
        assert!(matches!(err, Error::ShapeMismatch { .. }));
    }

    #[test]
    fn flatten_preserves_data() {
        let t = Tensor::from_vec(FeatureShape::new(2, 1, 2), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let f = t.clone().flatten();
        assert_eq!(f.shape(), FeatureShape::vector(4));
        assert_eq!(f.as_slice(), t.as_slice());
    }

    #[test]
    fn max_abs_diff_detects_divergence() {
        let a = Tensor::from_vec(FeatureShape::vector(3), vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec(FeatureShape::vector(3), vec![1.0, 2.5, 3.0]).unwrap();
        assert_eq!(a.max_abs_diff(&b).unwrap(), 0.5);
    }
}
