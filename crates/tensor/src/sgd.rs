//! Stochastic gradient descent update rule.

/// Plain minibatch SGD: `w -= lr * grad / batch`, then gradients are
/// cleared — mirroring ScaleDeep's end-of-minibatch weight update after
/// gradient aggregation over the wheel arcs and ring (paper §3.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// Creates an SGD optimizer with the given learning rate.
    pub const fn new(lr: f32) -> Self {
        Self { lr }
    }

    /// Applies one update to `weights` from accumulated `grads` (scaled by
    /// `1/batch`), then zeroes `grads`.
    ///
    /// # Panics
    ///
    /// Panics when the slices differ in length or `batch` is zero.
    pub fn step(&self, weights: &mut [f32], grads: &mut [f32], batch: usize) {
        assert_eq!(weights.len(), grads.len(), "weight/grad length mismatch");
        assert!(batch > 0, "batch must be non-zero");
        let scale = self.lr / batch as f32;
        for (w, g) in weights.iter_mut().zip(grads.iter_mut()) {
            *w -= scale * *g;
            *g = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_updates_and_clears() {
        let opt = Sgd::new(0.5);
        let mut w = vec![1.0, 2.0];
        let mut g = vec![2.0, -4.0];
        opt.step(&mut w, &mut g, 2);
        assert_eq!(w, vec![1.0 - 0.5, 2.0 + 1.0]);
        assert_eq!(g, vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        Sgd::new(0.1).step(&mut [0.0], &mut [0.0, 0.0], 1);
    }
}
