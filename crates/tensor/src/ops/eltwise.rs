//! Element-wise add, concatenation, and ResNet option-A shortcuts.

use crate::error::{Error, Result};
use crate::tensor::Tensor;
use scaledeep_dnn::FeatureShape;

/// Concatenates inputs along the feature dimension.
///
/// # Errors
///
/// Returns [`Error::ShapeMismatch`] when spatial extents differ.
pub fn concat_forward(inputs: &[&Tensor]) -> Result<Tensor> {
    let first = inputs
        .first()
        .ok_or_else(|| Error::Unsupported {
            what: "concat of zero tensors".into(),
        })?
        .shape();
    let mut features = 0;
    for t in inputs {
        let s = t.shape();
        if s.height != first.height || s.width != first.width {
            return Err(Error::ShapeMismatch {
                expected: first,
                got: s,
            });
        }
        features += s.features;
    }
    let out_shape = FeatureShape::new(features, first.height, first.width);
    let mut out = Tensor::zeros(out_shape);
    let mut offset = 0;
    for t in inputs {
        let n = t.shape().elems();
        out.as_mut_slice()[offset..offset + n].copy_from_slice(t.as_slice());
        offset += n;
    }
    Ok(out)
}

/// Splits a concatenated output error back into per-branch errors.
///
/// # Errors
///
/// Returns [`Error::ShapeMismatch`] when the branch shapes do not tile the
/// error tensor exactly.
pub fn concat_backward(out_err: &Tensor, branch_shapes: &[FeatureShape]) -> Result<Vec<Tensor>> {
    let total: usize = branch_shapes.iter().map(|s| s.elems()).sum();
    if total != out_err.shape().elems() {
        return Err(Error::ShapeMismatch {
            expected: FeatureShape::vector(total),
            got: out_err.shape(),
        });
    }
    let mut parts = Vec::with_capacity(branch_shapes.len());
    let mut offset = 0;
    for &s in branch_shapes {
        let n = s.elems();
        let part = Tensor::from_vec(s, out_err.as_slice()[offset..offset + n].to_vec())?;
        parts.push(part);
        offset += n;
    }
    Ok(parts)
}

/// Parameter-free shortcut forward: subsamples spatially by `stride` and
/// zero-pads features to `out_features` (ResNet option A).
///
/// # Errors
///
/// Returns [`Error::Unsupported`] when `out_features` is smaller than the
/// input feature count.
pub fn shortcut_forward(input: &Tensor, stride: usize, out_features: usize) -> Result<Tensor> {
    let s = input.shape();
    if out_features < s.features {
        return Err(Error::Unsupported {
            what: format!(
                "shortcut shrinking features {} -> {out_features}",
                s.features
            ),
        });
    }
    let out_shape = FeatureShape::new(
        out_features,
        s.height.div_ceil(stride),
        s.width.div_ceil(stride),
    );
    let mut out = Tensor::zeros(out_shape);
    for f in 0..s.features {
        for oy in 0..out_shape.height {
            for ox in 0..out_shape.width {
                *out.at_mut(f, oy, ox) = input.at(f, oy * stride, ox * stride);
            }
        }
    }
    Ok(out)
}

/// Shortcut backward: scatters errors back to the sampled positions;
/// errors in the zero-padded features vanish.
///
/// # Errors
///
/// Returns [`Error::ShapeMismatch`] when `out_err` does not match the
/// shortcut output shape for `in_shape`.
pub fn shortcut_backward(
    out_err: &Tensor,
    in_shape: FeatureShape,
    stride: usize,
) -> Result<Tensor> {
    let es = out_err.shape();
    if es.height != in_shape.height.div_ceil(stride) || es.width != in_shape.width.div_ceil(stride)
    {
        return Err(Error::ShapeMismatch {
            expected: in_shape,
            got: es,
        });
    }
    let mut in_err = Tensor::zeros(in_shape);
    for f in 0..in_shape.features.min(es.features) {
        for oy in 0..es.height {
            for ox in 0..es.width {
                *in_err.at_mut(f, oy * stride, ox * stride) = out_err.at(f, oy, ox);
            }
        }
    }
    Ok(in_err)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_round_trips() {
        let a = Tensor::from_vec(FeatureShape::new(1, 1, 2), vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_vec(FeatureShape::new(2, 1, 2), vec![3.0, 4.0, 5.0, 6.0]).unwrap();
        let cat = concat_forward(&[&a, &b]).unwrap();
        assert_eq!(cat.shape(), FeatureShape::new(3, 1, 2));
        let parts = concat_backward(&cat, &[a.shape(), b.shape()]).unwrap();
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
    }

    #[test]
    fn concat_rejects_mismatched_spatial() {
        let a = Tensor::zeros(FeatureShape::new(1, 2, 2));
        let b = Tensor::zeros(FeatureShape::new(1, 3, 3));
        assert!(concat_forward(&[&a, &b]).is_err());
    }

    #[test]
    fn shortcut_subsamples_and_pads() {
        let input = Tensor::from_vec(FeatureShape::new(1, 2, 2), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let out = shortcut_forward(&input, 2, 2).unwrap();
        assert_eq!(out.shape(), FeatureShape::new(2, 1, 1));
        assert_eq!(out.as_slice(), &[1.0, 0.0]); // sampled + zero-padded feature
    }

    #[test]
    fn shortcut_backward_scatters() {
        let in_shape = FeatureShape::new(1, 2, 2);
        let err = Tensor::from_vec(FeatureShape::new(2, 1, 1), vec![5.0, 9.0]).unwrap();
        let back = shortcut_backward(&err, in_shape, 2).unwrap();
        // The padded feature's error (9.0) has no source and is dropped.
        assert_eq!(back.as_slice(), &[5.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn identity_shortcut_is_identity() {
        let input = Tensor::from_vec(FeatureShape::new(2, 1, 1), vec![1.0, 2.0]).unwrap();
        let out = shortcut_forward(&input, 1, 2).unwrap();
        assert_eq!(out, input);
    }
}
