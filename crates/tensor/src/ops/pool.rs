//! Max/average pooling: forward (with argmax capture) and backward.

use crate::error::{Error, Result};
use crate::tensor::Tensor;
use scaledeep_dnn::{FeatureShape, Pool, PoolKind};

/// The result of a pooling forward pass: the down-sampled output and, for
/// max pooling, the flat input index chosen per output element (needed to
/// route errors during BP).
#[derive(Debug, Clone, PartialEq)]
pub struct PoolOutput {
    /// Down-sampled features.
    pub output: Tensor,
    /// For max pooling: argmax input offsets, one per output element.
    /// Empty for average pooling.
    pub argmax: Vec<u32>,
    /// For average pooling: the window element count per output element
    /// (border windows may be smaller). Empty for max pooling.
    pub counts: Vec<u32>,
}

fn check_shape(t: &Tensor, want: FeatureShape) -> Result<()> {
    if t.shape().elems() != want.elems() {
        return Err(Error::ShapeMismatch {
            expected: want,
            got: t.shape(),
        });
    }
    Ok(())
}

/// Forward pooling.
///
/// # Errors
///
/// Returns [`Error::ShapeMismatch`] when `input` does not match `in_shape`.
pub fn pool_forward(p: &Pool, in_shape: FeatureShape, input: &Tensor) -> Result<PoolOutput> {
    check_shape(input, in_shape)?;
    let out_shape = p.output_shape(in_shape);
    let mut output = Tensor::zeros(out_shape);
    let is_max = p.kind == PoolKind::Max;
    let mut argmax = if is_max {
        vec![0u32; out_shape.elems()]
    } else {
        Vec::new()
    };
    let mut counts = if is_max {
        Vec::new()
    } else {
        vec![0u32; out_shape.elems()]
    };
    let pad = p.pad as isize;

    for f in 0..out_shape.features {
        for oy in 0..out_shape.height {
            for ox in 0..out_shape.width {
                let oi = (f * out_shape.height + oy) * out_shape.width + ox;
                let mut best = f32::NEG_INFINITY;
                let mut best_idx = 0u32;
                let mut sum = 0.0f32;
                let mut n = 0u32;
                for wy in 0..p.window {
                    let iy = (oy * p.stride + wy) as isize - pad;
                    if iy < 0 || iy >= in_shape.height as isize {
                        continue;
                    }
                    for wx in 0..p.window {
                        let ix = (ox * p.stride + wx) as isize - pad;
                        if ix < 0 || ix >= in_shape.width as isize {
                            continue;
                        }
                        let v = input.at(f, iy as usize, ix as usize);
                        let flat = ((f * in_shape.height + iy as usize) * in_shape.width
                            + ix as usize) as u32;
                        if v > best {
                            best = v;
                            best_idx = flat;
                        }
                        sum += v;
                        n += 1;
                    }
                }
                if is_max {
                    *output.as_mut_slice().get_mut(oi).expect("in range") =
                        if n == 0 { 0.0 } else { best };
                    argmax[oi] = best_idx;
                } else {
                    output.as_mut_slice()[oi] = if n == 0 { 0.0 } else { sum / n as f32 };
                    counts[oi] = n.max(1);
                }
            }
        }
    }
    Ok(PoolOutput {
        output,
        argmax,
        counts,
    })
}

/// Backward pooling: routes output errors back to input positions
/// (to the argmax for max pooling; spread evenly for average pooling).
///
/// # Errors
///
/// Returns [`Error::ShapeMismatch`] when `out_err` does not match the
/// pooled output shape.
pub fn pool_backward(
    p: &Pool,
    in_shape: FeatureShape,
    fwd: &PoolOutput,
    out_err: &Tensor,
) -> Result<Tensor> {
    let out_shape = p.output_shape(in_shape);
    check_shape(out_err, out_shape)?;
    let mut in_err = Tensor::zeros(in_shape);
    match p.kind {
        PoolKind::Max => {
            for (oi, &src) in fwd.argmax.iter().enumerate() {
                in_err.as_mut_slice()[src as usize] += out_err.as_slice()[oi];
            }
        }
        PoolKind::Avg => {
            let pad = p.pad as isize;
            for f in 0..out_shape.features {
                for oy in 0..out_shape.height {
                    for ox in 0..out_shape.width {
                        let oi = (f * out_shape.height + oy) * out_shape.width + ox;
                        let share = out_err.as_slice()[oi] / fwd.counts[oi] as f32;
                        for wy in 0..p.window {
                            let iy = (oy * p.stride + wy) as isize - pad;
                            if iy < 0 || iy >= in_shape.height as isize {
                                continue;
                            }
                            for wx in 0..p.window {
                                let ix = (ox * p.stride + wx) as isize - pad;
                                if ix < 0 || ix >= in_shape.width as isize {
                                    continue;
                                }
                                *in_err.at_mut(f, iy as usize, ix as usize) += share;
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(in_err)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_picks_window_maximum() {
        let in_shape = FeatureShape::new(1, 2, 2);
        let input = Tensor::from_vec(in_shape, vec![1.0, 4.0, 3.0, 2.0]).unwrap();
        let p = Pool::max(2, 2);
        let out = pool_forward(&p, in_shape, &input).unwrap();
        assert_eq!(out.output.as_slice(), &[4.0]);
        assert_eq!(out.argmax, vec![1]);
    }

    #[test]
    fn avg_pool_averages_window() {
        let in_shape = FeatureShape::new(1, 2, 2);
        let input = Tensor::from_vec(in_shape, vec![1.0, 4.0, 3.0, 2.0]).unwrap();
        let p = Pool::avg(2, 2);
        let out = pool_forward(&p, in_shape, &input).unwrap();
        assert_eq!(out.output.as_slice(), &[2.5]);
    }

    #[test]
    fn max_backward_routes_to_argmax() {
        let in_shape = FeatureShape::new(1, 2, 2);
        let input = Tensor::from_vec(in_shape, vec![1.0, 4.0, 3.0, 2.0]).unwrap();
        let p = Pool::max(2, 2);
        let fwd = pool_forward(&p, in_shape, &input).unwrap();
        let err = Tensor::from_vec(FeatureShape::new(1, 1, 1), vec![5.0]).unwrap();
        let back = pool_backward(&p, in_shape, &fwd, &err).unwrap();
        assert_eq!(back.as_slice(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn avg_backward_spreads_evenly() {
        let in_shape = FeatureShape::new(1, 2, 2);
        let input = Tensor::zeros(in_shape);
        let p = Pool::avg(2, 2);
        let fwd = pool_forward(&p, in_shape, &input).unwrap();
        let err = Tensor::from_vec(FeatureShape::new(1, 1, 1), vec![8.0]).unwrap();
        let back = pool_backward(&p, in_shape, &fwd, &err).unwrap();
        assert_eq!(back.as_slice(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn ceil_mode_handles_partial_windows() {
        // 3x3 input, 2x2/2 ceil pooling -> 2x2 output with partial windows.
        let in_shape = FeatureShape::new(1, 3, 3);
        let input =
            Tensor::from_vec(in_shape, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]).unwrap();
        let p = Pool::max(2, 2);
        let out = pool_forward(&p, in_shape, &input).unwrap();
        assert_eq!(out.output.shape(), FeatureShape::new(1, 2, 2));
        assert_eq!(out.output.as_slice(), &[5.0, 6.0, 8.0, 9.0]);
    }
}
