//! Activation functions and their derivatives (MemHeavy SFU operations).

use crate::tensor::Tensor;
use scaledeep_dnn::Activation;

/// Applies an activation element-wise to a pre-activation tensor.
pub fn activation_forward(act: Activation, pre: &Tensor) -> Tensor {
    let mut out = pre.clone();
    match act {
        Activation::None => {}
        Activation::Relu => {
            for v in out.as_mut_slice() {
                if *v < 0.0 {
                    *v = 0.0;
                }
            }
        }
        Activation::Tanh => {
            for v in out.as_mut_slice() {
                *v = v.tanh();
            }
        }
        Activation::Sigmoid => {
            for v in out.as_mut_slice() {
                *v = 1.0 / (1.0 + (-*v).exp());
            }
        }
    }
    out
}

/// Multiplies an incoming error by the activation derivative evaluated at
/// the stored pre-activation values: `dz = da * act'(z)`.
pub fn activation_backward(act: Activation, pre: &Tensor, out_err: &Tensor) -> Tensor {
    let mut dz = out_err.clone();
    match act {
        Activation::None => {}
        Activation::Relu => {
            for (d, &z) in dz.as_mut_slice().iter_mut().zip(pre.as_slice()) {
                if z <= 0.0 {
                    *d = 0.0;
                }
            }
        }
        Activation::Tanh => {
            for (d, &z) in dz.as_mut_slice().iter_mut().zip(pre.as_slice()) {
                let t = z.tanh();
                *d *= 1.0 - t * t;
            }
        }
        Activation::Sigmoid => {
            for (d, &z) in dz.as_mut_slice().iter_mut().zip(pre.as_slice()) {
                let s = 1.0 / (1.0 + (-z).exp());
                *d *= s * (1.0 - s);
            }
        }
    }
    dz
}

#[cfg(test)]
mod tests {
    use super::*;
    use scaledeep_dnn::FeatureShape;

    fn t(v: Vec<f32>) -> Tensor {
        Tensor::from_vec(FeatureShape::vector(v.len()), v).unwrap()
    }

    #[test]
    fn relu_clamps_negatives() {
        let out = activation_forward(Activation::Relu, &t(vec![-1.0, 0.0, 2.0]));
        assert_eq!(out.as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_backward_masks_negatives() {
        let pre = t(vec![-1.0, 0.5]);
        let err = t(vec![3.0, 3.0]);
        let dz = activation_backward(Activation::Relu, &pre, &err);
        assert_eq!(dz.as_slice(), &[0.0, 3.0]);
    }

    #[test]
    fn sigmoid_is_bounded() {
        let out = activation_forward(Activation::Sigmoid, &t(vec![-10.0, 0.0, 10.0]));
        let s = out.as_slice();
        assert!(s[0] < 0.001 && (s[1] - 0.5).abs() < 1e-6 && s[2] > 0.999);
    }

    #[test]
    fn tanh_derivative_matches_finite_difference() {
        let z = 0.3f32;
        let pre = t(vec![z]);
        let err = t(vec![1.0]);
        let dz = activation_backward(Activation::Tanh, &pre, &err);
        let eps = 1e-3;
        let fd = ((z + eps).tanh() - (z - eps).tanh()) / (2.0 * eps);
        assert!((dz.as_slice()[0] - fd).abs() < 1e-4);
    }

    #[test]
    fn none_is_identity_both_ways() {
        let pre = t(vec![-1.0, 2.0]);
        let err = t(vec![0.5, 0.25]);
        assert_eq!(activation_forward(Activation::None, &pre), pre);
        assert_eq!(activation_backward(Activation::None, &pre, &err), err);
    }
}
