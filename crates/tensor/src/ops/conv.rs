//! 2D convolution: forward, input gradient and weight gradient.

use crate::error::{Error, Result};
use crate::tensor::Tensor;
use scaledeep_dnn::{Conv, FeatureShape};

/// Resolved convolution geometry: the layer parameters plus the concrete
/// input shape (which fixes the group fan-in and output shape).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvParams {
    /// The layer definition.
    pub conv: Conv,
    /// The input shape this convolution is applied to.
    pub input: FeatureShape,
}

impl ConvParams {
    /// Creates parameters, validating divisibility by groups.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Unsupported`] when `groups` does not divide the
    /// feature counts.
    pub fn new(conv: Conv, input: FeatureShape) -> Result<Self> {
        if !input.features.is_multiple_of(conv.groups)
            || !conv.out_features.is_multiple_of(conv.groups)
        {
            return Err(Error::Unsupported {
                what: format!(
                    "groups {} does not divide features {}/{}",
                    conv.groups, input.features, conv.out_features
                ),
            });
        }
        Ok(Self { conv, input })
    }

    /// Input features per group.
    pub fn cin_per_group(&self) -> usize {
        self.input.features / self.conv.groups
    }

    /// Output features per group.
    pub fn cout_per_group(&self) -> usize {
        self.conv.out_features / self.conv.groups
    }

    /// Output shape.
    pub fn output(&self) -> FeatureShape {
        self.conv.output_shape(self.input)
    }

    /// Number of kernel weights (excluding biases), laid out
    /// `[out][in_per_group][kh][kw]`.
    pub fn kernel_len(&self) -> usize {
        self.conv.out_features * self.cin_per_group() * self.conv.kernel * self.conv.kernel
    }

    /// Flat index of kernel weight (out feature `o`, in-group feature `i`,
    /// kernel row `ky`, kernel col `kx`).
    #[inline]
    pub fn widx(&self, o: usize, i: usize, ky: usize, kx: usize) -> usize {
        ((o * self.cin_per_group() + i) * self.conv.kernel + ky) * self.conv.kernel + kx
    }
}

fn check_shape(t: &Tensor, want: FeatureShape) -> Result<()> {
    if t.shape().elems() != want.elems() {
        return Err(Error::ShapeMismatch {
            expected: want,
            got: t.shape(),
        });
    }
    Ok(())
}

/// Forward convolution producing the *pre-activation* output.
///
/// `weights` is `[out][in_per_group][kh][kw]`; `bias` has one entry per
/// output feature (may be empty when the layer has no bias).
///
/// # Errors
///
/// Returns [`Error::ShapeMismatch`] when the input tensor does not match
/// the declared geometry.
pub fn conv_forward(
    p: &ConvParams,
    input: &Tensor,
    weights: &[f32],
    bias: &[f32],
) -> Result<Tensor> {
    check_shape(input, p.input)?;
    let out_shape = p.output();
    let mut out = Tensor::zeros(out_shape);
    let k = p.conv.kernel;
    let stride = p.conv.stride;
    let pad = p.conv.pad as isize;
    let cin_g = p.cin_per_group();
    let cout_g = p.cout_per_group();

    for o in 0..p.conv.out_features {
        let g = o / cout_g;
        let b = bias.get(o).copied().unwrap_or(0.0);
        for oy in 0..out_shape.height {
            for ox in 0..out_shape.width {
                let mut acc = b;
                for ig in 0..cin_g {
                    let i = g * cin_g + ig;
                    for ky in 0..k {
                        let iy = (oy * stride + ky) as isize - pad;
                        if iy < 0 || iy >= p.input.height as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let ix = (ox * stride + kx) as isize - pad;
                            if ix < 0 || ix >= p.input.width as isize {
                                continue;
                            }
                            acc += input.at(i, iy as usize, ix as usize)
                                * weights[p.widx(o, ig, ky, kx)];
                        }
                    }
                }
                *out.at_mut(o, oy, ox) = acc;
            }
        }
    }
    Ok(out)
}

/// Backpropagates output errors to input errors (transposed convolution).
///
/// # Errors
///
/// Returns [`Error::ShapeMismatch`] when `out_err` does not match the
/// declared output geometry.
pub fn conv_backward_input(p: &ConvParams, out_err: &Tensor, weights: &[f32]) -> Result<Tensor> {
    let out_shape = p.output();
    check_shape(out_err, out_shape)?;
    let mut in_err = Tensor::zeros(p.input);
    let k = p.conv.kernel;
    let stride = p.conv.stride;
    let pad = p.conv.pad as isize;
    let cin_g = p.cin_per_group();
    let cout_g = p.cout_per_group();

    for o in 0..p.conv.out_features {
        let g = o / cout_g;
        for oy in 0..out_shape.height {
            for ox in 0..out_shape.width {
                let e = out_err.at(o, oy, ox);
                if e == 0.0 {
                    continue;
                }
                for ig in 0..cin_g {
                    let i = g * cin_g + ig;
                    for ky in 0..k {
                        let iy = (oy * stride + ky) as isize - pad;
                        if iy < 0 || iy >= p.input.height as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let ix = (ox * stride + kx) as isize - pad;
                            if ix < 0 || ix >= p.input.width as isize {
                                continue;
                            }
                            *in_err.at_mut(i, iy as usize, ix as usize) +=
                                e * weights[p.widx(o, ig, ky, kx)];
                        }
                    }
                }
            }
        }
    }
    Ok(in_err)
}

/// Accumulates weight and bias gradients from stored FP inputs and BP
/// output errors. `w_grad` has [`ConvParams::kernel_len`] entries and
/// `b_grad` one per output feature; both are accumulated into (so minibatch
/// gradients aggregate naturally, as on the ScaleDeep wheel arcs).
///
/// # Errors
///
/// Returns [`Error::ShapeMismatch`] when the tensors do not match the
/// declared geometry.
pub fn conv_backward_weights(
    p: &ConvParams,
    input: &Tensor,
    out_err: &Tensor,
    w_grad: &mut [f32],
    b_grad: &mut [f32],
) -> Result<()> {
    check_shape(input, p.input)?;
    let out_shape = p.output();
    check_shape(out_err, out_shape)?;
    let k = p.conv.kernel;
    let stride = p.conv.stride;
    let pad = p.conv.pad as isize;
    let cin_g = p.cin_per_group();
    let cout_g = p.cout_per_group();

    for o in 0..p.conv.out_features {
        let g = o / cout_g;
        for oy in 0..out_shape.height {
            for ox in 0..out_shape.width {
                let e = out_err.at(o, oy, ox);
                if e == 0.0 {
                    continue;
                }
                if !b_grad.is_empty() {
                    b_grad[o] += e;
                }
                for ig in 0..cin_g {
                    let i = g * cin_g + ig;
                    for ky in 0..k {
                        let iy = (oy * stride + ky) as isize - pad;
                        if iy < 0 || iy >= p.input.height as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let ix = (ox * stride + kx) as isize - pad;
                            if ix < 0 || ix >= p.input.width as isize {
                                continue;
                            }
                            w_grad[p.widx(o, ig, ky, kx)] +=
                                e * input.at(i, iy as usize, ix as usize);
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_params() -> ConvParams {
        ConvParams::new(Conv::linear(1, 2, 1, 0), FeatureShape::new(1, 3, 3)).unwrap()
    }

    #[test]
    fn forward_matches_hand_computation() {
        let p = simple_params();
        let input =
            Tensor::from_vec(p.input, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]).unwrap();
        let weights = vec![1.0, 0.0, 0.0, 1.0]; // identity-ish 2x2 kernel
        let out = conv_forward(&p, &input, &weights, &[0.0]).unwrap();
        // out(0,0) = 1*1 + 5*1 = 6, out(0,1) = 2 + 6 = 8, ...
        assert_eq!(out.as_slice(), &[6.0, 8.0, 12.0, 14.0]);
    }

    #[test]
    fn forward_respects_bias() {
        let p = simple_params();
        let input = Tensor::zeros(p.input);
        let out = conv_forward(&p, &input, &[0.0; 4], &[2.5]).unwrap();
        assert!(out.as_slice().iter().all(|&v| v == 2.5));
    }

    #[test]
    fn padding_pads_with_zeros() {
        let p = ConvParams::new(Conv::linear(1, 3, 1, 1), FeatureShape::new(1, 2, 2)).unwrap();
        let input = Tensor::from_vec(p.input, vec![1.0, 1.0, 1.0, 1.0]).unwrap();
        let weights = vec![1.0; 9];
        let out = conv_forward(&p, &input, &weights, &[0.0]).unwrap();
        // Corner output only sees the 2x2 valid region.
        assert_eq!(out.at(0, 0, 0), 4.0);
    }

    #[test]
    fn backward_input_is_transpose_of_forward() {
        // For a linear map y = Wx, <W e, x> must equal <e, W^T ... > — check
        // the adjoint identity <conv(x), e> == <x, conv_bwd(e)>.
        let p = ConvParams::new(Conv::linear(2, 3, 2, 1), FeatureShape::new(2, 5, 5)).unwrap();
        let n_in = p.input.elems();
        let out_shape = p.output();
        let weights: Vec<f32> = (0..p.kernel_len())
            .map(|i| (i as f32 * 0.7).sin())
            .collect();
        let x =
            Tensor::from_vec(p.input, (0..n_in).map(|i| (i as f32 * 0.3).cos()).collect()).unwrap();
        let e = Tensor::from_vec(
            out_shape,
            (0..out_shape.elems())
                .map(|i| (i as f32 * 0.11).sin())
                .collect(),
        )
        .unwrap();
        let y = conv_forward(&p, &x, &weights, &[]).unwrap();
        let xt = conv_backward_input(&p, &e, &weights).unwrap();
        let lhs: f32 = y
            .as_slice()
            .iter()
            .zip(e.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        let rhs: f32 = x
            .as_slice()
            .iter()
            .zip(xt.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        assert!(
            (lhs - rhs).abs() < 1e-3 * lhs.abs().max(1.0),
            "{lhs} vs {rhs}"
        );
    }

    #[test]
    fn weight_gradient_matches_finite_difference() {
        let p = ConvParams::new(Conv::linear(1, 2, 1, 0), FeatureShape::new(1, 3, 3)).unwrap();
        let x = Tensor::from_vec(
            p.input,
            vec![0.5, -0.2, 0.3, 0.9, -0.4, 0.1, 0.0, 0.7, -0.6],
        )
        .unwrap();
        let mut weights = vec![0.3, -0.1, 0.2, 0.05];
        // Loss L = 0.5 * |y|^2, so dL/dy = y.
        let y = conv_forward(&p, &x, &weights, &[]).unwrap();
        let mut w_grad = vec![0.0; 4];
        conv_backward_weights(&p, &x, &y, &mut w_grad, &mut []).unwrap();
        let eps = 1e-3;
        for wi in 0..4 {
            let orig = weights[wi];
            weights[wi] = orig + eps;
            let lp = 0.5 * conv_forward(&p, &x, &weights, &[]).unwrap().squared_norm();
            weights[wi] = orig - eps;
            let lm = 0.5 * conv_forward(&p, &x, &weights, &[]).unwrap().squared_norm();
            weights[wi] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - w_grad[wi]).abs() < 1e-2,
                "w{wi}: fd {fd} vs analytic {}",
                w_grad[wi]
            );
        }
    }

    #[test]
    fn grouped_conv_keeps_groups_independent() {
        let p = ConvParams::new(
            Conv {
                out_features: 2,
                kernel: 1,
                stride: 1,
                pad: 0,
                groups: 2,
                bias: false,
                activation: scaledeep_dnn::Activation::None,
            },
            FeatureShape::new(2, 1, 1),
        )
        .unwrap();
        let x = Tensor::from_vec(p.input, vec![3.0, 5.0]).unwrap();
        // weight[o=0] sees input 0, weight[o=1] sees input 1.
        let out = conv_forward(&p, &x, &[2.0, 10.0], &[]).unwrap();
        assert_eq!(out.as_slice(), &[6.0, 50.0]);
    }
}
