//! Fully-connected layer: vector–matrix multiply forward, transpose
//! backward, outer-product weight gradient.

use crate::error::{Error, Result};
use crate::tensor::Tensor;
use scaledeep_dnn::FeatureShape;

/// Forward FC producing the pre-activation output:
/// `y[o] = sum_i W[o][i] * x[i] + b[o]`. `weights` is row-major
/// `[out][in]`; `bias` may be empty.
///
/// # Errors
///
/// Returns [`Error::ShapeMismatch`] when `weights.len() != n_in * n_out`.
pub fn fc_forward(input: &Tensor, n_out: usize, weights: &[f32], bias: &[f32]) -> Result<Tensor> {
    let n_in = input.shape().elems();
    if weights.len() != n_in * n_out {
        return Err(Error::ShapeMismatch {
            expected: FeatureShape::vector(n_in * n_out),
            got: FeatureShape::vector(weights.len()),
        });
    }
    let x = input.as_slice();
    let mut out = Tensor::zeros(FeatureShape::vector(n_out));
    let y = out.as_mut_slice();
    for (o, yo) in y.iter_mut().enumerate() {
        let row = &weights[o * n_in..(o + 1) * n_in];
        let mut acc = bias.get(o).copied().unwrap_or(0.0);
        for (w, v) in row.iter().zip(x) {
            acc += w * v;
        }
        *yo = acc;
    }
    Ok(out)
}

/// Backpropagates output errors to input errors: `dx = W^T dy`.
///
/// # Errors
///
/// Returns [`Error::ShapeMismatch`] when `weights.len() != n_in * n_out`.
pub fn fc_backward_input(
    out_err: &Tensor,
    in_shape: FeatureShape,
    weights: &[f32],
) -> Result<Tensor> {
    let n_in = in_shape.elems();
    let n_out = out_err.shape().elems();
    if weights.len() != n_in * n_out {
        return Err(Error::ShapeMismatch {
            expected: FeatureShape::vector(n_in * n_out),
            got: FeatureShape::vector(weights.len()),
        });
    }
    let mut in_err = Tensor::zeros(in_shape);
    let dx = in_err.as_mut_slice();
    for (o, &e) in out_err.as_slice().iter().enumerate() {
        if e == 0.0 {
            continue;
        }
        let row = &weights[o * n_in..(o + 1) * n_in];
        for (d, w) in dx.iter_mut().zip(row) {
            *d += e * w;
        }
    }
    Ok(in_err)
}

/// Accumulates the outer-product weight gradient `dW[o][i] += dy[o] * x[i]`
/// and bias gradient `db[o] += dy[o]` (the paper's vector element-wise
/// multiply kernel).
///
/// # Errors
///
/// Returns [`Error::ShapeMismatch`] when `w_grad.len()` does not match the
/// input/output sizes.
pub fn fc_backward_weights(
    input: &Tensor,
    out_err: &Tensor,
    w_grad: &mut [f32],
    b_grad: &mut [f32],
) -> Result<()> {
    let n_in = input.shape().elems();
    let n_out = out_err.shape().elems();
    if w_grad.len() != n_in * n_out {
        return Err(Error::ShapeMismatch {
            expected: FeatureShape::vector(n_in * n_out),
            got: FeatureShape::vector(w_grad.len()),
        });
    }
    let x = input.as_slice();
    for (o, &e) in out_err.as_slice().iter().enumerate() {
        if !b_grad.is_empty() {
            b_grad[o] += e;
        }
        if e == 0.0 {
            continue;
        }
        let row = &mut w_grad[o * n_in..(o + 1) * n_in];
        for (g, v) in row.iter_mut().zip(x) {
            *g += e * v;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_is_matvec_plus_bias() {
        let x = Tensor::from_vec(FeatureShape::vector(2), vec![1.0, 2.0]).unwrap();
        // W = [[1, 2], [3, 4], [5, 6]], b = [0.5, 0, -0.5]
        let w = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let y = fc_forward(&x, 3, &w, &[0.5, 0.0, -0.5]).unwrap();
        assert_eq!(y.as_slice(), &[5.5, 11.0, 16.5]);
    }

    #[test]
    fn backward_is_transpose() {
        let e = Tensor::from_vec(FeatureShape::vector(2), vec![1.0, -1.0]).unwrap();
        let w = vec![1.0, 2.0, 3.0, 4.0]; // rows [1,2], [3,4]
        let dx = fc_backward_input(&e, FeatureShape::vector(2), &w).unwrap();
        assert_eq!(dx.as_slice(), &[1.0 - 3.0, 2.0 - 4.0]);
    }

    #[test]
    fn weight_gradient_is_outer_product() {
        let x = Tensor::from_vec(FeatureShape::vector(2), vec![2.0, 3.0]).unwrap();
        let e = Tensor::from_vec(FeatureShape::vector(2), vec![1.0, -1.0]).unwrap();
        let mut wg = vec![0.0; 4];
        let mut bg = vec![0.0; 2];
        fc_backward_weights(&x, &e, &mut wg, &mut bg).unwrap();
        assert_eq!(wg, vec![2.0, 3.0, -2.0, -3.0]);
        assert_eq!(bg, vec![1.0, -1.0]);
    }

    #[test]
    fn gradients_accumulate_across_calls() {
        let x = Tensor::from_vec(FeatureShape::vector(1), vec![1.0]).unwrap();
        let e = Tensor::from_vec(FeatureShape::vector(1), vec![1.0]).unwrap();
        let mut wg = vec![0.0; 1];
        fc_backward_weights(&x, &e, &mut wg, &mut []).unwrap();
        fc_backward_weights(&x, &e, &mut wg, &mut []).unwrap();
        assert_eq!(wg, vec![2.0]);
    }

    #[test]
    fn mismatched_weights_rejected() {
        let x = Tensor::from_vec(FeatureShape::vector(2), vec![1.0, 2.0]).unwrap();
        assert!(fc_forward(&x, 3, &[0.0; 5], &[]).is_err());
    }
}
