//! Error type for the reference executor.

use scaledeep_dnn::FeatureShape;
use std::fmt;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by tensor operations and the executor.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A tensor had an unexpected shape.
    ShapeMismatch {
        /// What the operation expected.
        expected: FeatureShape,
        /// What it received.
        got: FeatureShape,
    },
    /// The network contains a layer kind the executor cannot run
    /// (never the case for layers produced by `scaledeep-dnn` builders).
    Unsupported {
        /// Description of the unsupported construct.
        what: String,
    },
    /// A graph-construction error bubbled up from `scaledeep-dnn`.
    Graph(scaledeep_dnn::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ShapeMismatch { expected, got } => {
                write!(f, "shape mismatch: expected {expected}, got {got}")
            }
            Error::Unsupported { what } => write!(f, "unsupported operation: {what}"),
            Error::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<scaledeep_dnn::Error> for Error {
    fn from(e: scaledeep_dnn::Error) -> Self {
        Error::Graph(e)
    }
}
