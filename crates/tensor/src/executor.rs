//! The reference training executor: runs FP / BP / WG for a whole
//! [`Network`] and applies minibatch SGD, exactly mirroring the training
//! data flow of the paper's Figure 3a.

use crate::error::{Error, Result};
use crate::init::xavier_init;
use crate::ops::{
    activation_backward, activation_forward, concat_backward, concat_forward, conv_backward_input,
    conv_backward_weights, conv_forward, fc_backward_input, fc_backward_weights, fc_forward,
    pool_backward, pool_forward, shortcut_backward, shortcut_forward, ConvParams, PoolOutput,
};
use crate::sgd::Sgd;
use crate::tensor::Tensor;
use scaledeep_dnn::{Layer, LayerId, Network};

/// Learned parameters of one layer plus their gradient accumulators.
#[derive(Debug, Clone)]
struct Params {
    weights: Vec<f32>,
    bias: Vec<f32>,
    w_grad: Vec<f32>,
    b_grad: Vec<f32>,
}

/// Per-node runtime state: parameters and forward/backward caches.
#[derive(Debug, Clone, Default)]
struct NodeState {
    params: Option<Params>,
    /// Pre-activation output (CONV/FC/ELTWISE).
    pre: Option<Tensor>,
    /// Post-activation output.
    out: Option<Tensor>,
    /// Pooling forward byproducts (argmax / counts).
    pool: Option<PoolOutput>,
    /// Accumulated error at this node's output.
    err: Option<Tensor>,
}

/// Statistics from one training minibatch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainStats {
    /// Mean squared-error loss over the minibatch.
    pub loss: f32,
    /// Number of images processed.
    pub batch: usize,
}

/// Reference executor for a [`Network`]: forward propagation, error
/// backpropagation, weight-gradient accumulation and SGD updates.
///
/// Parameters are initialized deterministically from a seed, so two
/// executors built with the same seed (or an executor and the functional
/// ISA simulator sharing exported parameters) compute identical results.
#[derive(Debug, Clone)]
pub struct Executor {
    net: Network,
    states: Vec<NodeState>,
}

impl Executor {
    /// Creates an executor with Xavier-initialized parameters.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Unsupported`] if the network contains a layer the
    /// executor cannot run (not the case for `scaledeep-dnn` graphs).
    pub fn new(net: &Network, seed: u64) -> Result<Self> {
        let mut states: Vec<NodeState> = Vec::with_capacity(net.len());
        for node in net.layers() {
            let mut state = NodeState::default();
            match node.layer() {
                Layer::Conv(c) => {
                    let input = net.input_shapes(node.id())[0];
                    let p = ConvParams::new(*c, input)?;
                    let n = p.kernel_len();
                    let mut weights = vec![0.0; n];
                    let fan_in = p.cin_per_group() * c.kernel * c.kernel;
                    let fan_out = p.cout_per_group() * c.kernel * c.kernel;
                    xavier_init(
                        &mut weights,
                        fan_in,
                        fan_out,
                        seed ^ node.id().index() as u64,
                    );
                    let bias_n = if c.bias { c.out_features } else { 0 };
                    state.params = Some(Params {
                        weights,
                        bias: vec![0.0; bias_n],
                        w_grad: vec![0.0; n],
                        b_grad: vec![0.0; bias_n],
                    });
                }
                Layer::Fc(f) => {
                    let n_in = net.fan_in_elems(node.id());
                    let n = n_in * f.out_neurons;
                    let mut weights = vec![0.0; n];
                    xavier_init(
                        &mut weights,
                        n_in,
                        f.out_neurons,
                        seed ^ node.id().index() as u64,
                    );
                    let bias_n = if f.bias { f.out_neurons } else { 0 };
                    state.params = Some(Params {
                        weights,
                        bias: vec![0.0; bias_n],
                        w_grad: vec![0.0; n],
                        b_grad: vec![0.0; bias_n],
                    });
                }
                _ => {}
            }
            states.push(state);
        }
        Ok(Self {
            net: net.clone(),
            states,
        })
    }

    /// The executed network.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Read access to a layer's (weights, bias), if it has parameters.
    pub fn params(&self, id: LayerId) -> Option<(&[f32], &[f32])> {
        self.states[id.index()]
            .params
            .as_ref()
            .map(|p| (p.weights.as_slice(), p.bias.as_slice()))
    }

    /// Read access to a layer's accumulated (weight, bias) gradients.
    pub fn grads(&self, id: LayerId) -> Option<(&[f32], &[f32])> {
        self.states[id.index()]
            .params
            .as_ref()
            .map(|p| (p.w_grad.as_slice(), p.b_grad.as_slice()))
    }

    /// Overwrites a layer's parameters (used to mirror parameters into the
    /// functional ISA simulator).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Unsupported`] when the layer has no parameters or
    /// lengths differ.
    pub fn set_params(&mut self, id: LayerId, weights: &[f32], bias: &[f32]) -> Result<()> {
        let p = self.states[id.index()]
            .params
            .as_mut()
            .ok_or_else(|| Error::Unsupported {
                what: format!("layer {id} has no parameters"),
            })?;
        if p.weights.len() != weights.len() || p.bias.len() != bias.len() {
            return Err(Error::Unsupported {
                what: format!(
                    "parameter length mismatch for {id}: {}x{} vs {}x{}",
                    p.weights.len(),
                    p.bias.len(),
                    weights.len(),
                    bias.len()
                ),
            });
        }
        p.weights.copy_from_slice(weights);
        p.bias.copy_from_slice(bias);
        Ok(())
    }

    /// The cached post-activation output of a layer from the last
    /// [`forward`](Self::forward) call.
    pub fn output(&self, id: LayerId) -> Option<&Tensor> {
        self.states[id.index()].out.as_ref()
    }

    /// The accumulated error at a layer's output from the last
    /// [`backward`](Self::backward) call.
    pub fn error(&self, id: LayerId) -> Option<&Tensor> {
        self.states[id.index()].err.as_ref()
    }

    /// Runs forward propagation, returning the network output (the input of
    /// the loss node, or the last layer's output for loss-free graphs).
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches between `input` and the network's input
    /// layer.
    pub fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        let ids: Vec<LayerId> = self.net.layers().map(|n| n.id()).collect();
        for id in ids {
            let node = self.net.node(id).clone();
            let in_tensors: Vec<Tensor> = node
                .inputs()
                .iter()
                .map(|&i| {
                    self.states[i.index()]
                        .out
                        .clone()
                        .expect("topological order guarantees inputs are computed")
                })
                .collect();
            let state = &mut self.states[id.index()];
            state.err = None;
            match node.layer() {
                Layer::Input(shape) => {
                    if input.shape().elems() != shape.elems() {
                        return Err(Error::ShapeMismatch {
                            expected: *shape,
                            got: input.shape(),
                        });
                    }
                    state.out = Some(input.clone());
                }
                Layer::Conv(c) => {
                    let p = ConvParams::new(*c, in_tensors[0].shape())?;
                    let params = state.params.as_ref().expect("conv has params");
                    let pre = conv_forward(&p, &in_tensors[0], &params.weights, &params.bias)?;
                    let out = activation_forward(c.activation, &pre);
                    state.pre = Some(pre);
                    state.out = Some(out);
                }
                Layer::Pool(p) => {
                    let fwd = pool_forward(p, in_tensors[0].shape(), &in_tensors[0])?;
                    state.out = Some(fwd.output.clone());
                    state.pool = Some(fwd);
                }
                Layer::Fc(f) => {
                    let x = in_tensors[0].clone().flatten();
                    let params = state.params.as_ref().expect("fc has params");
                    let pre = fc_forward(&x, f.out_neurons, &params.weights, &params.bias)?;
                    let out = activation_forward(f.activation, &pre);
                    state.pre = Some(pre);
                    state.out = Some(out);
                }
                Layer::EltwiseAdd(act) => {
                    let mut pre = in_tensors[0].clone();
                    for (d, s) in pre.as_mut_slice().iter_mut().zip(in_tensors[1].as_slice()) {
                        *d += s;
                    }
                    let out = activation_forward(*act, &pre);
                    state.pre = Some(pre);
                    state.out = Some(out);
                }
                Layer::EltwiseMul(act) => {
                    let mut pre = in_tensors[0].clone();
                    for (d, s) in pre.as_mut_slice().iter_mut().zip(in_tensors[1].as_slice()) {
                        *d *= s;
                    }
                    let out = activation_forward(*act, &pre);
                    state.pre = Some(pre);
                    state.out = Some(out);
                }
                Layer::Act(act) => {
                    let pre = in_tensors[0].clone();
                    let out = activation_forward(*act, &pre);
                    state.pre = Some(pre);
                    state.out = Some(out);
                }
                Layer::Concat => {
                    let refs: Vec<&Tensor> = in_tensors.iter().collect();
                    state.out = Some(concat_forward(&refs)?);
                }
                Layer::Shortcut {
                    stride,
                    out_features,
                } => {
                    state.out = Some(shortcut_forward(&in_tensors[0], *stride, *out_features)?);
                }
                Layer::Loss => {
                    state.out = Some(in_tensors[0].clone());
                }
                other => {
                    return Err(Error::Unsupported {
                        what: format!("layer kind {}", other.type_tag()),
                    })
                }
            }
        }
        let last = self.net.layers().last().expect("non-empty network");
        Ok(self.states[last.id().index()]
            .out
            .clone()
            .expect("forward computed all outputs"))
    }

    fn add_err(&mut self, id: LayerId, err: Tensor) {
        let slot = &mut self.states[id.index()].err;
        match slot {
            Some(existing) => {
                for (d, s) in existing.as_mut_slice().iter_mut().zip(err.as_slice()) {
                    *d += s;
                }
            }
            None => *slot = Some(err),
        }
    }

    /// Runs backpropagation and weight-gradient accumulation for the last
    /// forward pass, against the golden output `golden`. Returns the
    /// squared-error loss.
    ///
    /// The loss is `L = 0.5 Σ (y − g)²`, so the initial error is `y − g`
    /// (the paper's "difference between the network's output and golden
    /// output").
    ///
    /// # Errors
    ///
    /// Returns [`Error::Unsupported`] when no forward pass has been run, or
    /// shape errors when `golden` does not match the network output.
    pub fn backward(&mut self, golden: &Tensor) -> Result<f32> {
        let ids: Vec<LayerId> = self.net.layers().map(|n| n.id()).collect();
        let last = *ids.last().expect("non-empty");
        let output = self.states[last.index()]
            .out
            .clone()
            .ok_or_else(|| Error::Unsupported {
                what: "backward called before forward".into(),
            })?;
        if output.shape().elems() != golden.shape().elems() {
            return Err(Error::ShapeMismatch {
                expected: output.shape(),
                got: golden.shape(),
            });
        }
        let mut err0 = output.clone();
        for (d, g) in err0.as_mut_slice().iter_mut().zip(golden.as_slice()) {
            *d -= g;
        }
        let loss = 0.5 * err0.squared_norm();
        self.states[last.index()].err = Some(err0);

        for &id in ids.iter().rev() {
            let node = self.net.node(id).clone();
            let Some(err) = self.states[id.index()].err.clone() else {
                continue;
            };
            let in_tensors: Vec<Tensor> = node
                .inputs()
                .iter()
                .map(|&i| {
                    self.states[i.index()]
                        .out
                        .clone()
                        .expect("forward ran before backward")
                })
                .collect();
            match node.layer() {
                Layer::Input(_) => {}
                Layer::Conv(c) => {
                    let p = ConvParams::new(*c, in_tensors[0].shape())?;
                    let pre = self.states[id.index()].pre.clone().expect("fp cached pre");
                    let dz = activation_backward(c.activation, &pre, &err);
                    let in_err = {
                        let params = self.states[id.index()].params.as_ref().expect("params");
                        conv_backward_input(&p, &dz, &params.weights)?
                    };
                    {
                        let params = self.states[id.index()].params.as_mut().expect("params");
                        let (wg, bg) = (&mut params.w_grad, &mut params.b_grad);
                        conv_backward_weights(&p, &in_tensors[0], &dz, wg, bg)?;
                    }
                    self.add_err(node.inputs()[0], in_err);
                }
                Layer::Pool(p) => {
                    let fwd = self.states[id.index()]
                        .pool
                        .clone()
                        .expect("fp cached pool");
                    let in_err = pool_backward(p, in_tensors[0].shape(), &fwd, &err)?;
                    self.add_err(node.inputs()[0], in_err);
                }
                Layer::Fc(f) => {
                    let pre = self.states[id.index()].pre.clone().expect("fp cached pre");
                    let dz = activation_backward(f.activation, &pre, &err);
                    let x = in_tensors[0].clone().flatten();
                    let in_err = {
                        let params = self.states[id.index()].params.as_ref().expect("params");
                        fc_backward_input(&dz, x.shape(), &params.weights)?
                    };
                    {
                        let params = self.states[id.index()].params.as_mut().expect("params");
                        fc_backward_weights(&x, &dz, &mut params.w_grad, &mut params.b_grad)?;
                    }
                    // Reshape the flat error back to the producer's shape.
                    let producer_shape = in_tensors[0].shape();
                    let reshaped = Tensor::from_vec(producer_shape, in_err.into_vec())?;
                    self.add_err(node.inputs()[0], reshaped);
                    let _ = f;
                }
                Layer::EltwiseAdd(act) => {
                    let pre = self.states[id.index()].pre.clone().expect("fp cached pre");
                    let dz = activation_backward(*act, &pre, &err);
                    self.add_err(node.inputs()[0], dz.clone());
                    self.add_err(node.inputs()[1], dz);
                }
                Layer::EltwiseMul(act) => {
                    let pre = self.states[id.index()].pre.clone().expect("fp cached pre");
                    let dz = activation_backward(*act, &pre, &err);
                    // d(a*b)/da = b, /db = a.
                    let mut da = dz.clone();
                    for (d, b) in da.as_mut_slice().iter_mut().zip(in_tensors[1].as_slice()) {
                        *d *= b;
                    }
                    let mut db = dz;
                    for (d, a) in db.as_mut_slice().iter_mut().zip(in_tensors[0].as_slice()) {
                        *d *= a;
                    }
                    self.add_err(node.inputs()[0], da);
                    self.add_err(node.inputs()[1], db);
                }
                Layer::Act(act) => {
                    let pre = self.states[id.index()].pre.clone().expect("fp cached pre");
                    let dz = activation_backward(*act, &pre, &err);
                    self.add_err(node.inputs()[0], dz);
                }
                Layer::Concat => {
                    let shapes: Vec<_> = in_tensors.iter().map(|t| t.shape()).collect();
                    let parts = concat_backward(&err, &shapes)?;
                    for (&input, part) in node.inputs().iter().zip(parts) {
                        self.add_err(input, part);
                    }
                }
                Layer::Shortcut { stride, .. } => {
                    let in_err = shortcut_backward(&err, in_tensors[0].shape(), *stride)?;
                    self.add_err(node.inputs()[0], in_err);
                }
                Layer::Loss => {
                    self.add_err(node.inputs()[0], err);
                }
                other => {
                    return Err(Error::Unsupported {
                        what: format!("layer kind {}", other.type_tag()),
                    })
                }
            }
        }
        Ok(loss)
    }

    /// Applies one SGD step from the accumulated gradients, clearing them.
    pub fn step(&mut self, lr: f32, batch: usize) {
        let opt = Sgd::new(lr);
        for state in &mut self.states {
            if let Some(p) = state.params.as_mut() {
                opt.step(&mut p.weights, &mut p.w_grad, batch);
                opt.step(&mut p.bias, &mut p.b_grad, batch);
            }
        }
    }

    /// Trains one minibatch: FP + BP + WG per image, then a single weight
    /// update with the aggregated gradients (the paper's minibatch flow).
    ///
    /// # Errors
    ///
    /// Propagates forward/backward errors; `inputs` and `goldens` must have
    /// equal, non-zero length.
    pub fn train_minibatch(
        &mut self,
        inputs: &[Tensor],
        goldens: &[Tensor],
        lr: f32,
    ) -> Result<TrainStats> {
        if inputs.is_empty() || inputs.len() != goldens.len() {
            return Err(Error::Unsupported {
                what: format!(
                    "minibatch inputs ({}) and goldens ({}) must match and be non-empty",
                    inputs.len(),
                    goldens.len()
                ),
            });
        }
        let mut total_loss = 0.0;
        for (x, g) in inputs.iter().zip(goldens) {
            self.forward(x)?;
            total_loss += self.backward(g)?;
        }
        self.step(lr, inputs.len());
        Ok(TrainStats {
            loss: total_loss / inputs.len() as f32,
            batch: inputs.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use scaledeep_dnn::{Activation, Conv, Fc, FeatureShape, NetworkBuilder, Pool};

    fn rand_tensor(shape: FeatureShape, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::from_vec(
            shape,
            (0..shape.elems())
                .map(|_| rng.gen_range(-1.0..1.0))
                .collect(),
        )
        .unwrap()
    }

    fn tiny_net() -> Network {
        let mut b = NetworkBuilder::new("t", FeatureShape::new(1, 6, 6));
        b.conv("c1", Conv::relu(2, 3, 1, 1)).unwrap();
        b.pool("s1", Pool::max(2, 2)).unwrap();
        let f = b.fc("f1", Fc::linear(3)).unwrap();
        b.finish_with_loss(f).unwrap()
    }

    #[test]
    fn forward_produces_output_shape() {
        let net = tiny_net();
        let mut exec = Executor::new(&net, 1).unwrap();
        let y = exec
            .forward(&rand_tensor(FeatureShape::new(1, 6, 6), 2))
            .unwrap();
        assert_eq!(y.shape().elems(), 3);
    }

    #[test]
    fn training_reduces_loss() {
        let net = tiny_net();
        let mut exec = Executor::new(&net, 3).unwrap();
        let xs: Vec<Tensor> = (0..4)
            .map(|i| rand_tensor(FeatureShape::new(1, 6, 6), 10 + i))
            .collect();
        let gs: Vec<Tensor> = (0..4)
            .map(|i| rand_tensor(FeatureShape::vector(3), 20 + i))
            .collect();
        let first = exec.train_minibatch(&xs, &gs, 0.01).unwrap().loss;
        let mut last = first;
        for _ in 0..30 {
            last = exec.train_minibatch(&xs, &gs, 0.01).unwrap().loss;
        }
        assert!(last < first * 0.7, "loss {first} -> {last}");
    }

    #[test]
    fn gradients_match_finite_differences_end_to_end() {
        let net = tiny_net();
        let mut exec = Executor::new(&net, 5).unwrap();
        let x = rand_tensor(FeatureShape::new(1, 6, 6), 6);
        let g = rand_tensor(FeatureShape::vector(3), 7);

        exec.forward(&x).unwrap();
        exec.backward(&g).unwrap();

        let conv_id = net.node_by_name("c1").unwrap().id();
        let (w, _) = exec.params(conv_id).unwrap();
        let (wg, _) = exec.grads(conv_id).unwrap();
        let w0 = w.to_vec();
        let analytic = wg.to_vec();

        let eps = 1e-3;
        for wi in (0..w0.len()).step_by(5) {
            let mut wp = w0.clone();
            wp[wi] += eps;
            let (_, b) = exec.params(conv_id).unwrap();
            let b = b.to_vec();
            exec.set_params(conv_id, &wp, &b).unwrap();
            exec.forward(&x).unwrap();
            let mut out_p = exec
                .output(net.node_by_name("f1").unwrap().id())
                .unwrap()
                .clone();
            for (o, gv) in out_p.as_mut_slice().iter_mut().zip(g.as_slice()) {
                *o -= gv;
            }
            let lp = 0.5 * out_p.squared_norm();

            let mut wm = w0.clone();
            wm[wi] -= eps;
            exec.set_params(conv_id, &wm, &b).unwrap();
            exec.forward(&x).unwrap();
            let mut out_m = exec
                .output(net.node_by_name("f1").unwrap().id())
                .unwrap()
                .clone();
            for (o, gv) in out_m.as_mut_slice().iter_mut().zip(g.as_slice()) {
                *o -= gv;
            }
            let lm = 0.5 * out_m.squared_norm();

            exec.set_params(conv_id, &w0, &b).unwrap();
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - analytic[wi]).abs() < 2e-2,
                "w{wi}: fd {fd} vs analytic {}",
                analytic[wi]
            );
        }
    }

    #[test]
    fn residual_network_trains() {
        let mut b = NetworkBuilder::new("res", FeatureShape::new(2, 4, 4));
        let trunk = b.tail();
        let c1 = b.conv("c1", Conv::relu(2, 3, 1, 1)).unwrap();
        let c2 = b.conv_from("c2", c1, Conv::linear(2, 3, 1, 1)).unwrap();
        let add = b.eltwise_add("add", trunk, c2, Activation::Relu).unwrap();
        let f = b.fc_from("f", add, Fc::linear(2)).unwrap();
        let net = b.finish_with_loss(f).unwrap();

        let mut exec = Executor::new(&net, 9).unwrap();
        let x = rand_tensor(FeatureShape::new(2, 4, 4), 1);
        let g = rand_tensor(FeatureShape::vector(2), 2);
        let first = {
            exec.forward(&x).unwrap();
            exec.backward(&g).unwrap()
        };
        for _ in 0..40 {
            exec.forward(&x).unwrap();
            exec.backward(&g).unwrap();
            exec.step(0.02, 1);
        }
        exec.forward(&x).unwrap();
        let last = exec.backward(&g).unwrap();
        assert!(last < first * 0.5, "loss {first} -> {last}");
    }

    #[test]
    fn branching_errors_accumulate_on_trunk() {
        // A node consumed by two branches must receive both branch errors.
        let mut b = NetworkBuilder::new("y", FeatureShape::new(1, 2, 2));
        let trunk = b.tail();
        let a = b.conv_from("a", trunk, Conv::linear(1, 1, 1, 0)).unwrap();
        let c = b.conv_from("c", trunk, Conv::linear(1, 1, 1, 0)).unwrap();
        let add = b.eltwise_add("add", a, c, Activation::None).unwrap();
        let f = b.fc_from("f", add, Fc::linear(1)).unwrap();
        let net = b.finish_with_loss(f).unwrap();
        let mut exec = Executor::new(&net, 11).unwrap();
        let x = rand_tensor(FeatureShape::new(1, 2, 2), 3);
        let g = rand_tensor(FeatureShape::vector(1), 4);
        exec.forward(&x).unwrap();
        exec.backward(&g).unwrap();
        let trunk_err = exec.error(trunk).unwrap();
        // trunk error = err(a-branch) + err(c-branch); both convs are 1x1
        // identity-shaped so trunk error should be non-zero.
        assert!(trunk_err.as_slice().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn minibatch_rejects_mismatched_lengths() {
        let net = tiny_net();
        let mut exec = Executor::new(&net, 1).unwrap();
        let x = vec![rand_tensor(FeatureShape::new(1, 6, 6), 1)];
        let err = exec.train_minibatch(&x, &[], 0.1).unwrap_err();
        assert!(matches!(err, Error::Unsupported { .. }));
    }
}
