//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no cargo-registry access, so the workspace
//! vendors the benchmarking API subset its benches use: `Criterion`,
//! `benchmark_group`/`bench_function`/`sample_size`/`finish`, `Bencher::
//! iter`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros. It measures wall-clock time over a fixed warm-up + sample loop
//! and prints mean time per iteration — no statistics, plots, or baseline
//! comparisons.

#![forbid(unsafe_code)]

use std::hint;
use std::time::Instant;

/// Opaque value barrier (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level bench context.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, 10, f);
        self
    }
}

/// A named group sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, name);
        run_bench(&id, self.sample_size, f);
        self
    }

    /// Ends the group (upstream compatibility; nothing to flush here).
    pub fn finish(self) {}
}

fn run_bench<F>(id: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        iters: samples as u64,
        elapsed_ns: 0,
    };
    // One warm-up pass, then the timed pass.
    let mut warm = Bencher {
        iters: 1,
        elapsed_ns: 0,
    };
    f(&mut warm);
    f(&mut b);
    let per_iter = b.elapsed_ns / b.iters.max(1);
    println!("bench {id:<40} {per_iter:>12} ns/iter ({} iters)", b.iters);
}

/// Timing handle passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed_ns: u64,
}

impl Bencher {
    /// Times `routine`, running it the harness-chosen number of times.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos() as u64;
    }
}

/// Bundles bench functions into a runner (subset of upstream's macro:
/// plain `criterion_group!(name, fn, ...)` form only).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_the_routine() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        let mut count = 0u64;
        g.sample_size(3)
            .bench_function("count", |b| b.iter(|| count += 1));
        g.finish();
        // warm-up (1) + timed (3), possibly re-entered: at least 4 calls.
        assert!(count >= 4, "routine ran {count} times");
    }
}
