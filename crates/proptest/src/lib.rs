//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no cargo-registry access, so the workspace
//! vendors the property-testing API subset its tests use as a local path
//! crate: the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`
//! and `prop_shuffle`, range/tuple/`Just`/`prop_oneof!` strategies,
//! `any::<T>()`, `prop::collection::vec`, `prop::option::of`, and the
//! `prop_assert*`/`prop_assume!` macros.
//!
//! Semantics differ from upstream in two deliberate ways:
//!
//! * **Deterministic**: each test derives its RNG seed from the test name,
//!   so a failure reproduces on every run (no persistence files needed).
//! * **No shrinking**: a failing case is reported verbatim (its `Debug`
//!   form is printed before the panic propagates).

#![forbid(unsafe_code)]

pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseSkip);
        }
    };
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_inner! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_inner! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_inner {
    (cfg = $cfg:expr;
     $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
     )*
    ) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                let strat = ( $( $strat, )+ );
                for case in 0..cfg.cases {
                    let value = $crate::strategy::Strategy::generate(&strat, &mut rng);
                    let shown = format!("{:?}", value);
                    let ( $($arg,)+ ) = value;
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            || -> ::core::result::Result<(), $crate::test_runner::TestCaseSkip> {
                                { $body }
                                ::core::result::Result::Ok(())
                            },
                        ),
                    );
                    match outcome {
                        Ok(_pass_or_skip) => {}
                        Err(payload) => {
                            eprintln!(
                                "proptest `{}`: case {}/{} failed with input {}",
                                stringify!($name), case + 1, cfg.cases, shown,
                            );
                            ::std::panic::resume_unwind(payload);
                        }
                    }
                }
            }
        )*
    };
}
