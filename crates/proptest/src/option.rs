//! Option strategies (subset of `proptest::option`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::fmt::Debug;

/// Generates `Some(element)` three times out of four, `None` otherwise
/// (matching upstream's default 75% `Some` weighting).
pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
    OptionStrategy { element }
}

/// Strategy produced by [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    element: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S>
where
    S::Value: Debug,
{
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.element.generate(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Just;

    #[test]
    fn both_variants_occur() {
        let mut rng = TestRng::from_name("opt");
        let s = of(Just(1u8));
        let draws: Vec<_> = (0..100).map(|_| s.generate(&mut rng)).collect();
        assert!(draws.iter().any(Option::is_some));
        assert!(draws.iter().any(Option::is_none));
    }
}
