//! Test-runner support: per-test configuration and the deterministic RNG.

/// Marker returned by `prop_assume!` to skip a case.
#[derive(Debug, Clone, Copy)]
pub struct TestCaseSkip;

/// Per-`proptest!` configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases generated per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

/// Deterministic generator used to drive strategies: SplitMix64, seeded by
/// hashing the test name so every run of a test replays the same cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG seeded from a test's name (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        Self { state: h }
    }

    /// The next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// A uniform index in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics when `bound` is 0.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "empty choice");
        (self.next_u64() % bound as u64) as usize
    }

    /// A uniform bool.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("t");
        let mut b = TestRng::from_name("t");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::from_name("u");
        assert_ne!(TestRng::from_name("t").next_u64(), c.next_u64());
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut r = TestRng::from_name("bounds");
        for _ in 0..100 {
            assert!(r.below(7) < 7);
        }
    }
}
