//! Strategies: composable deterministic value generators.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::Range;

/// A source of random values of one type (subset of
/// `proptest::strategy::Strategy`; no shrinking).
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Shuffles the generated collection (Fisher–Yates).
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
        Self::Value: Shufflable,
    {
        Shuffle { inner: self }
    }
}

impl<V: Debug> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.as_ref().generate(rng)
    }
}

/// Boxes a strategy (coercion helper used by `prop_oneof!`).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Collections that `prop_shuffle` can permute.
pub trait Shufflable: Debug {
    /// Permutes the collection in place.
    fn shuffle(&mut self, rng: &mut TestRng);
}

fn fisher_yates<T>(slice: &mut [T], rng: &mut TestRng) {
    for i in (1..slice.len()).rev() {
        let j = rng.below(i + 1);
        slice.swap(i, j);
    }
}

impl<T: Debug> Shufflable for Vec<T> {
    fn shuffle(&mut self, rng: &mut TestRng) {
        fisher_yates(self, rng);
    }
}

impl<T: Debug, const N: usize> Shufflable for [T; N] {
    fn shuffle(&mut self, rng: &mut TestRng) {
        fisher_yates(self, rng);
    }
}

/// `prop_shuffle` adapter.
pub struct Shuffle<S> {
    inner: S,
}

impl<S> Strategy for Shuffle<S>
where
    S: Strategy,
    S::Value: Shufflable,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let mut v = self.inner.generate(rng);
        v.shuffle(rng);
        v
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct OneOf<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V: Debug> OneOf<V> {
    /// A choice over `arms`.
    ///
    /// # Panics
    ///
    /// Panics when `arms` is empty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<V: Debug> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.arms.len());
        self.arms[idx].generate(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($s:ident/$v:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(S0 / v0 / 0);
tuple_strategy!(S0 / v0 / 0, S1 / v1 / 1);
tuple_strategy!(S0 / v0 / 0, S1 / v1 / 1, S2 / v2 / 2);
tuple_strategy!(S0 / v0 / 0, S1 / v1 / 1, S2 / v2 / 2, S3 / v3 / 3);
tuple_strategy!(
    S0 / v0 / 0,
    S1 / v1 / 1,
    S2 / v2 / 2,
    S3 / v3 / 3,
    S4 / v4 / 4
);
tuple_strategy!(
    S0 / v0 / 0,
    S1 / v1 / 1,
    S2 / v2 / 2,
    S3 / v3 / 3,
    S4 / v4 / 4,
    S5 / v5 / 5
);
tuple_strategy!(
    S0 / v0 / 0,
    S1 / v1 / 1,
    S2 / v2 / 2,
    S3 / v3 / 3,
    S4 / v4 / 4,
    S5 / v5 / 5,
    S6 / v6 / 6
);
tuple_strategy!(
    S0 / v0 / 0,
    S1 / v1 / 1,
    S2 / v2 / 2,
    S3 / v3 / 3,
    S4 / v4 / 4,
    S5 / v5 / 5,
    S6 / v6 / 6,
    S7 / v7 / 7
);
tuple_strategy!(
    S0 / v0 / 0,
    S1 / v1 / 1,
    S2 / v2 / 2,
    S3 / v3 / 3,
    S4 / v4 / 4,
    S5 / v5 / 5,
    S6 / v6 / 6,
    S7 / v7 / 7,
    S8 / v8 / 8
);
tuple_strategy!(
    S0 / v0 / 0,
    S1 / v1 / 1,
    S2 / v2 / 2,
    S3 / v3 / 3,
    S4 / v4 / 4,
    S5 / v5 / 5,
    S6 / v6 / 6,
    S7 / v7 / 7,
    S8 / v8 / 8,
    S9 / v9 / 9
);
tuple_strategy!(
    S0 / v0 / 0,
    S1 / v1 / 1,
    S2 / v2 / 2,
    S3 / v3 / 3,
    S4 / v4 / 4,
    S5 / v5 / 5,
    S6 / v6 / 6,
    S7 / v7 / 7,
    S8 / v8 / 8,
    S9 / v9 / 9,
    S10 / v10 / 10
);
tuple_strategy!(
    S0 / v0 / 0,
    S1 / v1 / 1,
    S2 / v2 / 2,
    S3 / v3 / 3,
    S4 / v4 / 4,
    S5 / v5 / 5,
    S6 / v6 / 6,
    S7 / v7 / 7,
    S8 / v8 / 8,
    S9 / v9 / 9,
    S10 / v10 / 10,
    S11 / v11 / 11
);

/// Types with a whole-domain default strategy (`any::<T>()`).
pub trait Arbitrary: Debug + Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.bool()
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        // Finite values spanning several orders of magnitude.
        let mantissa = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let exp = (rng.next_u64() % 41) as i32 - 20;
        ((mantissa * 2.0 - 1.0) * 2f64.powi(exp)) as f32
    }
}

/// Strategy wrapper for [`Arbitrary`] types.
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T` (subset of `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_name("strategy-tests")
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        let s = 3u32..17;
        for _ in 0..200 {
            let v = s.generate(&mut r);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn map_applies() {
        let mut r = rng();
        let s = (0u8..4).prop_map(|v| v as usize * 10);
        for _ in 0..20 {
            assert_eq!(s.generate(&mut r) % 10, 0);
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = rng();
        let s = Just([0usize, 1, 2, 3]).prop_shuffle();
        let mut saw_non_identity = false;
        for _ in 0..50 {
            let mut v = s.generate(&mut r);
            if v != [0, 1, 2, 3] {
                saw_non_identity = true;
            }
            v.sort_unstable();
            assert_eq!(v, [0, 1, 2, 3], "shuffle is a permutation");
        }
        assert!(saw_non_identity);
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut r = rng();
        let s = crate::prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.generate(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn tuples_compose() {
        let mut r = rng();
        let s = ((0u8..2), (10u16..12), Just("x"));
        let (a, b, c) = s.generate(&mut r);
        assert!(a < 2 && (10..12).contains(&b) && c == "x");
    }
}
