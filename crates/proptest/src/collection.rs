//! Collection strategies (subset of `proptest::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::Range;

/// Generates `Vec`s whose length is uniform in `len` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, len }
}

/// Strategy produced by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Debug,
{
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.len.end - self.len.start;
        let n = self.len.start + rng.below(span);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Just;

    #[test]
    fn lengths_stay_in_range() {
        let mut rng = TestRng::from_name("vec-len");
        let s = vec(Just(0u8), 2..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()), "len {}", v.len());
        }
    }

    #[test]
    fn zero_length_is_reachable() {
        let mut rng = TestRng::from_name("vec-zero");
        let s = vec(Just(0u8), 0..3);
        assert!((0..100).any(|_| s.generate(&mut rng).is_empty()));
    }
}
