//! Pins `Pool::output_shape` to the shared `scaledeep_isa::samp_out`
//! definition: the graph layer and the `NDSUBSAMP`/`NDUPSAMP` execution
//! semantics must agree on the sampling output extent in both ceil and
//! floor mode, across the window/stride/pad space.

use proptest::prelude::*;
use scaledeep_dnn::{FeatureShape, Pool, PoolKind};

proptest! {
    #[test]
    fn output_shape_matches_shared_samp_out(
        height in 1usize..64,
        width in 1usize..64,
        window in 1usize..8,
        stride in 1usize..8,
        pad in 0usize..4,
        ceil in any::<bool>(),
        features in 1usize..16,
    ) {
        // Only geometries where the window fits the padded input are
        // valid pools (Pool::validate enforces this at build time).
        prop_assume!(height + 2 * pad >= window && width + 2 * pad >= window);
        let pool = Pool {
            kind: PoolKind::Max,
            window,
            stride,
            pad,
            ceil_mode: ceil,
        };
        let out = pool.output_shape(FeatureShape::new(features, height, width));
        prop_assert_eq!(out.features, features);
        prop_assert_eq!(
            out.height,
            scaledeep_isa::samp_out(height, window, stride, pad, ceil)
        );
        prop_assert_eq!(
            out.width,
            scaledeep_isa::samp_out(width, window, stride, pad, ceil)
        );
        // The pre-delegation closed form, kept as an independent pin.
        let span = height + 2 * pad - window;
        let want_h = if ceil { span.div_ceil(stride) + 1 } else { span / stride + 1 };
        prop_assert_eq!(out.height, want_h);
    }
}
