//! Layer vocabulary: the operations a ScaleDeep network is composed of.

use crate::error::{Error, Result};
use crate::shape::FeatureShape;
use std::fmt;

/// Non-linear activation function applied at the output of CONV / FC layers.
///
/// The MemHeavy tile SFUs support ReLU, tanh and sigmoid (paper §3.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Activation {
    /// No activation (identity).
    #[default]
    None,
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

impl Activation {
    /// FLOPs charged per activated element (1 for any supported function,
    /// 0 when no activation is applied). Matches the paper's accounting where
    /// activation contributes ~0.1% of layer FLOPs.
    pub const fn flops_per_elem(self) -> u64 {
        match self {
            Activation::None => 0,
            _ => 1,
        }
    }
}

impl fmt::Display for Activation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Activation::None => "none",
            Activation::Relu => "relu",
            Activation::Tanh => "tanh",
            Activation::Sigmoid => "sigmoid",
        };
        f.write_str(s)
    }
}

/// Pooling flavor of a sampling (SAMP) layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoolKind {
    /// Max-pooling: output is the window maximum.
    Max,
    /// Average-pooling: output is the window mean.
    Avg,
}

impl fmt::Display for PoolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PoolKind::Max => "max",
            PoolKind::Avg => "avg",
        })
    }
}

/// A convolutional (CONV) layer.
///
/// Produces `out_features` maps by convolving the input maps with
/// `kernel`-sized weight kernels, accumulating across input features,
/// adding an optional bias, and applying an [`Activation`].
/// `groups > 1` models the split-tower connection tables of AlexNet
/// (the paper's "connection table denoting which input and output features
/// are connected").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv {
    /// Number of output feature maps.
    pub out_features: usize,
    /// Kernel height (= width; all benchmark kernels are square).
    pub kernel: usize,
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Symmetric zero padding in both spatial dimensions.
    pub pad: usize,
    /// Connection-table groups (1 = dense connectivity).
    pub groups: usize,
    /// Whether a per-output-feature bias is learned.
    pub bias: bool,
    /// Fused output activation.
    pub activation: Activation,
}

impl Conv {
    /// Dense convolution with the given geometry, ReLU activation and bias.
    pub const fn relu(out_features: usize, kernel: usize, stride: usize, pad: usize) -> Self {
        Self {
            out_features,
            kernel,
            stride,
            pad,
            groups: 1,
            bias: true,
            activation: Activation::Relu,
        }
    }

    /// Same as [`Conv::relu`] but with a connection table of `groups` groups.
    pub const fn relu_grouped(
        out_features: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        groups: usize,
    ) -> Self {
        Self {
            out_features,
            kernel,
            stride,
            pad,
            groups,
            bias: true,
            activation: Activation::Relu,
        }
    }

    /// Dense convolution with no activation (used before element-wise adds
    /// in residual blocks).
    pub const fn linear(out_features: usize, kernel: usize, stride: usize, pad: usize) -> Self {
        Self {
            out_features,
            kernel,
            stride,
            pad,
            groups: 1,
            bias: true,
            activation: Activation::None,
        }
    }

    /// Number of learned weights given `in_features` input maps
    /// (kernel weights plus biases when enabled).
    pub fn weights(&self, in_features: usize) -> u64 {
        let per_out = (in_features / self.groups) * self.kernel * self.kernel;
        let w = (self.out_features as u64) * (per_out as u64);
        if self.bias {
            w + self.out_features as u64
        } else {
            w
        }
    }

    fn validate(&self, name: &str, input: FeatureShape) -> Result<()> {
        if self.kernel == 0 || self.stride == 0 || self.out_features == 0 || self.groups == 0 {
            return Err(Error::InvalidParameter {
                layer: name.to_string(),
                detail: "kernel, stride, out_features and groups must be non-zero".into(),
            });
        }
        if !input.features.is_multiple_of(self.groups)
            || !self.out_features.is_multiple_of(self.groups)
        {
            return Err(Error::InvalidParameter {
                layer: name.to_string(),
                detail: format!(
                    "groups {} must divide in_features {} and out_features {}",
                    self.groups, input.features, self.out_features
                ),
            });
        }
        if input.height + 2 * self.pad < self.kernel || input.width + 2 * self.pad < self.kernel {
            return Err(Error::ShapeMismatch {
                layer: name.to_string(),
                detail: format!(
                    "kernel {} exceeds padded input {}x{}",
                    self.kernel,
                    input.height + 2 * self.pad,
                    input.width + 2 * self.pad
                ),
            });
        }
        Ok(())
    }

    /// Output shape for the given input shape.
    pub fn output_shape(&self, input: FeatureShape) -> FeatureShape {
        let h = (input.height + 2 * self.pad - self.kernel) / self.stride + 1;
        let w = (input.width + 2 * self.pad - self.kernel) / self.stride + 1;
        FeatureShape::new(self.out_features, h, w)
    }
}

/// A sampling (SAMP) layer: down-samples each feature map independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pool {
    /// Max or average pooling.
    pub kind: PoolKind,
    /// Pooling window edge length.
    pub window: usize,
    /// Stride between windows.
    pub stride: usize,
    /// Symmetric zero padding.
    pub pad: usize,
    /// When true (the default constructors' choice), partial windows at the
    /// border are kept (Caffe/ceil mode); when false they are dropped
    /// (floor mode, used by e.g. CNN-S).
    pub ceil_mode: bool,
}

impl Pool {
    /// Max-pooling with the given window and stride, no padding, ceil mode.
    pub const fn max(window: usize, stride: usize) -> Self {
        Self {
            kind: PoolKind::Max,
            window,
            stride,
            pad: 0,
            ceil_mode: true,
        }
    }

    /// Average pooling with the given window and stride, no padding,
    /// ceil mode.
    pub const fn avg(window: usize, stride: usize) -> Self {
        Self {
            kind: PoolKind::Avg,
            window,
            stride,
            pad: 0,
            ceil_mode: true,
        }
    }

    /// Returns the same pool in floor mode (partial border windows dropped).
    pub const fn floor_mode(mut self) -> Self {
        self.ceil_mode = false;
        self
    }

    /// Returns the same pool with symmetric padding `pad`.
    pub const fn with_pad(mut self, pad: usize) -> Self {
        self.pad = pad;
        self
    }

    fn validate(&self, name: &str, input: FeatureShape) -> Result<()> {
        if self.window == 0 || self.stride == 0 {
            return Err(Error::InvalidParameter {
                layer: name.to_string(),
                detail: "window and stride must be non-zero".into(),
            });
        }
        if input.height + 2 * self.pad < self.window || input.width + 2 * self.pad < self.window {
            return Err(Error::ShapeMismatch {
                layer: name.to_string(),
                detail: format!(
                    "window {} exceeds padded input {}x{}",
                    self.window,
                    input.height + 2 * self.pad,
                    input.width + 2 * self.pad
                ),
            });
        }
        Ok(())
    }

    /// Output shape for the given input shape. Ceil mode keeps partial
    /// windows at the border (Caffe-style), which several benchmark
    /// topologies rely on (e.g. GoogLeNet 3x3/2 pooling on 28x28 -> 14x14);
    /// floor mode drops them (CNN-S). Delegates per dimension to
    /// [`scaledeep_isa::samp_out`] — the single definition the `NDSUBSAMP`
    /// / `NDUPSAMP` execution semantics share.
    pub fn output_shape(&self, input: FeatureShape) -> FeatureShape {
        let h = scaledeep_isa::samp_out(
            input.height,
            self.window,
            self.stride,
            self.pad,
            self.ceil_mode,
        );
        let w = scaledeep_isa::samp_out(
            input.width,
            self.window,
            self.stride,
            self.pad,
            self.ceil_mode,
        );
        FeatureShape::new(input.features, h, w)
    }
}

/// A fully-connected (FC) layer: `out_neurons` neurons, each connected to all
/// layer inputs through a distinct weight (a vector–matrix multiplication
/// followed by an activation; paper §2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fc {
    /// Number of output neurons.
    pub out_neurons: usize,
    /// Whether a per-neuron bias is learned.
    pub bias: bool,
    /// Fused output activation.
    pub activation: Activation,
}

impl Fc {
    /// FC layer with ReLU activation and bias.
    pub const fn relu(out_neurons: usize) -> Self {
        Self {
            out_neurons,
            bias: true,
            activation: Activation::Relu,
        }
    }

    /// FC layer with no activation (typical final classifier before softmax).
    pub const fn linear(out_neurons: usize) -> Self {
        Self {
            out_neurons,
            bias: true,
            activation: Activation::None,
        }
    }

    /// Number of learned weights given a flattened input of `in_elems`.
    pub fn weights(&self, in_elems: usize) -> u64 {
        let w = (self.out_neurons as u64) * (in_elems as u64);
        if self.bias {
            w + self.out_neurons as u64
        } else {
            w
        }
    }
}

/// One operation in the network graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Layer {
    /// Network input (training images enter here); carries its shape.
    Input(FeatureShape),
    /// Convolutional layer.
    Conv(Conv),
    /// Sampling layer.
    Pool(Pool),
    /// Fully-connected layer.
    Fc(Fc),
    /// Element-wise addition of exactly two equal-shaped inputs, followed by
    /// an activation (residual connections). Executed on MemHeavy SFUs.
    EltwiseAdd(Activation),
    /// Element-wise (Hadamard) product of exactly two equal-shaped inputs,
    /// followed by an activation — LSTM gating. Executed on MemHeavy SFUs
    /// (the paper's Figure 5 "vector element-wise multiply" kernel).
    EltwiseMul(Activation),
    /// A standalone activation over one input (e.g. the tanh on an LSTM
    /// cell state). Executed on MemHeavy SFUs.
    Act(Activation),
    /// Feature-wise concatenation of two or more inputs with equal spatial
    /// extents (inception modules). A pure data-placement operation.
    Concat,
    /// Parameter-free residual shortcut (ResNet "option A"): spatially
    /// subsamples by `stride` and zero-pads the feature count to
    /// `out_features`. Learns no weights, so ResNet-18/34 match the paper's
    /// 11.5M / 21.1M weight counts and 17 / 33 CONV-layer counts exactly.
    Shortcut {
        /// Spatial subsampling factor.
        stride: usize,
        /// Output feature count after zero-padding.
        out_features: usize,
    },
    /// Loss head: compares network output against the golden output `G_LN`
    /// and produces the initial back-propagated error (paper Figure 3a).
    Loss,
}

impl Layer {
    /// Validates arity and parameters and computes the output shape.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ArityMismatch`], [`Error::ShapeMismatch`] or
    /// [`Error::InvalidParameter`] when the inputs are incompatible with the
    /// layer.
    pub fn infer_shape(&self, name: &str, inputs: &[FeatureShape]) -> Result<FeatureShape> {
        let want_one = |n: usize| -> Result<FeatureShape> {
            if n == 1 {
                Ok(inputs[0])
            } else {
                Err(Error::ArityMismatch {
                    layer: name.to_string(),
                    expected: "exactly 1",
                    got: n,
                })
            }
        };
        match self {
            Layer::Input(shape) => {
                if inputs.is_empty() {
                    Ok(*shape)
                } else {
                    Err(Error::ArityMismatch {
                        layer: name.to_string(),
                        expected: "exactly 0",
                        got: inputs.len(),
                    })
                }
            }
            Layer::Conv(c) => {
                let i = want_one(inputs.len())?;
                c.validate(name, i)?;
                Ok(c.output_shape(i))
            }
            Layer::Pool(p) => {
                let i = want_one(inputs.len())?;
                p.validate(name, i)?;
                Ok(p.output_shape(i))
            }
            Layer::Fc(f) => {
                let i = want_one(inputs.len())?;
                if f.out_neurons == 0 {
                    return Err(Error::InvalidParameter {
                        layer: name.to_string(),
                        detail: "out_neurons must be non-zero".into(),
                    });
                }
                let _ = i;
                Ok(FeatureShape::vector(f.out_neurons))
            }
            Layer::EltwiseAdd(_) | Layer::EltwiseMul(_) => {
                if inputs.len() != 2 {
                    return Err(Error::ArityMismatch {
                        layer: name.to_string(),
                        expected: "exactly 2",
                        got: inputs.len(),
                    });
                }
                if inputs[0] != inputs[1] {
                    return Err(Error::ShapeMismatch {
                        layer: name.to_string(),
                        detail: format!("{} vs {}", inputs[0], inputs[1]),
                    });
                }
                Ok(inputs[0])
            }
            Layer::Act(_) => want_one(inputs.len()),
            Layer::Concat => {
                if inputs.len() < 2 {
                    return Err(Error::ArityMismatch {
                        layer: name.to_string(),
                        expected: "2 or more",
                        got: inputs.len(),
                    });
                }
                let (h, w) = (inputs[0].height, inputs[0].width);
                let mut features = 0;
                for s in inputs {
                    if s.height != h || s.width != w {
                        return Err(Error::ShapeMismatch {
                            layer: name.to_string(),
                            detail: format!("spatial extents differ: {} vs {}x{}", s, h, w),
                        });
                    }
                    features += s.features;
                }
                Ok(FeatureShape::new(features, h, w))
            }
            Layer::Shortcut {
                stride,
                out_features,
            } => {
                let i = want_one(inputs.len())?;
                if *stride == 0 {
                    return Err(Error::InvalidParameter {
                        layer: name.to_string(),
                        detail: "stride must be non-zero".into(),
                    });
                }
                if *out_features < i.features {
                    return Err(Error::ShapeMismatch {
                        layer: name.to_string(),
                        detail: format!(
                            "shortcut cannot shrink features: {} -> {}",
                            i.features, out_features
                        ),
                    });
                }
                Ok(FeatureShape::new(
                    *out_features,
                    i.height.div_ceil(*stride),
                    i.width.div_ceil(*stride),
                ))
            }
            Layer::Loss => want_one(inputs.len()),
        }
    }

    /// Short type tag, as used in the paper's tables.
    pub const fn type_tag(&self) -> &'static str {
        match self {
            Layer::Input(_) => "INPUT",
            Layer::Conv(_) => "CONV",
            Layer::Pool(_) => "SAMP",
            Layer::Fc(_) => "FC",
            Layer::EltwiseAdd(_) => "ELTWISE",
            Layer::EltwiseMul(_) => "ELTMUL",
            Layer::Act(_) => "ACT",
            Layer::Concat => "CONCAT",
            Layer::Shortcut { .. } => "SHORTCUT",
            Layer::Loss => "LOSS",
        }
    }

    /// True for layers that hold learned weights (CONV and FC).
    pub const fn has_weights(&self) -> bool {
        matches!(self, Layer::Conv(_) | Layer::Fc(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_output_shape_matches_alexnet_c1() {
        // AlexNet C1: 227x227 input, 96 kernels of 11x11, stride 4 -> 55x55.
        let c = Conv::relu(96, 11, 4, 0);
        let out = c.output_shape(FeatureShape::new(3, 227, 227));
        assert_eq!(out, FeatureShape::new(96, 55, 55));
    }

    #[test]
    fn conv_weight_count_includes_bias_and_groups() {
        let c = Conv::relu_grouped(256, 5, 1, 2, 2);
        // 256 outputs x (96/2 inputs) x 5x5 + 256 biases.
        assert_eq!(c.weights(96), 256 * 48 * 25 + 256);
    }

    #[test]
    fn pool_ceil_mode_keeps_partial_windows() {
        // GoogLeNet pool: 28x28, 3x3 window, stride 2 -> 14x14 (ceil mode).
        let p = Pool::max(3, 2);
        let out = p.output_shape(FeatureShape::new(192, 28, 28));
        assert_eq!((out.height, out.width), (14, 14));
    }

    #[test]
    fn conv_rejects_kernel_larger_than_input() {
        let c = Conv::relu(8, 7, 1, 0);
        let err = c.validate("c", FeatureShape::new(3, 5, 5)).unwrap_err();
        assert!(matches!(err, Error::ShapeMismatch { .. }));
    }

    #[test]
    fn conv_rejects_bad_groups() {
        let c = Conv::relu_grouped(10, 3, 1, 1, 3);
        let err = c.validate("c", FeatureShape::new(9, 8, 8)).unwrap_err();
        assert!(matches!(err, Error::InvalidParameter { .. }));
    }

    #[test]
    fn eltwise_requires_matching_shapes() {
        let l = Layer::EltwiseAdd(Activation::Relu);
        let a = FeatureShape::new(64, 56, 56);
        let b = FeatureShape::new(64, 28, 28);
        assert!(l.infer_shape("add", &[a, b]).is_err());
        assert_eq!(l.infer_shape("add", &[a, a]).unwrap(), a);
    }

    #[test]
    fn concat_sums_features() {
        let l = Layer::Concat;
        let parts = [
            FeatureShape::new(64, 28, 28),
            FeatureShape::new(128, 28, 28),
            FeatureShape::new(32, 28, 28),
        ];
        assert_eq!(
            l.infer_shape("cat", &parts).unwrap(),
            FeatureShape::new(224, 28, 28)
        );
    }

    #[test]
    fn fc_flattens_any_input() {
        let l = Layer::Fc(Fc::relu(4096));
        let s = l
            .infer_shape("fc6", &[FeatureShape::new(256, 6, 6)])
            .unwrap();
        assert_eq!(s, FeatureShape::vector(4096));
    }
}
