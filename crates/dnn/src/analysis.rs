//! Workload analysis: FLOPs, bytes and Bytes/FLOP per training step and per
//! computational kernel (paper §2.3, Figures 1, 4, 5 and 15).

mod flops;
mod kernels;
mod table;

pub use kernels::{kernel_summary, KernelShare};
pub use table::{layer_class_breakdown, LayerClass, LayerClassRow};

use crate::graph::{LayerId, Network};
use crate::layer::Layer;
use std::fmt;
use std::ops::{Add, AddAssign};

/// Bytes per element at single precision (FP32).
pub const BYTES_PER_ELEM_SP: u64 = 4;
/// Bytes per element at half precision (FP16).
pub const BYTES_PER_ELEM_HP: u64 = 2;

/// One of the three steps of a training iteration (paper §2.2, Figure 3a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Step {
    /// Forward propagation (also the entirety of network evaluation).
    Fp,
    /// Backpropagation of errors.
    Bp,
    /// Weight-gradient computation.
    Wg,
}

impl Step {
    /// All steps, in execution order.
    pub const ALL: [Step; 3] = [Step::Fp, Step::Bp, Step::Wg];
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Step::Fp => "FP",
            Step::Bp => "BP",
            Step::Wg => "WG",
        })
    }
}

/// The six computational kernels the paper identifies in DNN training
/// (Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Kernel {
    /// n-dimensional convolution (CONV FP/BP/WG). Compute dominant.
    NdConv,
    /// Vector–matrix multiplication (FC FP/BP). Compute dominant.
    MatMul,
    /// n-dimensional accumulation of partial features (CONV, FC).
    NdAccumulate,
    /// Vector element-wise multiplication (FC WG outer product).
    VecEltwiseMul,
    /// Up/down sampling (SAMP FP/BP).
    Sampling,
    /// Non-linear activation function evaluation.
    ActivationFn,
}

impl Kernel {
    /// All kernels in the paper's Figure 5 order.
    pub const ALL: [Kernel; 6] = [
        Kernel::NdConv,
        Kernel::MatMul,
        Kernel::NdAccumulate,
        Kernel::VecEltwiseMul,
        Kernel::Sampling,
        Kernel::ActivationFn,
    ];

    /// True for the compute-dominant kernels mapped to CompHeavy tiles
    /// (paper §3.1); the remainder run on MemHeavy SFUs.
    pub const fn is_compute_heavy(self) -> bool {
        matches!(self, Kernel::NdConv | Kernel::MatMul)
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Kernel::NdConv => "nD-Convolution",
            Kernel::MatMul => "Matrix Multiply",
            Kernel::NdAccumulate => "nD-Accumulate",
            Kernel::VecEltwiseMul => "Vector eltwise mul",
            Kernel::Sampling => "Sampling",
            Kernel::ActivationFn => "Activation Fn",
        })
    }
}

/// FLOPs and bytes charged to each kernel within one step of one layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpBreakdown {
    flops: [u64; 6],
    bytes: [u64; 6],
}

impl OpBreakdown {
    /// Adds `flops` / `bytes` to a kernel's tally.
    pub fn charge(&mut self, kernel: Kernel, flops: u64, bytes: u64) {
        let i = Self::idx(kernel);
        self.flops[i] += flops;
        self.bytes[i] += bytes;
    }

    const fn idx(kernel: Kernel) -> usize {
        match kernel {
            Kernel::NdConv => 0,
            Kernel::MatMul => 1,
            Kernel::NdAccumulate => 2,
            Kernel::VecEltwiseMul => 3,
            Kernel::Sampling => 4,
            Kernel::ActivationFn => 5,
        }
    }

    /// FLOPs charged to one kernel.
    pub fn flops(&self, kernel: Kernel) -> u64 {
        self.flops[Self::idx(kernel)]
    }

    /// Bytes charged to one kernel.
    pub fn bytes(&self, kernel: Kernel) -> u64 {
        self.bytes[Self::idx(kernel)]
    }

    /// Total FLOPs across kernels.
    pub fn total_flops(&self) -> u64 {
        self.flops.iter().sum()
    }

    /// Total bytes across kernels.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// FLOPs on compute-heavy kernels (CompHeavy tile work).
    pub fn compute_heavy_flops(&self) -> u64 {
        Kernel::ALL
            .iter()
            .filter(|k| k.is_compute_heavy())
            .map(|&k| self.flops(k))
            .sum()
    }

    /// FLOPs on memory-dominant kernels (MemHeavy SFU work).
    pub fn mem_heavy_flops(&self) -> u64 {
        self.total_flops() - self.compute_heavy_flops()
    }

    /// Bytes/FLOP of this breakdown (0 when no FLOPs are charged).
    pub fn bytes_per_flop(&self) -> f64 {
        let f = self.total_flops();
        if f == 0 {
            0.0
        } else {
            self.total_bytes() as f64 / f as f64
        }
    }
}

impl Add for OpBreakdown {
    type Output = OpBreakdown;
    fn add(mut self, rhs: OpBreakdown) -> OpBreakdown {
        self += rhs;
        self
    }
}

impl AddAssign for OpBreakdown {
    fn add_assign(&mut self, rhs: OpBreakdown) {
        for i in 0..6 {
            self.flops[i] += rhs.flops[i];
            self.bytes[i] += rhs.bytes[i];
        }
    }
}

/// Static cost of a single layer: per-step kernel breakdowns plus structural
/// counts (weights, neurons, connections).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LayerCost {
    /// Per-step breakdowns, indexed FP/BP/WG.
    steps: [OpBreakdown; 3],
    /// Learned weights held by the layer (including biases).
    pub weights: u64,
    /// Output neurons (CONV/FC only, the paper's Figure 15 convention).
    pub neurons: u64,
    /// Connections = multiply–accumulate pairs per image (CONV/FC).
    pub connections: u64,
}

impl LayerCost {
    const fn step_idx(step: Step) -> usize {
        match step {
            Step::Fp => 0,
            Step::Bp => 1,
            Step::Wg => 2,
        }
    }

    /// The kernel breakdown for one step.
    pub fn step(&self, step: Step) -> &OpBreakdown {
        &self.steps[Self::step_idx(step)]
    }

    pub(crate) fn step_mut(&mut self, step: Step) -> &mut OpBreakdown {
        &mut self.steps[Self::step_idx(step)]
    }

    /// Total FLOPs in one step.
    pub fn flops(&self, step: Step) -> u64 {
        self.step(step).total_flops()
    }

    /// Total FLOPs over a full training iteration (FP+BP+WG).
    pub fn training_flops(&self) -> u64 {
        Step::ALL.iter().map(|&s| self.flops(s)).sum()
    }

    /// Sum of all three step breakdowns.
    pub fn training_breakdown(&self) -> OpBreakdown {
        self.steps[0] + self.steps[1] + self.steps[2]
    }
}

/// Complete static analysis of a [`Network`].
///
/// Produced by [`Network::analyze`]; all quantities are per single input
/// image unless stated otherwise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Analysis {
    name: String,
    elem_bytes: u64,
    costs: Vec<LayerCost>,
}

impl Analysis {
    /// The analyzed network's name.
    pub fn network_name(&self) -> &str {
        &self.name
    }

    /// Bytes per element assumed for byte counts (4 for SP, 2 for HP).
    pub fn elem_bytes(&self) -> u64 {
        self.elem_bytes
    }

    /// Cost of a single layer.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to the analyzed network.
    pub fn layer(&self, id: LayerId) -> &LayerCost {
        &self.costs[id.index()]
    }

    /// Iterates over per-layer costs in topological order.
    pub fn layer_costs(&self) -> impl ExactSizeIterator<Item = &LayerCost> + '_ {
        self.costs.iter()
    }

    /// Total FLOPs of one step across all layers.
    pub fn total_flops(&self, step: Step) -> u64 {
        self.costs.iter().map(|c| c.flops(step)).sum()
    }

    /// Total FLOPs of a full training iteration (one image).
    pub fn training_flops(&self) -> u64 {
        self.costs.iter().map(|c| c.training_flops()).sum()
    }

    /// Total learned weights.
    pub fn weights(&self) -> u64 {
        self.costs.iter().map(|c| c.weights).sum()
    }

    /// Total neurons (CONV + FC outputs).
    pub fn neurons(&self) -> u64 {
        self.costs.iter().map(|c| c.neurons).sum()
    }

    /// Total connections (MAC pairs per image).
    pub fn connections(&self) -> u64 {
        self.costs.iter().map(|c| c.connections).sum()
    }

    /// Aggregate kernel breakdown over a full training iteration.
    pub fn training_breakdown(&self) -> OpBreakdown {
        self.costs
            .iter()
            .map(|c| c.training_breakdown())
            .fold(OpBreakdown::default(), |a, b| a + b)
    }

    /// Total feature bytes that must be storable on chip: outputs of every
    /// layer (features) plus, for training, the same amount again for errors.
    pub fn feature_bytes(&self, net: &Network) -> u64 {
        net.layers()
            .filter(|n| !matches!(n.layer(), Layer::Input(_) | Layer::Loss))
            .map(|n| n.output_shape().elems() as u64 * self.elem_bytes)
            .sum()
    }
}

impl Network {
    /// Analyzes the network at single precision (4 bytes/element).
    pub fn analyze(&self) -> Analysis {
        self.analyze_with_elem_bytes(BYTES_PER_ELEM_SP)
    }

    /// Analyzes the network with an explicit element size in bytes
    /// (use [`BYTES_PER_ELEM_HP`] for the half-precision design point).
    pub fn analyze_with_elem_bytes(&self, elem_bytes: u64) -> Analysis {
        let costs = self
            .layers()
            .map(|n| flops::layer_cost(self, n, elem_bytes))
            .collect();
        Analysis {
            name: self.name().to_string(),
            elem_bytes,
            costs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use crate::layer::{Conv, Fc, Pool};
    use crate::shape::FeatureShape;

    fn tiny() -> Network {
        let mut b = NetworkBuilder::new("tiny", FeatureShape::new(3, 8, 8));
        b.conv("c1", Conv::relu(4, 3, 1, 1)).unwrap();
        b.pool("s1", Pool::max(2, 2)).unwrap();
        let f = b.fc("f1", Fc::linear(10)).unwrap();
        b.finish_with_loss(f).unwrap()
    }

    #[test]
    fn conv_fp_flops_match_closed_form() {
        let net = tiny();
        let a = net.analyze();
        let c1 = net.node_by_name("c1").unwrap();
        let conv_flops = a.layer(c1.id()).step(Step::Fp).flops(Kernel::NdConv);
        // 2 * K*K * Cin * Cout * Hout * Wout
        assert_eq!(conv_flops, 2 * 9 * 3 * 4 * 8 * 8);
    }

    #[test]
    fn fc_weights_count_in_totals() {
        let net = tiny();
        let a = net.analyze();
        // fc: (4*4*4) inputs x 10 + 10 bias; conv: 4*3*9 + 4 bias.
        assert_eq!(a.weights(), (64 * 10 + 10) + (4 * 27 + 4));
    }

    #[test]
    fn training_flops_exceed_fp_flops() {
        let a = tiny().analyze();
        assert!(a.training_flops() > 2 * a.total_flops(Step::Fp));
    }

    #[test]
    fn half_precision_halves_bytes_not_flops() {
        let net = tiny();
        let sp = net.analyze();
        let hp = net.analyze_with_elem_bytes(BYTES_PER_ELEM_HP);
        assert_eq!(sp.training_flops(), hp.training_flops());
        assert_eq!(
            sp.training_breakdown().total_bytes(),
            2 * hp.training_breakdown().total_bytes()
        );
    }

    #[test]
    fn breakdown_addition_is_componentwise() {
        let mut a = OpBreakdown::default();
        a.charge(Kernel::NdConv, 10, 100);
        let mut b = OpBreakdown::default();
        b.charge(Kernel::NdConv, 5, 50);
        b.charge(Kernel::MatMul, 7, 7);
        let c = a + b;
        assert_eq!(c.flops(Kernel::NdConv), 15);
        assert_eq!(c.bytes(Kernel::NdConv), 150);
        assert_eq!(c.total_flops(), 22);
        assert_eq!(c.compute_heavy_flops(), 22);
        assert_eq!(c.mem_heavy_flops(), 0);
    }

    #[test]
    fn neurons_count_conv_and_fc_only() {
        let net = tiny();
        let a = net.analyze();
        // conv out 4*8*8 = 256, fc out 10. Pool/input/loss excluded.
        assert_eq!(a.neurons(), 256 + 10);
    }
}
