//! The network-level training schedule of the paper's Figure 3a: FP flows
//! forward through the layers (slots `1..=N`), BP flows backward
//! (`N+1..=2N`), and each layer's WG runs as soon as its output error is
//! available — in the same slot as its BP, in parallel on the dedicated WG
//! tiles ("gradients corresponding to each weight in a layer can be
//! computed in parallel, as soon as the error at the output of the layer
//! is available", §2.2).

use crate::analysis::Step;
use crate::graph::{LayerId, Network};
use crate::layer::Layer;

/// One scheduled step: which training step of which layer runs in which
/// time slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledStep {
    /// FP, BP or WG.
    pub step: Step,
    /// The layer involved.
    pub layer: LayerId,
    /// The Figure 3a time slot (FP of the first layer = slot 1).
    pub slot: usize,
}

/// Builds the Figure 3a schedule for one training input.
///
/// Layers with no compute (input, loss, concat) do not occupy slots; for
/// DAGs the slot of a layer is one past the latest slot among its
/// producers (FP) / consumers (BP), so branches schedule in parallel.
pub fn training_schedule(net: &Network) -> Vec<ScheduledStep> {
    let occupies = |layer: &Layer| {
        matches!(
            layer,
            Layer::Conv(_) | Layer::Pool(_) | Layer::Fc(_) | Layer::EltwiseAdd(_)
        )
    };
    let has_weights = |layer: &Layer| layer.has_weights();

    // FP slots: longest-path depth over compute layers.
    let mut fp_slot = vec![0usize; net.len()];
    let mut depth = 0usize;
    for node in net.layers() {
        let base = node
            .inputs()
            .iter()
            .map(|&i| fp_slot[i.index()])
            .max()
            .unwrap_or(0);
        fp_slot[node.id().index()] = if occupies(node.layer()) {
            base + 1
        } else {
            base
        };
        depth = depth.max(fp_slot[node.id().index()]);
    }

    // BP slots mirror: the layer finishing FP last starts BP first.
    let mut out = Vec::new();
    for node in net.layers() {
        if !occupies(node.layer()) {
            continue;
        }
        let fp = fp_slot[node.id().index()];
        let bp = 2 * depth + 1 - fp;
        out.push(ScheduledStep {
            step: Step::Fp,
            layer: node.id(),
            slot: fp,
        });
        out.push(ScheduledStep {
            step: Step::Bp,
            layer: node.id(),
            slot: bp,
        });
        if has_weights(node.layer()) {
            // WG runs alongside BP on the layer's WG tiles.
            out.push(ScheduledStep {
                step: Step::Wg,
                layer: node.id(),
                slot: bp,
            });
        }
    }
    out.sort_by_key(|s| (s.slot, s.layer, s.step as usize));
    out
}

/// The pipeline depth of the schedule: `2N` slots for training
/// (the paper's "pipeline depth is equal to twice the number of layers"),
/// or 0 for compute-free graphs.
pub fn pipeline_depth(net: &Network) -> usize {
    training_schedule(net)
        .iter()
        .map(|s| s.slot)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use crate::layer::{Conv, Fc, Pool};
    use crate::shape::FeatureShape;
    use crate::zoo;

    #[test]
    fn chain_schedule_is_2n_deep() {
        let mut b = NetworkBuilder::new("t", FeatureShape::new(1, 8, 8));
        b.conv("c", Conv::relu(2, 3, 1, 1)).unwrap();
        b.pool("s", Pool::max(2, 2)).unwrap();
        let f = b.fc("f", Fc::linear(2)).unwrap();
        let net = b.finish_with_loss(f).unwrap();
        // 3 compute layers -> depth 6 (paper: 2N for training).
        assert_eq!(pipeline_depth(&net), 6);
    }

    #[test]
    fn fp_respects_producer_order() {
        let net = zoo::alexnet();
        let sched = training_schedule(&net);
        for s in sched.iter().filter(|s| s.step == Step::Fp) {
            for &input in net.node(s.layer).inputs() {
                if let Some(prod) = sched
                    .iter()
                    .find(|p| p.step == Step::Fp && p.layer == input)
                {
                    assert!(prod.slot < s.slot, "producer must run earlier");
                }
            }
        }
    }

    #[test]
    fn bp_mirrors_fp() {
        let net = zoo::alexnet();
        let sched = training_schedule(&net);
        let depth = pipeline_depth(&net);
        for s in sched.iter().filter(|s| s.step == Step::Fp) {
            let bp = sched
                .iter()
                .find(|p| p.step == Step::Bp && p.layer == s.layer)
                .expect("every compute layer has a BP step");
            assert_eq!(s.slot + bp.slot, depth + 1, "BP mirrors FP");
        }
    }

    #[test]
    fn wg_runs_with_bp_for_weighted_layers_only() {
        let net = zoo::alexnet();
        let sched = training_schedule(&net);
        for s in sched.iter().filter(|s| s.step == Step::Wg) {
            assert!(net.node(s.layer).layer().has_weights());
            let bp = sched
                .iter()
                .find(|p| p.step == Step::Bp && p.layer == s.layer)
                .unwrap();
            assert_eq!(s.slot, bp.slot, "WG starts when the error arrives");
        }
        // Pools never appear in WG.
        let s1 = net.node_by_name("s1").unwrap().id();
        assert!(!sched.iter().any(|s| s.step == Step::Wg && s.layer == s1));
    }

    #[test]
    fn parallel_branches_share_slots() {
        let net = zoo::googlenet();
        let sched = training_schedule(&net);
        // The four branches of inception 3a run in overlapping slots.
        let slot_of = |name: &str| {
            let id = net.node_by_name(name).unwrap().id();
            sched
                .iter()
                .find(|s| s.step == Step::Fp && s.layer == id)
                .unwrap()
                .slot
        };
        assert_eq!(slot_of("i3a_1x1"), slot_of("i3a_3x3r"));
        assert_eq!(slot_of("i3a_3x3"), slot_of("i3a_1x1") + 1);
    }
}
