//! The network graph: a DAG of layers with inferred shapes.

use crate::error::{Error, Result};
use crate::layer::Layer;
use crate::shape::FeatureShape;
use std::fmt;

/// Identifier of a layer inside a [`Network`].
///
/// Ids are dense indices assigned in insertion order, which is also a valid
/// topological order (a layer may only consume previously added layers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LayerId(pub(crate) usize);

impl LayerId {
    /// The dense index of this layer.
    pub const fn index(self) -> usize {
        self.0
    }

    /// Reconstructs an id from a dense index. Intended for tooling and
    /// tests that fabricate ids; ids obtained this way are only meaningful
    /// against the network that assigned the index.
    pub const fn from_index(index: usize) -> Self {
        LayerId(index)
    }
}

impl fmt::Display for LayerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// One node of the graph: a named [`Layer`] with its inputs and inferred
/// output shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerNode {
    id: LayerId,
    name: String,
    layer: Layer,
    inputs: Vec<LayerId>,
    output: FeatureShape,
    consumers: Vec<LayerId>,
}

impl LayerNode {
    /// The node id.
    pub fn id(&self) -> LayerId {
        self.id
    }

    /// The layer name (unique within the network by convention of the
    /// builder; uniqueness is not enforced here).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The operation performed by this node.
    pub fn layer(&self) -> &Layer {
        &self.layer
    }

    /// Ids of the nodes whose outputs feed this node.
    pub fn inputs(&self) -> &[LayerId] {
        &self.inputs
    }

    /// Ids of the nodes that consume this node's output.
    pub fn consumers(&self) -> &[LayerId] {
        &self.consumers
    }

    /// Inferred output shape.
    pub fn output_shape(&self) -> FeatureShape {
        self.output
    }
}

/// A deep network: a directed acyclic graph of layers.
///
/// Construct one through [`crate::NetworkBuilder`]. Iteration order (and id
/// order) is topological.
///
/// ```
/// use scaledeep_dnn::{NetworkBuilder, Layer, Conv, Fc, FeatureShape};
///
/// # fn main() -> Result<(), scaledeep_dnn::Error> {
/// let mut b = NetworkBuilder::new("toy", FeatureShape::new(3, 32, 32));
/// let c = b.conv("c1", Conv::relu(16, 3, 1, 1))?;
/// let f = b.fc_from("fc", c, Fc::linear(10))?;
/// let net = b.finish_with_loss(f)?;
/// assert_eq!(net.layers().count(), 4); // input, conv, fc, loss
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Network {
    name: String,
    nodes: Vec<LayerNode>,
}

impl Network {
    pub(crate) fn from_parts(name: String, nodes: Vec<LayerNode>) -> Result<Self> {
        if nodes.is_empty() {
            return Err(Error::Empty);
        }
        Ok(Self { name, nodes })
    }

    pub(crate) fn push_node(
        nodes: &mut Vec<LayerNode>,
        name: String,
        layer: Layer,
        inputs: Vec<LayerId>,
    ) -> Result<LayerId> {
        let mut in_shapes = Vec::with_capacity(inputs.len());
        for &i in &inputs {
            let node = nodes.get(i.0).ok_or(Error::UnknownLayer { id: i.0 })?;
            in_shapes.push(node.output);
        }
        let output = layer.infer_shape(&name, &in_shapes)?;
        let id = LayerId(nodes.len());
        for &i in &inputs {
            nodes[i.0].consumers.push(id);
        }
        nodes.push(LayerNode {
            id,
            name,
            layer,
            inputs,
            output,
            consumers: Vec::new(),
        });
        Ok(id)
    }

    /// The network name (e.g. `"alexnet"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes, including input and loss nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph holds no layers (never the case for a constructed
    /// network, but part of the collection-like API).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this network.
    pub fn node(&self, id: LayerId) -> &LayerNode {
        &self.nodes[id.0]
    }

    /// Looks a node up by name.
    pub fn node_by_name(&self, name: &str) -> Option<&LayerNode> {
        self.nodes.iter().find(|n| n.name == name)
    }

    /// Iterates over all nodes in topological (= id) order.
    pub fn layers(&self) -> impl ExactSizeIterator<Item = &LayerNode> + '_ {
        self.nodes.iter()
    }

    /// The input node (first node; builders always create it first).
    pub fn input(&self) -> &LayerNode {
        &self.nodes[0]
    }

    /// The shapes flowing into the given node.
    pub fn input_shapes(&self, id: LayerId) -> Vec<FeatureShape> {
        self.node(id)
            .inputs()
            .iter()
            .map(|&i| self.node(i).output_shape())
            .collect()
    }

    /// Total input feature elements of a node (sum over all inputs). For FC
    /// layers this is the flattened fan-in.
    pub fn fan_in_elems(&self, id: LayerId) -> usize {
        self.input_shapes(id).iter().map(|s| s.elems()).sum()
    }

    /// Counts of (CONV, FC, SAMP) layers, the paper's Figure 15 convention.
    pub fn layer_counts(&self) -> (usize, usize, usize) {
        let mut conv = 0;
        let mut fc = 0;
        let mut samp = 0;
        for n in &self.nodes {
            match n.layer() {
                Layer::Conv(_) => conv += 1,
                Layer::Fc(_) => fc += 1,
                Layer::Pool(_) => samp += 1,
                _ => {}
            }
        }
        (conv, fc, samp)
    }

    /// The deepest chain length counting only CONV/FC/SAMP layers; the
    /// paper's "number of layers" for pipeline-depth purposes.
    pub fn depth(&self) -> usize {
        let mut depth = vec![0usize; self.nodes.len()];
        let mut max = 0;
        for n in &self.nodes {
            let base = n.inputs().iter().map(|&i| depth[i.0]).max().unwrap_or(0);
            let own = usize::from(matches!(
                n.layer(),
                Layer::Conv(_) | Layer::Fc(_) | Layer::Pool(_)
            ));
            depth[n.id().0] = base + own;
            max = max.max(depth[n.id().0]);
        }
        max
    }
}

impl fmt::Display for Network {
    /// Renders a layer-by-layer summary: id, type, name, output shape.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "network `{}` ({} nodes)", self.name, self.nodes.len())?;
        for n in &self.nodes {
            writeln!(
                f,
                "  {:>4} {:8} {:20} -> {}",
                n.id().to_string(),
                n.layer().type_tag(),
                n.name(),
                n.output_shape()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use crate::layer::{Conv, Fc};

    fn toy() -> Network {
        let mut b = NetworkBuilder::new("toy", FeatureShape::new(3, 8, 8));
        let c = b.conv("c1", Conv::relu(4, 3, 1, 1)).unwrap();
        let f = b.fc_from("fc", c, Fc::linear(10)).unwrap();
        b.finish_with_loss(f).unwrap()
    }

    #[test]
    fn ids_are_topological() {
        let net = toy();
        for n in net.layers() {
            for &i in n.inputs() {
                assert!(i.0 < n.id().0, "input must precede consumer");
            }
        }
    }

    #[test]
    fn consumers_are_back_edges() {
        let net = toy();
        let input = net.input();
        assert_eq!(input.consumers().len(), 1);
        let conv = net.node(input.consumers()[0]);
        assert_eq!(conv.name(), "c1");
    }

    #[test]
    fn node_by_name_finds_layers() {
        let net = toy();
        assert!(net.node_by_name("fc").is_some());
        assert!(net.node_by_name("nope").is_none());
    }

    #[test]
    fn depth_counts_compute_layers_only() {
        let net = toy();
        assert_eq!(net.depth(), 2); // conv + fc, not input/loss
    }

    #[test]
    fn layer_counts_match() {
        assert_eq!(toy().layer_counts(), (1, 1, 0));
    }

    #[test]
    fn display_summarizes_layers() {
        let s = toy().to_string();
        assert!(s.contains("network `toy`"));
        assert!(s.contains("CONV"));
        assert!(s.contains("c1"));
    }
}
