//! Layer-class breakdown (paper Figure 4): groups a network's layers into
//! initial CONV / mid CONV / FC / SAMP classes and summarizes compute and
//! data requirements per class.

use super::{Analysis, Kernel, OpBreakdown, Step};
use crate::graph::Network;
use crate::layer::Layer;
use std::fmt;

/// The four layer classes of the paper's Figure 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LayerClass {
    /// Initial CONV layers: few, large features (paper: OverFeat C1–C2).
    InitialConv,
    /// Mid CONV layers: many, small features (paper: OverFeat C3–C5).
    MidConv,
    /// Fully-connected layers.
    FullyConnected,
    /// Sampling layers.
    Sampling,
}

impl LayerClass {
    /// All classes in Figure 4's column order.
    pub const ALL: [LayerClass; 4] = [
        LayerClass::InitialConv,
        LayerClass::MidConv,
        LayerClass::FullyConnected,
        LayerClass::Sampling,
    ];
}

impl fmt::Display for LayerClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LayerClass::InitialConv => "Initial Conv",
            LayerClass::MidConv => "Mid Conv",
            LayerClass::FullyConnected => "Fully Conn.",
            LayerClass::Sampling => "Sub Samp.",
        })
    }
}

/// Minimum output feature edge length for a CONV layer to be classed as
/// *initial*. The paper's split for OverFeat puts 24×24 outputs in the
/// initial class and 12×12 in the mid class.
const INITIAL_CONV_MIN_EDGE: usize = 20;

/// Classifies one layer, returning `None` for non-CONV/FC/SAMP nodes.
pub(crate) fn classify(net: &Network, id: crate::LayerId) -> Option<LayerClass> {
    let node = net.node(id);
    match node.layer() {
        Layer::Conv(_) => {
            if node.output_shape().height >= INITIAL_CONV_MIN_EDGE {
                Some(LayerClass::InitialConv)
            } else {
                Some(LayerClass::MidConv)
            }
        }
        Layer::Fc(_) => Some(LayerClass::FullyConnected),
        Layer::Pool(_) => Some(LayerClass::Sampling),
        _ => None,
    }
}

/// One row (column, in the paper's transposed layout) of Figure 4.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerClassRow {
    /// The layer class summarized by this row.
    pub class: LayerClass,
    /// Number of layers in the class.
    pub layers: usize,
    /// (min, max) output feature count across the class.
    pub feature_count: (usize, usize),
    /// (min, max) output feature edge length across the class.
    pub feature_size: (usize, usize),
    /// (min, max) learned weights per layer.
    pub weights: (u64, u64),
    /// Share of the network's total training FLOPs, in [0, 1].
    pub flops_share: f64,
    /// Bytes/FLOP over the FP + BP steps.
    pub bf_fp_bp: f64,
    /// Bytes/FLOP over the WG step (0 for SAMP layers, which hold no weights).
    pub bf_wg: f64,
    /// Intra-layer FLOP split by kernel over FP+BP+WG, shares in [0, 1].
    pub op_split: Vec<(Kernel, f64)>,
}

/// Computes the Figure 4 breakdown for a network.
///
/// Classes with no member layers are omitted.
pub fn layer_class_breakdown(net: &Network, analysis: &Analysis) -> Vec<LayerClassRow> {
    let total_flops = analysis.training_flops().max(1) as f64;
    let mut rows = Vec::new();
    for class in LayerClass::ALL {
        let members: Vec<_> = net
            .layers()
            .filter(|n| classify(net, n.id()) == Some(class))
            .collect();
        if members.is_empty() {
            continue;
        }
        let mut fp_bp = OpBreakdown::default();
        let mut wg = OpBreakdown::default();
        let mut feature_count = (usize::MAX, 0);
        let mut feature_size = (usize::MAX, 0);
        let mut weights = (u64::MAX, 0);
        for n in &members {
            let cost = analysis.layer(n.id());
            fp_bp += *cost.step(Step::Fp) + *cost.step(Step::Bp);
            wg += *cost.step(Step::Wg);
            let s = n.output_shape();
            feature_count = (
                feature_count.0.min(s.features),
                feature_count.1.max(s.features),
            );
            feature_size = (feature_size.0.min(s.height), feature_size.1.max(s.height));
            if cost.weights > 0 || class != LayerClass::Sampling {
                weights = (weights.0.min(cost.weights), weights.1.max(cost.weights));
            }
        }
        if weights.0 == u64::MAX {
            weights = (0, 0);
        }
        let total = fp_bp + wg;
        let class_flops = total.total_flops() as f64;
        let op_split = Kernel::ALL
            .iter()
            .map(|&k| (k, total.flops(k) as f64 / class_flops.max(1.0)))
            .filter(|&(_, share)| share > 0.0)
            .collect();
        rows.push(LayerClassRow {
            class,
            layers: members.len(),
            feature_count,
            feature_size,
            weights,
            flops_share: class_flops / total_flops,
            bf_fp_bp: fp_bp.bytes_per_flop(),
            bf_wg: wg.bytes_per_flop(),
            op_split,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn overfeat_classes_match_paper_split() {
        let net = zoo::overfeat_fast();
        let a = net.analyze();
        let rows = layer_class_breakdown(&net, &a);
        let initial = rows
            .iter()
            .find(|r| r.class == LayerClass::InitialConv)
            .unwrap();
        let mid = rows
            .iter()
            .find(|r| r.class == LayerClass::MidConv)
            .unwrap();
        // Paper: C1, C2 initial; C3-C5 mid.
        assert_eq!(initial.layers, 2);
        assert_eq!(mid.layers, 3);
        // Paper: initial ≈16% of FLOPs, mid ≈80%, FC ≈4%.
        assert!(initial.flops_share > 0.08 && initial.flops_share < 0.30);
        assert!(mid.flops_share > 0.55 && mid.flops_share < 0.90);
    }

    #[test]
    fn fc_class_has_bf_near_two() {
        let net = zoo::overfeat_fast();
        let a = net.analyze();
        let rows = layer_class_breakdown(&net, &a);
        let fc = rows
            .iter()
            .find(|r| r.class == LayerClass::FullyConnected)
            .unwrap();
        assert!(
            fc.bf_fp_bp > 1.5 && fc.bf_fp_bp < 2.5,
            "got {}",
            fc.bf_fp_bp
        );
        assert!(fc.bf_wg > 3.5 && fc.bf_wg < 4.5, "got {}", fc.bf_wg);
    }

    #[test]
    fn sampling_class_has_no_weights() {
        let net = zoo::overfeat_fast();
        let a = net.analyze();
        let rows = layer_class_breakdown(&net, &a);
        let samp = rows
            .iter()
            .find(|r| r.class == LayerClass::Sampling)
            .unwrap();
        assert_eq!(samp.weights, (0, 0));
        assert_eq!(samp.bf_wg, 0.0);
    }

    #[test]
    fn conv_classes_dominated_by_convolution() {
        let net = zoo::overfeat_fast();
        let a = net.analyze();
        for row in layer_class_breakdown(&net, &a) {
            if matches!(row.class, LayerClass::InitialConv | LayerClass::MidConv) {
                let conv_share = row
                    .op_split
                    .iter()
                    .find(|(k, _)| *k == Kernel::NdConv)
                    .map(|&(_, s)| s)
                    .unwrap();
                // Paper: 98.3% (initial) / 94.6% (mid) of FLOPs in convolution.
                assert!(conv_share > 0.90, "conv share {conv_share} too low");
            }
        }
    }
}
