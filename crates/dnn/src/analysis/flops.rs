//! Per-layer, per-step FLOP and byte accounting.
//!
//! The accounting rules mirror the paper's Figure 4/5 conventions:
//!
//! * a multiply–accumulate inside a dot product counts 2 FLOPs and is
//!   charged to `NdConv` (CONV) or `MatMul` (FC);
//! * accumulating partial output features across input features counts one
//!   FLOP per (input feature, output element) pair and is charged to
//!   `NdAccumulate` with one streamed memory access per FLOP (B/F = elem
//!   size, i.e. 4 at single precision — the paper's 4.01);
//! * activation functions count 1 FLOP per element with a read and a write
//!   (B/F = 8 at single precision);
//! * sampling counts one FLOP per window element (down-sampling) or per
//!   scattered error (up-sampling) and streams the input and output feature
//!   maps (B/F ≈ 5 for 2×2/2 windows);
//! * the FC weight-gradient outer product is charged to `VecEltwiseMul`
//!   with 2 FLOPs (multiply + accumulate-into-gradient) and a
//!   read-modify-write of the gradient per element (B/F = 4).

use super::{Kernel, LayerCost, Step};
use crate::graph::{LayerNode, Network};
use crate::layer::{Activation, Conv, Fc, Layer, Pool};
use crate::shape::FeatureShape;

/// Computes the full cost of one layer.
pub(super) fn layer_cost(net: &Network, node: &LayerNode, e: u64) -> LayerCost {
    let out = node.output_shape();
    let ins = net.input_shapes(node.id());
    match node.layer() {
        Layer::Input(_) => LayerCost::default(),
        Layer::Conv(c) => conv_cost(*c, ins[0], out, e),
        Layer::Pool(p) => pool_cost(*p, ins[0], out, e),
        Layer::Fc(f) => fc_cost(*f, ins[0], out, e),
        Layer::EltwiseAdd(act) => eltwise_cost(*act, out, e),
        Layer::EltwiseMul(act) => eltwise_mul_cost(*act, out, e),
        Layer::Act(act) => act_cost(*act, out, e),
        Layer::Concat => LayerCost::default(),
        Layer::Shortcut { .. } => shortcut_cost(ins[0], out, e),
        Layer::Loss => loss_cost(out, e),
    }
}

fn charge_activation(cost: &mut LayerCost, step: Step, act: Activation, elems: u64, e: u64) {
    let f = act.flops_per_elem() * elems;
    if f > 0 {
        cost.step_mut(step)
            .charge(Kernel::ActivationFn, f, 2 * e * f);
    }
}

fn conv_cost(c: Conv, input: FeatureShape, out: FeatureShape, e: u64) -> LayerCost {
    let mut cost = LayerCost::default();
    let cin_g = (input.features / c.groups) as u64;
    let out_elems = out.elems() as u64;
    let out_feature_elems = out.feature_elems() as u64;
    let in_elems = input.elems() as u64;
    let k2 = (c.kernel * c.kernel) as u64;
    let weights = c.weights(input.features);
    // MAC pairs per image: every output element accumulates k^2 * (Cin/g)
    // products.
    let macs = k2 * cin_g * out_elems;

    cost.weights = weights;
    cost.neurons = out_elems;
    cost.connections = macs;

    // --- FP: convolve each input feature with each kernel, accumulate
    // partial output features, apply the activation.
    let fp = cost.step_mut(Step::Fp);
    fp.charge(
        Kernel::NdConv,
        2 * macs,
        e * (in_elems + weights + out_elems),
    );
    let acc = cin_g * out_elems;
    fp.charge(Kernel::NdAccumulate, acc, e * acc);
    charge_activation(&mut cost, Step::Fp, c.activation, out_elems, e);

    // --- BP: transposed convolution of the output errors through the
    // kernels, accumulating partial input errors; activation derivative is
    // applied to the incoming error.
    let bp = cost.step_mut(Step::Bp);
    bp.charge(
        Kernel::NdConv,
        2 * macs,
        e * (out_elems + weights + in_elems),
    );
    let bp_acc = (c.out_features as u64 / c.groups as u64) * in_elems;
    bp.charge(Kernel::NdAccumulate, bp_acc, e * bp_acc);
    charge_activation(&mut cost, Step::Bp, c.activation, out_elems, e);

    // --- WG: correlate stored FP inputs with output errors; every weight
    // gradient accumulates Hout*Wout products.
    let wg = cost.step_mut(Step::Wg);
    wg.charge(
        Kernel::NdConv,
        2 * macs,
        e * (in_elems + out_elems + weights),
    );
    // Accumulating partial gradients into the gradient buffer, once per
    // learned weight per image.
    let _ = out_feature_elems;
    wg.charge(Kernel::NdAccumulate, weights, e * weights);

    cost
}

fn pool_cost(p: Pool, input: FeatureShape, out: FeatureShape, e: u64) -> LayerCost {
    let mut cost = LayerCost::default();
    let in_elems = input.elems() as u64;
    let out_elems = out.elems() as u64;
    let w2 = (p.window * p.window) as u64;

    // FP down-sampling: one compare/add per window element.
    cost.step_mut(Step::Fp)
        .charge(Kernel::Sampling, w2 * out_elems, e * (in_elems + out_elems));
    // BP up-sampling: one scattered add per input-error element.
    cost.step_mut(Step::Bp)
        .charge(Kernel::Sampling, in_elems, e * (in_elems + out_elems));
    cost
}

fn fc_cost(f: Fc, input: FeatureShape, out: FeatureShape, e: u64) -> LayerCost {
    let mut cost = LayerCost::default();
    let n_in = input.elems() as u64;
    let n_out = out.elems() as u64;
    let weights = f.weights(input.elems());
    let macs = n_in * n_out;

    cost.weights = weights;
    cost.neurons = n_out;
    cost.connections = macs;

    cost.step_mut(Step::Fp)
        .charge(Kernel::MatMul, 2 * macs, e * (weights + n_in + n_out));
    charge_activation(&mut cost, Step::Fp, f.activation, n_out, e);

    cost.step_mut(Step::Bp)
        .charge(Kernel::MatMul, 2 * macs, e * (weights + n_out + n_in));
    charge_activation(&mut cost, Step::Bp, f.activation, n_out, e);

    // WG: outer product of FP input and BP error, accumulated into the
    // gradient (read-modify-write).
    cost.step_mut(Step::Wg).charge(
        Kernel::VecEltwiseMul,
        2 * macs,
        e * (n_in + n_out + 2 * macs),
    );
    cost
}

fn eltwise_cost(act: Activation, out: FeatureShape, e: u64) -> LayerCost {
    let mut cost = LayerCost::default();
    let elems = out.elems() as u64;
    cost.step_mut(Step::Fp)
        .charge(Kernel::NdAccumulate, elems, e * elems);
    charge_activation(&mut cost, Step::Fp, act, elems, e);
    // BP: the error fans out to both branches (copy + optional derivative).
    cost.step_mut(Step::Bp)
        .charge(Kernel::NdAccumulate, elems, e * elems);
    charge_activation(&mut cost, Step::Bp, act, elems, e);
    cost
}

fn eltwise_mul_cost(act: Activation, out: FeatureShape, e: u64) -> LayerCost {
    // The Figure 5 vector element-wise multiply kernel: one multiply per
    // element forward; two per element backward (da = err*b, db = err*a),
    // streaming both operands and the result (B/F = 4 at SP, like FC WG).
    let mut cost = LayerCost::default();
    let elems = out.elems() as u64;
    cost.step_mut(Step::Fp)
        .charge(Kernel::VecEltwiseMul, elems, 4 * e * elems);
    charge_activation(&mut cost, Step::Fp, act, elems, e);
    cost.step_mut(Step::Bp)
        .charge(Kernel::VecEltwiseMul, 2 * elems, 4 * e * elems);
    charge_activation(&mut cost, Step::Bp, act, elems, e);
    cost
}

fn act_cost(act: Activation, out: FeatureShape, e: u64) -> LayerCost {
    let mut cost = LayerCost::default();
    let elems = out.elems() as u64;
    charge_activation(&mut cost, Step::Fp, act, elems, e);
    charge_activation(&mut cost, Step::Bp, act, elems, e);
    cost
}

fn shortcut_cost(input: FeatureShape, out: FeatureShape, e: u64) -> LayerCost {
    // A parameter-free subsample + zero-pad: pure data movement, charged as
    // sampling traffic with one FLOP per copied element so B/F stays finite.
    let mut cost = LayerCost::default();
    let copied = input.elems().min(out.elems()).max(1) as u64;
    cost.step_mut(Step::Fp)
        .charge(Kernel::Sampling, copied, e * 2 * copied);
    cost.step_mut(Step::Bp)
        .charge(Kernel::Sampling, copied, e * 2 * copied);
    cost
}

fn loss_cost(out: FeatureShape, e: u64) -> LayerCost {
    let mut cost = LayerCost::default();
    let elems = out.elems() as u64;
    // error = network output - golden output (one subtract per class).
    cost.step_mut(Step::Bp)
        .charge(Kernel::NdAccumulate, elems, e * elems);
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use crate::layer::PoolKind;

    #[test]
    fn conv_bf_is_low_for_large_features() {
        // OverFeat C1-like: 3 -> 96 features, 11x11 kernel on 231x231.
        let c = Conv::relu(96, 11, 4, 0);
        let input = FeatureShape::new(3, 231, 231);
        let out = c.output_shape(input);
        let cost = conv_cost(c, input, out, 4);
        let bf = cost.step(Step::Fp).bytes_per_flop();
        assert!(bf < 0.05, "initial conv B/F should be tiny, got {bf}");
    }

    #[test]
    fn fc_bf_is_two_at_sp() {
        let f = Fc::relu(4096);
        let input = FeatureShape::vector(4096);
        let cost = fc_cost(f, input, FeatureShape::vector(4096), 4);
        let bf = cost.step(Step::Fp).bytes_per_flop();
        assert!((bf - 2.0).abs() < 0.05, "FC FP B/F ≈ 2, got {bf}");
    }

    #[test]
    fn fc_wg_bf_is_four_at_sp() {
        let f = Fc::relu(4096);
        let input = FeatureShape::vector(4096);
        let cost = fc_cost(f, input, FeatureShape::vector(4096), 4);
        let bf = cost.step(Step::Wg).bytes_per_flop();
        assert!((bf - 4.0).abs() < 0.05, "FC WG B/F ≈ 4, got {bf}");
    }

    #[test]
    fn sampling_bf_near_five() {
        let p = Pool {
            ceil_mode: true,
            kind: PoolKind::Max,
            window: 2,
            stride: 2,
            pad: 0,
        };
        let input = FeatureShape::new(96, 56, 56);
        let out = p.output_shape(input);
        let cost = pool_cost(p, input, out, 4);
        let bf = cost.step(Step::Fp).bytes_per_flop();
        assert!((bf - 5.0).abs() < 0.1, "SAMP FP B/F ≈ 5, got {bf}");
    }

    #[test]
    fn activation_bf_is_eight() {
        let mut b = NetworkBuilder::new("t", FeatureShape::new(3, 16, 16));
        b.conv("c", Conv::relu(8, 3, 1, 1)).unwrap();
        let net = b.finish().unwrap();
        let a = net.analyze();
        let c = net.node_by_name("c").unwrap();
        let step = a.layer(c.id()).step(Step::Fp);
        let f = step.flops(Kernel::ActivationFn);
        let by = step.bytes(Kernel::ActivationFn);
        assert_eq!(by, 8 * f);
    }

    #[test]
    fn mid_conv_accumulation_share_matches_paper() {
        // Mid conv: 3x3 kernel, accumulation/conv FLOP ratio ≈ 1/(2*9) ≈ 5.6%
        // (the paper reports 5.3% for OverFeat mid CONV layers).
        let c = Conv::relu(1024, 3, 1, 1);
        let input = FeatureShape::new(512, 12, 12);
        let out = c.output_shape(input);
        let cost = conv_cost(c, input, out, 4);
        let fp = cost.step(Step::Fp);
        let ratio = fp.flops(Kernel::NdAccumulate) as f64 / fp.total_flops() as f64;
        assert!(ratio > 0.04 && ratio < 0.06, "got {ratio}");
    }

    #[test]
    fn grouped_conv_halves_macs() {
        let dense = Conv::relu(256, 5, 1, 2);
        let grouped = Conv::relu_grouped(256, 5, 1, 2, 2);
        let input = FeatureShape::new(96, 27, 27);
        let d = conv_cost(dense, input, dense.output_shape(input), 4);
        let g = conv_cost(grouped, input, grouped.output_shape(input), 4);
        assert_eq!(d.connections, 2 * g.connections);
    }
}
