//! Suite-level kernel summary (paper Figure 5): aggregates the FLOP share
//! and Bytes/FLOP of each computational kernel across a set of networks.

use super::{Kernel, OpBreakdown};
use crate::graph::Network;

/// One row of Figure 5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelShare {
    /// The kernel summarized by this row.
    pub kernel: Kernel,
    /// Share of total training FLOPs across the suite, in [0, 1].
    pub flops_share: f64,
    /// Bytes/FLOP of the kernel across the suite.
    pub bytes_per_flop: f64,
}

/// Aggregates Figure 5 across a benchmark suite.
///
/// Each network contributes its full-training-iteration breakdown; shares are
/// taken over the summed FLOPs so larger networks weigh proportionally more,
/// matching the paper's suite-level percentages.
///
/// ```
/// use scaledeep_dnn::{kernel_summary, zoo, Kernel};
///
/// let nets = [zoo::alexnet(), zoo::vgg_a()];
/// let rows = kernel_summary(&nets);
/// let conv = rows.iter().find(|r| r.kernel == Kernel::NdConv).unwrap();
/// assert!(conv.flops_share > 0.9); // convolution dominates CNNs
/// ```
pub fn kernel_summary(networks: &[Network]) -> Vec<KernelShare> {
    let mut total = OpBreakdown::default();
    for net in networks {
        total += net.analyze().training_breakdown();
    }
    let all_flops = total.total_flops().max(1) as f64;
    Kernel::ALL
        .iter()
        .map(|&kernel| {
            let f = total.flops(kernel);
            let b = total.bytes(kernel);
            KernelShare {
                kernel,
                flops_share: f as f64 / all_flops,
                bytes_per_flop: if f == 0 { 0.0 } else { b as f64 / f as f64 },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    fn suite() -> Vec<Network> {
        zoo::benchmark_suite()
    }

    #[test]
    fn conv_dominates_suite_flops() {
        let rows = kernel_summary(&suite());
        let conv = rows.iter().find(|r| r.kernel == Kernel::NdConv).unwrap();
        // Paper: 93.1% across the 11-net suite.
        assert!(
            conv.flops_share > 0.85 && conv.flops_share < 0.99,
            "conv share {}",
            conv.flops_share
        );
    }

    #[test]
    fn matmul_share_is_small() {
        let rows = kernel_summary(&suite());
        let mm = rows.iter().find(|r| r.kernel == Kernel::MatMul).unwrap();
        // Paper: 3.02% FLOPs, B/F = 2.
        assert!(mm.flops_share < 0.10, "matmul share {}", mm.flops_share);
        assert!(
            mm.bytes_per_flop > 1.3 && mm.bytes_per_flop < 2.7,
            "matmul B/F {}",
            mm.bytes_per_flop
        );
    }

    #[test]
    fn accumulate_bf_near_four() {
        let rows = kernel_summary(&suite());
        let acc = rows
            .iter()
            .find(|r| r.kernel == Kernel::NdAccumulate)
            .unwrap();
        assert!(
            acc.bytes_per_flop > 3.5 && acc.bytes_per_flop < 4.5,
            "acc B/F {}",
            acc.bytes_per_flop
        );
    }

    #[test]
    fn activation_bf_is_eight() {
        let rows = kernel_summary(&suite());
        let act = rows
            .iter()
            .find(|r| r.kernel == Kernel::ActivationFn)
            .unwrap();
        assert!((act.bytes_per_flop - 8.0).abs() < 0.01);
        assert!(act.flops_share < 0.01);
    }

    #[test]
    fn sampling_bf_near_five() {
        let rows = kernel_summary(&suite());
        let s = rows.iter().find(|r| r.kernel == Kernel::Sampling).unwrap();
        assert!(
            s.bytes_per_flop > 3.0 && s.bytes_per_flop < 6.5,
            "sampling B/F {}",
            s.bytes_per_flop
        );
        assert!(s.flops_share < 0.01);
    }

    #[test]
    fn shares_sum_to_one() {
        let rows = kernel_summary(&suite());
        let sum: f64 = rows.iter().map(|r| r.flops_share).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }
}
