//! Beyond-CNN topologies (paper §1: ScaleDeep "can be programmed to
//! execute other DNN topologies for supervised and unsupervised learning,
//! such as RNNs, LSTM networks and autoencoders").
//!
//! These build on the same graph substrate: an autoencoder is an FC
//! hourglass; a recurrent network unrolled through time is a deep chain of
//! (untied) recurrence cells. Both map onto the FcLayer hub and exercise
//! the wheel/ring data paths rather than the CONV grid.

use crate::builder::NetworkBuilder;
use crate::graph::Network;
use crate::layer::{Activation, Fc};
use crate::shape::FeatureShape;

/// A fully-connected autoencoder: `dims[0] → … → dims.last() → … →
/// dims[0]` with tanh encoders/decoders and a linear reconstruction head.
/// The loss compares the reconstruction against the golden input
/// (unsupervised training uses the input itself as the golden output).
///
/// # Panics
///
/// Panics when `dims` has fewer than two entries or contains zeros.
pub fn autoencoder(dims: &[usize]) -> Network {
    assert!(
        dims.len() >= 2,
        "autoencoder needs input and bottleneck dims"
    );
    assert!(dims.iter().all(|&d| d > 0), "dims must be non-zero");
    let mut b = NetworkBuilder::new("autoencoder", FeatureShape::vector(dims[0]));
    for (i, &d) in dims.iter().enumerate().skip(1) {
        b.fc(
            format!("enc{i}"),
            Fc {
                out_neurons: d,
                bias: false,
                activation: Activation::Tanh,
            },
        )
        .expect("valid encoder layer");
    }
    for (i, &d) in dims.iter().rev().enumerate().skip(1) {
        let last = i == dims.len() - 1;
        b.fc(
            format!("dec{i}"),
            Fc {
                out_neurons: d,
                bias: false,
                activation: if last {
                    Activation::None
                } else {
                    Activation::Tanh
                },
            },
        )
        .expect("valid decoder layer");
    }
    let out = b.tail();
    b.finish_with_loss(out)
        .expect("autoencoder is a valid graph")
}

/// An Elman-style recurrent network unrolled for `steps` timesteps:
/// `h_t = tanh(W_t · h_{t-1})` with a linear readout. Unrolling turns the
/// recurrence into a deep chain the ScaleDeep compiler maps like any other
/// layer sequence; weights are untied across timesteps (the graph
/// substrate assigns every layer its own parameters — the tied-weight
/// update is a host-side aggregation, like minibatch gradient
/// aggregation).
///
/// # Panics
///
/// Panics when `steps`, `input_dim` or `hidden` is zero.
pub fn unrolled_rnn(steps: usize, input_dim: usize, hidden: usize, outputs: usize) -> Network {
    assert!(steps > 0 && input_dim > 0 && hidden > 0 && outputs > 0);
    let mut b = NetworkBuilder::new("unrolled-rnn", FeatureShape::vector(input_dim));
    for t in 0..steps {
        b.fc(
            format!("step{t}"),
            Fc {
                out_neurons: hidden,
                bias: false,
                activation: Activation::Tanh,
            },
        )
        .expect("valid recurrence cell");
    }
    let out = b
        .fc(
            "readout",
            Fc {
                out_neurons: outputs,
                bias: false,
                activation: Activation::None,
            },
        )
        .expect("valid readout");
    b.finish_with_loss(out).expect("rnn is a valid graph")
}

/// An LSTM unrolled for `steps` timesteps (untied weights), gated with
/// the element-wise multiply kernel of Figure 5:
///
/// ```text
/// i,f,o = sigmoid(W·h)   g = tanh(W·h)
/// c' = f (*) c + i (*) g        (first step: c' = i (*) g)
/// h' = o (*) tanh(c')
/// ```
///
/// A linear readout closes the network. The input vector seeds `h_0`
/// through a projection layer.
///
/// # Panics
///
/// Panics when any dimension is zero.
pub fn unrolled_lstm(steps: usize, input_dim: usize, hidden: usize, outputs: usize) -> Network {
    assert!(steps > 0 && input_dim > 0 && hidden > 0 && outputs > 0);
    let mut b = NetworkBuilder::new("unrolled-lstm", FeatureShape::vector(input_dim));
    let gate = |act: Activation| Fc {
        out_neurons: hidden,
        bias: false,
        activation: act,
    };
    let mut h = b.fc("embed", gate(Activation::Tanh)).expect("embedding");
    let mut c: Option<crate::LayerId> = None;
    for t in 0..steps {
        let i = b
            .fc_from(format!("i{t}"), h, gate(Activation::Sigmoid))
            .expect("i gate");
        let f = b
            .fc_from(format!("f{t}"), h, gate(Activation::Sigmoid))
            .expect("f gate");
        let o = b
            .fc_from(format!("o{t}"), h, gate(Activation::Sigmoid))
            .expect("o gate");
        let g = b
            .fc_from(format!("g{t}"), h, gate(Activation::Tanh))
            .expect("g gate");
        let ig = b
            .eltwise_mul(format!("ig{t}"), i, g, Activation::None)
            .expect("i*g");
        let c_new = match c {
            Some(prev_c) => {
                let fc_prev = b
                    .eltwise_mul(format!("fc{t}"), f, prev_c, Activation::None)
                    .expect("f*c");
                b.eltwise_add(format!("c{t}"), fc_prev, ig, Activation::None)
                    .expect("cell update")
            }
            None => ig,
        };
        let tc = b
            .act_from(format!("tc{t}"), c_new, Activation::Tanh)
            .expect("tanh(c)");
        h = b
            .eltwise_mul(format!("h{t}"), o, tc, Activation::None)
            .expect("o*tanh(c)");
        c = Some(c_new);
    }
    let out = b
        .fc_from(
            "readout",
            h,
            Fc {
                out_neurons: outputs,
                bias: false,
                activation: Activation::None,
            },
        )
        .expect("readout");
    b.finish_with_loss(out).expect("lstm is a valid graph")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn autoencoder_is_an_hourglass() {
        let net = autoencoder(&[784, 256, 64]);
        let (_, fc, _) = net.layer_counts();
        assert_eq!(fc, 4); // 784->256->64->256->784
        let out = net.node_by_name("dec2").unwrap();
        assert_eq!(out.output_shape().elems(), 784);
    }

    #[test]
    fn autoencoder_weights_are_symmetric() {
        let net = autoencoder(&[100, 20]);
        let a = net.analyze();
        assert_eq!(a.weights(), 2 * 100 * 20);
    }

    #[test]
    fn rnn_unrolls_to_a_deep_chain() {
        let net = unrolled_rnn(6, 32, 64, 10);
        let (_, fc, _) = net.layer_counts();
        assert_eq!(fc, 7);
        assert_eq!(net.depth(), 7);
    }

    #[test]
    #[should_panic(expected = "input and bottleneck")]
    fn autoencoder_rejects_single_dim() {
        let _ = autoencoder(&[10]);
    }

    #[test]
    fn lstm_has_four_gates_per_step() {
        let net = unrolled_lstm(3, 8, 16, 4);
        // embed + 3 steps x 4 gates + readout FC layers.
        let (_, fc, _) = net.layer_counts();
        assert_eq!(fc, 1 + 3 * 4 + 1);
        assert!(net.node_by_name("tc2").is_some());
        assert!(
            net.node_by_name("fc0").is_none(),
            "first step has no f*c term"
        );
        assert!(net.node_by_name("fc1").is_some());
    }

    #[test]
    fn lstm_gating_uses_eltwise_multiply() {
        let net = unrolled_lstm(2, 4, 8, 2);
        let muls = net
            .layers()
            .filter(|n| n.layer().type_tag() == "ELTMUL")
            .count();
        // i*g and o*tc every step; f*c from step 2 on.
        assert_eq!(muls, 2 * 2 + 1);
    }
}
