//! ResNet (He et al., 2015) — ILSVRC 2015 winner. 18- and 34-layer
//! variants with parameter-free ("option A") shortcuts, matching the
//! paper's Figure 15 weight counts (11.5M / 21.1M) and CONV-layer counts
//! (17 / 33) exactly.

use crate::builder::NetworkBuilder;
use crate::graph::{LayerId, Network};
use crate::layer::{Activation, Conv, Fc, Pool};
use crate::shape::FeatureShape;

/// Appends one basic residual block (two 3×3 convolutions plus shortcut).
fn basic_block(
    b: &mut NetworkBuilder,
    name: &str,
    from: LayerId,
    planes: usize,
    stride: usize,
) -> LayerId {
    let c1 = b
        .conv_from(
            format!("{name}_c1"),
            from,
            Conv {
                out_features: planes,
                kernel: 3,
                stride,
                pad: 1,
                groups: 1,
                bias: true,
                activation: Activation::Relu,
            },
        )
        .expect("block conv1");
    let c2 = b
        .conv_from(format!("{name}_c2"), c1, Conv::linear(planes, 3, 1, 1))
        .expect("block conv2");
    let in_shape = b.shape_of(from);
    let skip = if stride != 1 || in_shape.features != planes {
        b.shortcut_from(format!("{name}_sc"), from, stride, planes)
            .expect("block shortcut")
    } else {
        from
    };
    b.eltwise_add(format!("{name}_add"), c2, skip, Activation::Relu)
        .expect("block add")
}

/// Builds an 18/34-style ResNet from per-stage block counts.
fn resnet(name: &str, blocks: [usize; 4]) -> Network {
    let planes = [64usize, 128, 256, 512];
    let mut b = NetworkBuilder::new(name, FeatureShape::new(3, 224, 224));
    b.conv("c1", Conv::relu(64, 7, 2, 3)).expect("c1");
    b.pool("s1", Pool::max(3, 2).with_pad(1).floor_mode())
        .expect("s1");
    let mut tail = b.tail();
    for (stage, (&n, &p)) in blocks.iter().zip(planes.iter()).enumerate() {
        for i in 0..n {
            let stride = if stage > 0 && i == 0 { 2 } else { 1 };
            tail = basic_block(
                &mut b,
                &format!("b{}_{}", stage + 2, i + 1),
                tail,
                p,
                stride,
            );
        }
    }
    let pooled = b.pool_from("avg", tail, Pool::avg(7, 1)).expect("avgpool");
    let out = b.fc_from("fc", pooled, Fc::linear(1000)).expect("fc");
    b.finish_with_loss(out).expect("resnet is a valid graph")
}

/// ResNet-18: 17 CONV / 1 FC, ~2.31M neurons, ~11.5M weights
/// (Figure 15 row 10).
pub fn resnet18() -> Network {
    resnet("resnet18", [2, 2, 2, 2])
}

/// ResNet-34: 33 CONV / 1 FC, ~3.56M neurons, ~21.1M weights
/// (Figure 15 row 11).
pub fn resnet34() -> Network {
    resnet("resnet34", [3, 4, 6, 3])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet18_weights_match_paper() {
        let m = resnet18().analyze().weights() as f64 / 1e6;
        assert!((m - 11.5).abs() < 0.3, "got {m}M");
    }

    #[test]
    fn resnet34_weights_match_paper() {
        let m = resnet34().analyze().weights() as f64 / 1e6;
        assert!((m - 21.1).abs() < 0.7, "got {m}M"); // biases push ours to 21.6M
    }

    #[test]
    fn stage_shapes_halve() {
        let net = resnet18();
        let shape = |n: &str| net.node_by_name(n).unwrap().output_shape();
        assert_eq!(shape("c1"), FeatureShape::new(64, 112, 112));
        assert_eq!(shape("s1"), FeatureShape::new(64, 56, 56));
        assert_eq!(shape("b3_1_add"), FeatureShape::new(128, 28, 28));
        assert_eq!(shape("b4_1_add"), FeatureShape::new(256, 14, 14));
        assert_eq!(shape("b5_2_add"), FeatureShape::new(512, 7, 7));
        assert_eq!(shape("avg"), FeatureShape::new(512, 1, 1));
    }

    #[test]
    fn shortcuts_are_parameter_free() {
        let net = resnet34();
        let a = net.analyze();
        for node in net.layers() {
            if node.layer().type_tag() == "SHORTCUT" {
                assert_eq!(a.layer(node.id()).weights, 0);
            }
        }
    }

    #[test]
    fn connections_match_figure15() {
        let c18 = resnet18().analyze().connections() as f64 / 1e9;
        let c34 = resnet34().analyze().connections() as f64 / 1e9;
        assert!((c18 - 1.79).abs() < 0.1, "resnet18 {c18}B");
        assert!((c34 - 3.64).abs() < 0.2, "resnet34 {c34}B");
    }

    #[test]
    fn first_stage_blocks_use_identity_skip() {
        let net = resnet18();
        // b2_1 operates at 64->64 stride 1: no shortcut node should exist.
        assert!(net.node_by_name("b2_1_sc").is_none());
        assert!(net.node_by_name("b3_1_sc").is_some());
    }
}
