//! Functional-scale proxy networks: benchmark-shaped topologies reduced
//! to dimensions the functional target can compile and execute.
//!
//! The reduced functional chip cannot express every benchmark network —
//! AlexNet's stride-4 C1 and 37.7M-element F6 weight matrix both exceed
//! it. These proxies keep the *shape* of the benchmark (layer sequence,
//! kernel sizes, grouped towers, pooling cadence) while shrinking feature
//! counts and forcing stride-1 convolutions, so end-to-end functional
//! runs — tier cross-checks, bit-identity sweeps, wall-clock drills —
//! exercise a benchmark-like instruction mix at tractable cost.

use crate::builder::NetworkBuilder;
use crate::graph::Network;
use crate::layer::{Conv, Fc, Pool};
use crate::shape::FeatureShape;

/// An AlexNet-shaped functional proxy: the same 5 CONV / 3 SAMP / 3 FC
/// cadence (with the two-tower `groups = 2` on C2/C4/C5), at stride 1 and
/// functional-chip scale.
pub fn alexnet_func() -> Network {
    let mut b = NetworkBuilder::new("alexnet-func", FeatureShape::new(3, 32, 32));
    b.conv("c1", Conv::relu(16, 3, 1, 1)).expect("c1");
    b.pool("s1", Pool::max(3, 2)).expect("s1");
    b.conv("c2", Conv::relu_grouped(32, 3, 1, 1, 2))
        .expect("c2");
    b.pool("s2", Pool::max(3, 2)).expect("s2");
    b.conv("c3", Conv::relu(48, 3, 1, 1)).expect("c3");
    b.conv("c4", Conv::relu_grouped(48, 3, 1, 1, 2))
        .expect("c4");
    b.conv("c5", Conv::relu_grouped(32, 3, 1, 1, 2))
        .expect("c5");
    b.pool("s3", Pool::max(3, 2)).expect("s3");
    b.fc("f6", Fc::relu(256)).expect("f6");
    b.fc("f7", Fc::relu(128)).expect("f7");
    let out = b.fc("f8", Fc::linear(10)).expect("f8");
    b.finish_with_loss(out)
        .expect("alexnet-func is a valid graph")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_alexnets_layer_cadence() {
        let net = alexnet_func();
        assert_eq!(net.layer_counts(), (5, 3, 3));
    }

    #[test]
    fn all_convs_are_stride_one() {
        let net = alexnet_func();
        for n in net.layers() {
            if let crate::layer::Layer::Conv(c) = n.layer() {
                assert_eq!(c.stride, 1, "{} must be functional-compilable", n.name());
            }
        }
    }
}
