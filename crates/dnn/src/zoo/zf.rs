//! ZF / Clarifai (Zeiler & Fergus, ECCV 2014) — ILSVRC 2013 classification
//! winner.

use crate::builder::NetworkBuilder;
use crate::graph::Network;
use crate::layer::{Conv, Fc, Pool};
use crate::shape::FeatureShape;

/// Builds the ZF network: 5 CONV / 3 FC / 3 SAMP, ~1.51M neurons,
/// ~62.3M weights (Figure 15 row 2). Like AlexNet but with a 7×7/2 first
/// layer and dense (ungrouped) connectivity.
pub fn zf() -> Network {
    let mut b = NetworkBuilder::new("zf", FeatureShape::new(3, 224, 224));
    b.conv("c1", Conv::relu(96, 7, 2, 1)).expect("c1");
    b.pool("s1", Pool::max(3, 2)).expect("s1");
    b.conv("c2", Conv::relu(256, 5, 2, 0)).expect("c2");
    b.pool("s2", Pool::max(3, 2)).expect("s2");
    b.conv("c3", Conv::relu(384, 3, 1, 1)).expect("c3");
    b.conv("c4", Conv::relu(384, 3, 1, 1)).expect("c4");
    b.conv("c5", Conv::relu(256, 3, 1, 1)).expect("c5");
    b.pool("s3", Pool::max(3, 2).floor_mode()).expect("s3");
    b.fc("f6", Fc::relu(4096)).expect("f6");
    b.fc("f7", Fc::relu(4096)).expect("f7");
    let out = b.fc("f8", Fc::linear(1000)).expect("f8");
    b.finish_with_loss(out).expect("zf is a valid graph")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_layer_is_7x7_stride2() {
        let net = zf();
        let c1 = net.node_by_name("c1").unwrap();
        assert_eq!(c1.output_shape(), FeatureShape::new(96, 110, 110));
    }

    #[test]
    fn classifier_sees_6x6x256() {
        let net = zf();
        let s3 = net.node_by_name("s3").unwrap();
        assert_eq!(s3.output_shape(), FeatureShape::new(256, 6, 6));
    }

    #[test]
    fn weights_are_62_3m() {
        let m = zf().analyze().weights() as f64 / 1e6;
        assert!((m - 62.3).abs() < 0.5, "got {m}M");
    }
}
