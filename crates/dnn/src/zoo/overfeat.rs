//! OverFeat (Sermanet et al., 2013) — ILSVRC 2013 localization winner,
//! in its *fast* and *accurate* variants. OverFeat-Fast is the paper's
//! running workload-analysis example (Figure 4).

use crate::builder::NetworkBuilder;
use crate::graph::Network;
use crate::layer::{Conv, Fc, Pool};
use crate::shape::FeatureShape;

/// Builds OverFeat-Fast: 5 CONV / 3 FC / 3 SAMP on 231×231 inputs,
/// ~0.82M neurons, ~145.9M weights (Figure 15 row 4).
pub fn overfeat_fast() -> Network {
    let mut b = NetworkBuilder::new("overfeat-fast", FeatureShape::new(3, 231, 231));
    b.conv("c1", Conv::relu(96, 11, 4, 0)).expect("c1");
    b.pool("s1", Pool::max(2, 2)).expect("s1");
    b.conv("c2", Conv::relu(256, 5, 1, 0)).expect("c2");
    b.pool("s2", Pool::max(2, 2)).expect("s2");
    b.conv("c3", Conv::relu(512, 3, 1, 1)).expect("c3");
    b.conv("c4", Conv::relu(1024, 3, 1, 1)).expect("c4");
    b.conv("c5", Conv::relu(1024, 3, 1, 1)).expect("c5");
    b.pool("s3", Pool::max(2, 2)).expect("s3");
    b.fc("f6", Fc::relu(3072)).expect("f6");
    b.fc("f7", Fc::relu(4096)).expect("f7");
    let out = b.fc("f8", Fc::linear(1000)).expect("f8");
    b.finish_with_loss(out)
        .expect("overfeat-fast is a valid graph")
}

/// Builds OverFeat-Accurate: 6 CONV / 3 FC / 3 SAMP on 221×221 inputs,
/// ~2.05M neurons, ~144.6M weights (Figure 15 row 5).
pub fn overfeat_accurate() -> Network {
    let mut b = NetworkBuilder::new("overfeat-accurate", FeatureShape::new(3, 221, 221));
    b.conv("c1", Conv::relu(96, 7, 2, 0)).expect("c1");
    b.pool("s1", Pool::max(3, 3)).expect("s1");
    b.conv("c2", Conv::relu(256, 7, 1, 0)).expect("c2");
    b.pool("s2", Pool::max(2, 2)).expect("s2");
    b.conv("c3", Conv::relu(512, 3, 1, 1)).expect("c3");
    b.conv("c4", Conv::relu(512, 3, 1, 1)).expect("c4");
    b.conv("c5", Conv::relu(1024, 3, 1, 1)).expect("c5");
    b.conv("c6", Conv::relu(1024, 3, 1, 1)).expect("c6");
    b.pool("s3", Pool::max(3, 3)).expect("s3");
    b.fc("f7", Fc::relu(4096)).expect("f7");
    b.fc("f8", Fc::relu(4096)).expect("f8");
    let out = b.fc("f9", Fc::linear(1000)).expect("f9");
    b.finish_with_loss(out)
        .expect("overfeat-accurate is a valid graph")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Step;

    #[test]
    fn fast_feature_sizes_match_figure4() {
        let net = overfeat_fast();
        let shape = |n: &str| net.node_by_name(n).unwrap().output_shape();
        // Figure 4: C1/C2 large features (56x56, 24x24), C3-C5 12x12.
        assert_eq!(shape("c1"), FeatureShape::new(96, 56, 56));
        assert_eq!(shape("c2"), FeatureShape::new(256, 24, 24));
        assert_eq!(shape("c3"), FeatureShape::new(512, 12, 12));
        assert_eq!(shape("c5"), FeatureShape::new(1024, 12, 12));
        assert_eq!(shape("s3"), FeatureShape::new(1024, 6, 6));
    }

    #[test]
    fn fast_weights_are_145_9m() {
        let m = overfeat_fast().analyze().weights() as f64 / 1e6;
        assert!((m - 145.9).abs() < 0.5, "got {m}M");
    }

    #[test]
    fn fast_evaluation_is_3_3_gigaops() {
        // Paper §1: ~3.3 giga-operations to evaluate one 231x231 image
        // (counting MACs as 2 ops gives ~5.4 GFLOPs; the paper's 3.3 counts
        // multiply-accumulates once in some tallies — assert the bracket).
        let a = overfeat_fast().analyze();
        let gops = a.connections() as f64 / 1e9;
        assert!(gops > 2.4 && gops < 3.2, "got {gops} G-MACs");
    }

    #[test]
    fn accurate_weights_are_144_6m() {
        let m = overfeat_accurate().analyze().weights() as f64 / 1e6;
        assert!((m - 144.6).abs() < 1.0, "got {m}M");
    }

    #[test]
    fn accurate_has_more_flops_than_fast() {
        // Figure 15: 5.22B vs 2.66B connections.
        let fast = overfeat_fast().analyze();
        let acc = overfeat_accurate().analyze();
        assert!(acc.total_flops(Step::Fp) > 3 * fast.total_flops(Step::Fp) / 2);
    }
}
