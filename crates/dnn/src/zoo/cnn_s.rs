//! CNN-S (Chatfield et al., "Return of the Devil in the Details",
//! BMVC 2014) — the "slow" OverFeat-accurate-like variant.

use crate::builder::NetworkBuilder;
use crate::graph::Network;
use crate::layer::{Conv, Fc, Pool};
use crate::shape::FeatureShape;

/// Builds CNN-S: 5 CONV / 3 FC / 3 SAMP, ~1.7M neurons, ~80M weights
/// (Figure 15 row 3). CNN-S uses floor-mode pooling, which yields the
/// 5×5×512 classifier input that puts the total weight count at 80M.
pub fn cnn_s() -> Network {
    let mut b = NetworkBuilder::new("cnn-s", FeatureShape::new(3, 224, 224));
    b.conv("c1", Conv::relu(96, 7, 2, 0)).expect("c1");
    b.pool("s1", Pool::max(3, 3).floor_mode()).expect("s1");
    b.conv("c2", Conv::relu(256, 5, 1, 0)).expect("c2");
    b.pool("s2", Pool::max(2, 2).floor_mode()).expect("s2");
    b.conv("c3", Conv::relu(512, 3, 1, 1)).expect("c3");
    b.conv("c4", Conv::relu(512, 3, 1, 1)).expect("c4");
    b.conv("c5", Conv::relu(512, 3, 1, 1)).expect("c5");
    b.pool("s3", Pool::max(3, 3).floor_mode()).expect("s3");
    b.fc("f6", Fc::relu(4096)).expect("f6");
    b.fc("f7", Fc::relu(4096)).expect("f7");
    let out = b.fc("f8", Fc::linear(1000)).expect("f8");
    b.finish_with_loss(out).expect("cnn-s is a valid graph")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifier_sees_5x5x512() {
        let net = cnn_s();
        let s3 = net.node_by_name("s3").unwrap();
        assert_eq!(s3.output_shape(), FeatureShape::new(512, 5, 5));
    }

    #[test]
    fn weights_are_80m() {
        let m = cnn_s().analyze().weights() as f64 / 1e6;
        assert!((m - 80.0).abs() < 1.0, "got {m}M");
    }

    #[test]
    fn mid_convs_are_512_features() {
        let net = cnn_s();
        for name in ["c3", "c4", "c5"] {
            assert_eq!(net.node_by_name(name).unwrap().output_shape().features, 512);
        }
    }
}
