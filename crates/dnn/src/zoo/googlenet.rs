//! GoogLeNet / Inception-v1 (Szegedy et al., 2014) — ILSVRC 2014
//! classification winner. Built as a real DAG with nine inception modules.

use crate::builder::NetworkBuilder;
use crate::graph::{LayerId, Network};
use crate::layer::{Conv, Fc, Pool, PoolKind};
use crate::shape::FeatureShape;

/// Filter plan of one inception module:
/// (#1x1, #3x3 reduce, #3x3, #5x5 reduce, #5x5, pool-proj).
type InceptionPlan = (usize, usize, usize, usize, usize, usize);

/// Appends one inception module and returns the concat node.
fn inception(b: &mut NetworkBuilder, name: &str, from: LayerId, plan: InceptionPlan) -> LayerId {
    let (p1, p3r, p3, p5r, p5, pp) = plan;
    let b1 = b
        .conv_from(format!("{name}_1x1"), from, Conv::relu(p1, 1, 1, 0))
        .expect("1x1 branch");
    let r3 = b
        .conv_from(format!("{name}_3x3r"), from, Conv::relu(p3r, 1, 1, 0))
        .expect("3x3 reduce");
    let b3 = b
        .conv_from(format!("{name}_3x3"), r3, Conv::relu(p3, 3, 1, 1))
        .expect("3x3 branch");
    let r5 = b
        .conv_from(format!("{name}_5x5r"), from, Conv::relu(p5r, 1, 1, 0))
        .expect("5x5 reduce");
    let b5 = b
        .conv_from(format!("{name}_5x5"), r5, Conv::relu(p5, 5, 1, 2))
        .expect("5x5 branch");
    let pool = b
        .pool_from(
            format!("{name}_pool"),
            from,
            Pool {
                kind: PoolKind::Max,
                window: 3,
                stride: 1,
                pad: 1,
                ceil_mode: true,
            },
        )
        .expect("pool branch");
    let bp = b
        .conv_from(format!("{name}_poolp"), pool, Conv::relu(pp, 1, 1, 0))
        .expect("pool projection");
    b.concat(format!("{name}_out"), &[b1, b3, b5, bp])
        .expect("inception concat")
}

/// Builds GoogLeNet (no auxiliary classifiers): 57 CONV / 1 FC,
/// ~2.6M neurons, ~6.8M weights (Figure 15 row 6 — the paper's table
/// groups each inception module as one layer and reports 11 CONV layers;
/// weights and neurons match regardless of grouping).
pub fn googlenet() -> Network {
    let mut b = NetworkBuilder::new("googlenet", FeatureShape::new(3, 224, 224));
    b.conv("c1", Conv::relu(64, 7, 2, 3)).expect("c1");
    b.pool("s1", Pool::max(3, 2)).expect("s1");
    b.conv("c2r", Conv::relu(64, 1, 1, 0)).expect("c2 reduce");
    b.conv("c2", Conv::relu(192, 3, 1, 1)).expect("c2");
    b.pool("s2", Pool::max(3, 2)).expect("s2");
    let mut t = b.tail();
    t = inception(&mut b, "i3a", t, (64, 96, 128, 16, 32, 32));
    t = inception(&mut b, "i3b", t, (128, 128, 192, 32, 96, 64));
    t = b.pool_from("s3", t, Pool::max(3, 2)).expect("s3");
    t = inception(&mut b, "i4a", t, (192, 96, 208, 16, 48, 64));
    t = inception(&mut b, "i4b", t, (160, 112, 224, 24, 64, 64));
    t = inception(&mut b, "i4c", t, (128, 128, 256, 24, 64, 64));
    t = inception(&mut b, "i4d", t, (112, 144, 288, 32, 64, 64));
    t = inception(&mut b, "i4e", t, (256, 160, 320, 32, 128, 128));
    t = b.pool_from("s4", t, Pool::max(3, 2)).expect("s4");
    t = inception(&mut b, "i5a", t, (256, 160, 320, 32, 128, 128));
    t = inception(&mut b, "i5b", t, (384, 192, 384, 48, 128, 128));
    let avg = b.pool_from("avg", t, Pool::avg(7, 1)).expect("avgpool");
    let out = b.fc_from("fc", avg, Fc::linear(1000)).expect("fc");
    b.finish_with_loss(out).expect("googlenet is a valid graph")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_output_features_are_canonical() {
        let net = googlenet();
        let feats = |n: &str| net.node_by_name(n).unwrap().output_shape().features;
        assert_eq!(feats("i3a_out"), 256);
        assert_eq!(feats("i3b_out"), 480);
        assert_eq!(feats("i4e_out"), 832);
        assert_eq!(feats("i5b_out"), 1024);
    }

    #[test]
    fn spatial_sizes_shrink_correctly() {
        let net = googlenet();
        let shape = |n: &str| net.node_by_name(n).unwrap().output_shape();
        assert_eq!(shape("s2").height, 28);
        assert_eq!(shape("s3").height, 14);
        assert_eq!(shape("s4").height, 7);
        assert_eq!(shape("avg"), FeatureShape::new(1024, 1, 1));
    }

    #[test]
    fn weights_are_about_7m() {
        let m = googlenet().analyze().weights() as f64 / 1e6;
        // Figure 15: 6.8M (our count includes biases: ~7.0M).
        assert!((m - 6.9).abs() < 0.3, "got {m}M");
    }

    #[test]
    fn has_57_convolutions() {
        let (conv, fc, _) = googlenet().layer_counts();
        assert_eq!(conv, 2 + 1 + 9 * 6);
        assert_eq!(fc, 1);
    }
}
