//! VGG (Simonyan & Zisserman, 2014) — ILSVRC 2014 localization winner.
//! Configurations A (11 weight layers), D (16) and E (19).

use crate::builder::NetworkBuilder;
use crate::graph::Network;
use crate::layer::{Conv, Fc, Pool};
use crate::shape::FeatureShape;

/// Builds a VGG variant from its per-stage convolution counts.
/// All convolutions are 3×3/1 pad 1; stages are separated by 2×2/2 max
/// pooling; channel plan 64-128-256-512-512; classifier 4096-4096-1000.
fn vgg(name: &str, stage_convs: [usize; 5]) -> Network {
    let channels = [64usize, 128, 256, 512, 512];
    let mut b = NetworkBuilder::new(name, FeatureShape::new(3, 224, 224));
    for (stage, (&n, &ch)) in stage_convs.iter().zip(channels.iter()).enumerate() {
        for i in 0..n {
            let layer_name = format!("c{}_{}", stage + 1, i + 1);
            b.conv(layer_name, Conv::relu(ch, 3, 1, 1)).expect("conv");
        }
        b.pool(format!("s{}", stage + 1), Pool::max(2, 2))
            .expect("pool");
    }
    b.fc("f6", Fc::relu(4096)).expect("f6");
    b.fc("f7", Fc::relu(4096)).expect("f7");
    let out = b.fc("f8", Fc::linear(1000)).expect("f8");
    b.finish_with_loss(out).expect("vgg is a valid graph")
}

/// VGG-A: 8 CONV / 3 FC / 5 SAMP, ~7.4M neurons, ~132.8M weights
/// (Figure 15 row 7).
pub fn vgg_a() -> Network {
    vgg("vgg-a", [1, 1, 2, 2, 2])
}

/// VGG-D (a.k.a. VGG-16): 13 CONV / 3 FC / 5 SAMP, ~13.5M neurons,
/// ~138.3M weights (Figure 15 row 8).
pub fn vgg_d() -> Network {
    vgg("vgg-d", [2, 2, 3, 3, 3])
}

/// VGG-E (a.k.a. VGG-19): 16 CONV / 3 FC / 5 SAMP, ~14.9M neurons,
/// ~143.6M weights (Figure 15 row 9).
pub fn vgg_e() -> Network {
    vgg("vgg-e", [2, 2, 4, 4, 4])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg_d_weights_match_exactly() {
        // The canonical VGG-16 parameter count: 138.36M.
        let w = vgg_d().analyze().weights();
        assert!((w as f64 / 1e6 - 138.36).abs() < 0.1, "got {w}");
    }

    #[test]
    fn vgg_spatial_pyramid_halves_five_times() {
        let net = vgg_d();
        let shape = |n: &str| net.node_by_name(n).unwrap().output_shape();
        assert_eq!(shape("s1").height, 112);
        assert_eq!(shape("s2").height, 56);
        assert_eq!(shape("s3").height, 28);
        assert_eq!(shape("s4").height, 14);
        assert_eq!(shape("s5").height, 7);
    }

    #[test]
    fn vgg_e_has_most_connections() {
        let a = vgg_a().analyze().connections();
        let d = vgg_d().analyze().connections();
        let e = vgg_e().analyze().connections();
        assert!(a < d && d < e);
        // Figure 15: 7.46B / 15.3B / 19.4B.
        assert!((e as f64 / 1e9 - 19.4).abs() < 1.0);
    }

    #[test]
    fn classifier_sees_7x7x512() {
        for net in [vgg_a(), vgg_d(), vgg_e()] {
            let s5 = net.node_by_name("s5").unwrap();
            assert_eq!(s5.output_shape(), FeatureShape::new(512, 7, 7));
        }
    }
}
