//! AlexNet (Krizhevsky et al., NIPS 2012) — ILSVRC 2012 winner.

use crate::builder::NetworkBuilder;
use crate::graph::Network;
use crate::layer::{Conv, Fc, Pool};
use crate::shape::FeatureShape;

/// Builds AlexNet: 5 CONV / 3 FC / 3 SAMP layers, ~0.65M neurons,
/// ~60.9M weights (Figure 15 row 1).
///
/// Uses the original two-tower connection table, modeled as `groups = 2`
/// on C2, C4 and C5 — without it the weight count would overshoot the
/// paper's by ~5%.
pub fn alexnet() -> Network {
    let mut b = NetworkBuilder::new("alexnet", FeatureShape::new(3, 227, 227));
    b.conv("c1", Conv::relu(96, 11, 4, 0)).expect("c1");
    b.pool("s1", Pool::max(3, 2)).expect("s1");
    b.conv("c2", Conv::relu_grouped(256, 5, 1, 2, 2))
        .expect("c2");
    b.pool("s2", Pool::max(3, 2)).expect("s2");
    b.conv("c3", Conv::relu(384, 3, 1, 1)).expect("c3");
    b.conv("c4", Conv::relu_grouped(384, 3, 1, 1, 2))
        .expect("c4");
    b.conv("c5", Conv::relu_grouped(256, 3, 1, 1, 2))
        .expect("c5");
    b.pool("s3", Pool::max(3, 2)).expect("s3");
    b.fc("f6", Fc::relu(4096)).expect("f6");
    b.fc("f7", Fc::relu(4096)).expect("f7");
    let out = b.fc("f8", Fc::linear(1000)).expect("f8");
    b.finish_with_loss(out).expect("alexnet is a valid graph")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_map_sizes_are_canonical() {
        let net = alexnet();
        let shape = |n: &str| net.node_by_name(n).unwrap().output_shape();
        assert_eq!(shape("c1"), FeatureShape::new(96, 55, 55));
        assert_eq!(shape("s1"), FeatureShape::new(96, 27, 27));
        assert_eq!(shape("c2"), FeatureShape::new(256, 27, 27));
        assert_eq!(shape("c5"), FeatureShape::new(256, 13, 13));
        assert_eq!(shape("s3"), FeatureShape::new(256, 6, 6));
        assert_eq!(shape("f8"), FeatureShape::vector(1000));
    }

    #[test]
    fn weights_are_60_9m() {
        let a = alexnet().analyze();
        let m = a.weights() as f64 / 1e6;
        assert!((m - 60.9).abs() < 0.3, "got {m}M");
    }

    #[test]
    fn evaluation_costs_about_1_5_gflops() {
        let a = alexnet().analyze();
        let g = a.total_flops(crate::Step::Fp) as f64 / 1e9;
        assert!(g > 1.0 && g < 2.0, "got {g} GFLOPs");
    }
}
