//! Error type for network construction and analysis.

use std::fmt;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while building or analyzing a [`crate::Network`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A layer referenced an input id that does not exist in the graph.
    UnknownLayer {
        /// The dangling id.
        id: usize,
    },
    /// A layer received a number of inputs incompatible with its kind
    /// (e.g. a convolution with two inputs, or an element-wise add with one).
    ArityMismatch {
        /// Human-readable layer description.
        layer: String,
        /// Number of inputs the layer expects (as a description, e.g. "exactly 2").
        expected: &'static str,
        /// Number of inputs the layer received.
        got: usize,
    },
    /// Input shapes are incompatible with the layer parameters
    /// (e.g. kernel larger than padded input, mismatched element-wise shapes).
    ShapeMismatch {
        /// Human-readable layer description.
        layer: String,
        /// Explanation of the incompatibility.
        detail: String,
    },
    /// A layer parameter is structurally invalid (zero-sized kernel,
    /// zero stride, feature count not divisible by groups, ...).
    InvalidParameter {
        /// Human-readable layer description.
        layer: String,
        /// Explanation of the invalid parameter.
        detail: String,
    },
    /// The graph contains a cycle and cannot be topologically ordered.
    Cyclic,
    /// The graph has no layers.
    Empty,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownLayer { id } => write!(f, "unknown layer id {id}"),
            Error::ArityMismatch {
                layer,
                expected,
                got,
            } => write!(f, "layer `{layer}` expects {expected} inputs, got {got}"),
            Error::ShapeMismatch { layer, detail } => {
                write!(f, "shape mismatch at layer `{layer}`: {detail}")
            }
            Error::InvalidParameter { layer, detail } => {
                write!(f, "invalid parameter at layer `{layer}`: {detail}")
            }
            Error::Cyclic => write!(f, "network graph contains a cycle"),
            Error::Empty => write!(f, "network graph is empty"),
        }
    }
}

impl std::error::Error for Error {}
