//! Fluent construction of [`Network`] graphs.

use crate::error::Result;
use crate::graph::{LayerId, LayerNode, Network};
use crate::layer::{Activation, Conv, Fc, Layer, Pool};
use crate::shape::FeatureShape;

/// Builds a [`Network`] incrementally.
///
/// Sequential methods ([`conv`](Self::conv), [`pool`](Self::pool),
/// [`fc`](Self::fc)) append to a running "tail" (the most recently added
/// layer), which covers chain topologies like AlexNet or VGG. DAG methods
/// (`*_from`, [`concat`](Self::concat), [`eltwise_add`](Self::eltwise_add))
/// take explicit input ids, which covers GoogLeNet and ResNet.
///
/// ```
/// use scaledeep_dnn::{NetworkBuilder, Conv, Pool, Fc, FeatureShape};
///
/// # fn main() -> Result<(), scaledeep_dnn::Error> {
/// let mut b = NetworkBuilder::new("lenet-ish", FeatureShape::new(1, 28, 28));
/// b.conv("c1", Conv::relu(8, 5, 1, 2))?;
/// b.pool("s1", Pool::max(2, 2))?;
/// b.fc("f1", Fc::linear(10))?;
/// let net = b.finish()?;
/// assert_eq!(net.layer_counts(), (1, 1, 1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct NetworkBuilder {
    name: String,
    nodes: Vec<LayerNode>,
    tail: LayerId,
}

impl NetworkBuilder {
    /// Starts a network with the given name and input shape. The input node
    /// is created immediately and becomes the initial tail.
    pub fn new(name: impl Into<String>, input: FeatureShape) -> Self {
        let mut nodes = Vec::new();
        let tail = Network::push_node(&mut nodes, "input".into(), Layer::Input(input), Vec::new())
            .expect("input node construction cannot fail");
        Self {
            name: name.into(),
            nodes,
            tail,
        }
    }

    /// The most recently added layer (next sequential attach point).
    pub fn tail(&self) -> LayerId {
        self.tail
    }

    /// Output shape of an already-added layer.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this builder.
    pub fn shape_of(&self, id: LayerId) -> FeatureShape {
        self.nodes[id.index()].output_shape()
    }

    fn push(
        &mut self,
        name: impl Into<String>,
        layer: Layer,
        inputs: Vec<LayerId>,
    ) -> Result<LayerId> {
        let id = Network::push_node(&mut self.nodes, name.into(), layer, inputs)?;
        self.tail = id;
        Ok(id)
    }

    /// Appends a convolution to the tail.
    ///
    /// # Errors
    ///
    /// Fails when the convolution parameters are invalid for the tail shape.
    pub fn conv(&mut self, name: impl Into<String>, conv: Conv) -> Result<LayerId> {
        let t = self.tail;
        self.conv_from(name, t, conv)
    }

    /// Adds a convolution reading from an explicit layer.
    ///
    /// # Errors
    ///
    /// Fails when the convolution parameters are invalid for the input shape.
    pub fn conv_from(
        &mut self,
        name: impl Into<String>,
        from: LayerId,
        conv: Conv,
    ) -> Result<LayerId> {
        self.push(name, Layer::Conv(conv), vec![from])
    }

    /// Appends a pooling layer to the tail.
    ///
    /// # Errors
    ///
    /// Fails when the pooling window exceeds the input extent.
    pub fn pool(&mut self, name: impl Into<String>, pool: Pool) -> Result<LayerId> {
        let t = self.tail;
        self.pool_from(name, t, pool)
    }

    /// Adds a pooling layer reading from an explicit layer.
    ///
    /// # Errors
    ///
    /// Fails when the pooling window exceeds the input extent.
    pub fn pool_from(
        &mut self,
        name: impl Into<String>,
        from: LayerId,
        pool: Pool,
    ) -> Result<LayerId> {
        self.push(name, Layer::Pool(pool), vec![from])
    }

    /// Appends a fully-connected layer to the tail (input is flattened).
    ///
    /// # Errors
    ///
    /// Fails when the layer parameters are invalid.
    pub fn fc(&mut self, name: impl Into<String>, fc: Fc) -> Result<LayerId> {
        let t = self.tail;
        self.fc_from(name, t, fc)
    }

    /// Adds a fully-connected layer reading from an explicit layer.
    ///
    /// # Errors
    ///
    /// Fails when the layer parameters are invalid.
    pub fn fc_from(&mut self, name: impl Into<String>, from: LayerId, fc: Fc) -> Result<LayerId> {
        self.push(name, Layer::Fc(fc), vec![from])
    }

    /// Adds an element-wise addition of two branches (residual join).
    ///
    /// # Errors
    ///
    /// Fails when the two input shapes differ.
    pub fn eltwise_add(
        &mut self,
        name: impl Into<String>,
        a: LayerId,
        b: LayerId,
        activation: Activation,
    ) -> Result<LayerId> {
        self.push(name, Layer::EltwiseAdd(activation), vec![a, b])
    }

    /// Adds an element-wise (Hadamard) product of two branches
    /// (LSTM gating).
    ///
    /// # Errors
    ///
    /// Fails when the two input shapes differ.
    pub fn eltwise_mul(
        &mut self,
        name: impl Into<String>,
        a: LayerId,
        b: LayerId,
        activation: Activation,
    ) -> Result<LayerId> {
        self.push(name, Layer::EltwiseMul(activation), vec![a, b])
    }

    /// Adds a standalone activation over one layer's output.
    ///
    /// # Errors
    ///
    /// Fails when `from` is not a valid layer id.
    pub fn act_from(
        &mut self,
        name: impl Into<String>,
        from: LayerId,
        activation: Activation,
    ) -> Result<LayerId> {
        self.push(name, Layer::Act(activation), vec![from])
    }

    /// Adds a parameter-free residual shortcut (ResNet option A) reading
    /// from an explicit layer.
    ///
    /// # Errors
    ///
    /// Fails when `stride` is zero or the feature count would shrink.
    pub fn shortcut_from(
        &mut self,
        name: impl Into<String>,
        from: LayerId,
        stride: usize,
        out_features: usize,
    ) -> Result<LayerId> {
        self.push(
            name,
            Layer::Shortcut {
                stride,
                out_features,
            },
            vec![from],
        )
    }

    /// Adds a feature-wise concatenation of two or more branches
    /// (inception join).
    ///
    /// # Errors
    ///
    /// Fails when fewer than two inputs are given or spatial extents differ.
    pub fn concat(&mut self, name: impl Into<String>, inputs: &[LayerId]) -> Result<LayerId> {
        self.push(name, Layer::Concat, inputs.to_vec())
    }

    /// Finishes the network without a loss head (evaluation-only graphs).
    ///
    /// # Errors
    ///
    /// Fails when the graph is empty (cannot happen through this builder).
    pub fn finish(self) -> Result<Network> {
        Network::from_parts(self.name, self.nodes)
    }

    /// Appends a loss head reading from `output` and finishes the network
    /// (training graphs; the loss produces the initial BP error).
    ///
    /// # Errors
    ///
    /// Fails when `output` is not a valid layer id.
    pub fn finish_with_loss(mut self, output: LayerId) -> Result<Network> {
        self.push("loss", Layer::Loss, vec![output])?;
        self.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::PoolKind;

    #[test]
    fn sequential_chain_tracks_tail() {
        let mut b = NetworkBuilder::new("t", FeatureShape::new(3, 16, 16));
        let c1 = b.conv("c1", Conv::relu(8, 3, 1, 1)).unwrap();
        assert_eq!(b.tail(), c1);
        let p = b.pool("p1", Pool::max(2, 2)).unwrap();
        assert_eq!(b.tail(), p);
        assert_eq!(b.shape_of(p), FeatureShape::new(8, 8, 8));
    }

    #[test]
    fn residual_block_builds() {
        let mut b = NetworkBuilder::new("res", FeatureShape::new(16, 8, 8));
        let trunk = b.tail();
        let c1 = b.conv("c1", Conv::relu(16, 3, 1, 1)).unwrap();
        let c2 = b.conv_from("c2", c1, Conv::linear(16, 3, 1, 1)).unwrap();
        let add = b.eltwise_add("add", trunk, c2, Activation::Relu).unwrap();
        let net = b.finish_with_loss(add).unwrap();
        let join = net.node_by_name("add").unwrap();
        assert_eq!(join.inputs().len(), 2);
    }

    #[test]
    fn inception_concat_builds() {
        let mut b = NetworkBuilder::new("inc", FeatureShape::new(32, 8, 8));
        let root = b.tail();
        let a = b.conv_from("a", root, Conv::relu(8, 1, 1, 0)).unwrap();
        let c = b.conv_from("c", root, Conv::relu(16, 3, 1, 1)).unwrap();
        let p = b
            .pool_from(
                "p",
                root,
                Pool {
                    ceil_mode: true,
                    kind: PoolKind::Max,
                    window: 3,
                    stride: 1,
                    pad: 1,
                },
            )
            .unwrap();
        let cat = b.concat("cat", &[a, c, p]).unwrap();
        assert_eq!(b.shape_of(cat).features, 8 + 16 + 32);
    }

    #[test]
    fn finish_with_loss_appends_loss() {
        let mut b = NetworkBuilder::new("t", FeatureShape::new(3, 8, 8));
        let f = b.fc("f", Fc::linear(10)).unwrap();
        let net = b.finish_with_loss(f).unwrap();
        let last = net.layers().last().unwrap();
        assert_eq!(last.layer().type_tag(), "LOSS");
    }
}
