//! DNN graph substrate for the ScaleDeep reproduction.
//!
//! This crate models deep neural networks the way the ScaleDeep paper
//! (Venkataramani et al., ISCA 2017) consumes them: as static, layered
//! data-flow graphs whose compute and memory demands can be analyzed ahead of
//! time. It provides:
//!
//! * the layer vocabulary of Section 2 of the paper — convolutional
//!   ([`Conv`]), sampling ([`Pool`]) and fully-connected ([`Fc`]) layers, plus
//!   the auxiliary element-wise add / concatenation nodes required by
//!   GoogLeNet and ResNet topologies;
//! * a directed-acyclic [`Network`] graph with shape inference and
//!   topological iteration;
//! * the workload analysis of Figures 1, 4 and 5 — FLOPs, bytes and
//!   Bytes/FLOP per training step ([`Step::Fp`], [`Step::Bp`], [`Step::Wg`])
//!   and per computational kernel ([`Kernel`]);
//! * a [`zoo`] of all 11 benchmark networks from Figure 15 (AlexNet, ZF,
//!   CNN-S, OverFeat-Fast/-Accurate, GoogLeNet, VGG-A/D/E, ResNet-18/34).
//!
//! # Example
//!
//! ```
//! use scaledeep_dnn::{zoo, Step};
//!
//! let net = zoo::alexnet();
//! let a = net.analyze();
//! // AlexNet evaluates one image in ~1.3 GFLOP and holds ~61M weights.
//! assert!(a.total_flops(Step::Fp) > 1_000_000_000);
//! assert!(a.weights() > 55_000_000 && a.weights() < 65_000_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod builder;
mod error;
mod graph;
mod layer;
pub mod schedule;
mod shape;
pub mod zoo;

pub use analysis::{
    kernel_summary, layer_class_breakdown, Analysis, Kernel, KernelShare, LayerClass,
    LayerClassRow, LayerCost, OpBreakdown, Step, BYTES_PER_ELEM_HP, BYTES_PER_ELEM_SP,
};
pub use builder::NetworkBuilder;
pub use error::{Error, Result};
pub use graph::{LayerId, LayerNode, Network};
pub use layer::{Activation, Conv, Fc, Layer, Pool, PoolKind};
pub use shape::FeatureShape;
