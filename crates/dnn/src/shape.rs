//! Feature-map shapes.

use std::fmt;

/// The shape of a set of feature maps flowing along one edge of the network:
/// `features` 2D maps of `height` × `width` scalars each.
///
/// This mirrors the paper's vocabulary (Section 2.2): CONV and SAMP layers
/// produce multi-dimensional "features", FC layers produce vectors, which are
/// represented here as `height = width = 1`.
///
/// ```
/// use scaledeep_dnn::FeatureShape;
///
/// let s = FeatureShape::new(96, 55, 55);
/// assert_eq!(s.elems(), 96 * 55 * 55);
/// assert!(!s.is_vector());
/// assert!(FeatureShape::vector(4096).is_vector());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FeatureShape {
    /// Number of feature maps (channels).
    pub features: usize,
    /// Height of each feature map.
    pub height: usize,
    /// Width of each feature map.
    pub width: usize,
}

impl FeatureShape {
    /// Creates a shape of `features` maps, each `height` × `width`.
    pub const fn new(features: usize, height: usize, width: usize) -> Self {
        Self {
            features,
            height,
            width,
        }
    }

    /// Creates a vector shape (`n` × 1 × 1), as produced by FC layers.
    pub const fn vector(n: usize) -> Self {
        Self::new(n, 1, 1)
    }

    /// Total number of scalar elements.
    pub const fn elems(&self) -> usize {
        self.features * self.height * self.width
    }

    /// Number of scalars in a single feature map.
    pub const fn feature_elems(&self) -> usize {
        self.height * self.width
    }

    /// True when the shape is a vector (1×1 spatial extent).
    pub const fn is_vector(&self) -> bool {
        self.height == 1 && self.width == 1
    }
}

impl fmt::Display for FeatureShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.features, self.height, self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elems_multiplies_dimensions() {
        assert_eq!(FeatureShape::new(3, 231, 231).elems(), 3 * 231 * 231);
    }

    #[test]
    fn vector_is_flat() {
        let v = FeatureShape::vector(1000);
        assert!(v.is_vector());
        assert_eq!(v.elems(), 1000);
        assert_eq!(v.feature_elems(), 1);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(FeatureShape::new(96, 55, 55).to_string(), "96x55x55");
    }
}
