//! Benchmark network zoo: the 11 DNNs of the paper's Figure 15 —
//! winners and notable entries from five years of the ILSVRC challenge.
//!
//! Topologies follow the original publications; where the paper's counting
//! conventions matter (e.g. ResNet parameter-free shortcuts keeping the
//! weight count at 11.5M/21.1M), the variant that matches Figure 15 is used.
//! `EXPERIMENTS.md` records measured vs. paper values for every network.

mod alexnet;
mod cnn_s;
mod extras;
mod func_proxy;
mod googlenet;
mod overfeat;
mod resnet;
mod vgg;
mod zf;

pub use alexnet::alexnet;
pub use cnn_s::cnn_s;
pub use extras::{autoencoder, unrolled_lstm, unrolled_rnn};
pub use func_proxy::alexnet_func;
pub use googlenet::googlenet;
pub use overfeat::{overfeat_accurate, overfeat_fast};
pub use resnet::{resnet18, resnet34};
pub use vgg::{vgg_a, vgg_d, vgg_e};
pub use zf::zf;

use crate::graph::Network;
use crate::layer::Layer;

/// Neuron count under the paper's Figure 15 convention, which treats each
/// inception module as a single layer: module-internal convolution outputs
/// (branch and reduce convolutions feeding a concatenation) are not counted;
/// the module's concatenated output is counted instead.
///
/// For chain networks this equals [`crate::Analysis::neurons`]; for
/// GoogLeNet it reproduces the paper's 2.64M (vs 3.23M counting every
/// branch convolution).
pub fn fig15_neurons(net: &Network) -> u64 {
    let feeds_concat = |id: crate::LayerId| -> bool {
        net.node(id)
            .consumers()
            .iter()
            .any(|&c| matches!(net.node(c).layer(), Layer::Concat))
    };
    net.layers()
        .map(|n| match n.layer() {
            Layer::Conv(_) => {
                // Internal to a module when it feeds a concat directly, or
                // is a reduce conv whose only consumer is a branch conv that
                // feeds a concat.
                let internal = feeds_concat(n.id())
                    || n.consumers()
                        .iter()
                        .all(|&c| matches!(net.node(c).layer(), Layer::Conv(_)) && feeds_concat(c))
                        && !n.consumers().is_empty();
                if internal {
                    0
                } else {
                    n.output_shape().elems() as u64
                }
            }
            Layer::Fc(_) | Layer::Concat => n.output_shape().elems() as u64,
            _ => 0,
        })
        .sum()
}

/// Names of the 11 benchmark networks, in the paper's Figure 15 order.
pub const BENCHMARK_NAMES: [&str; 11] = [
    "alexnet",
    "zf",
    "cnn-s",
    "overfeat-fast",
    "overfeat-accurate",
    "googlenet",
    "vgg-a",
    "vgg-d",
    "vgg-e",
    "resnet18",
    "resnet34",
];

/// Builds a benchmark network by name (see [`BENCHMARK_NAMES`]).
///
/// Returns `None` for unknown names.
///
/// ```
/// use scaledeep_dnn::zoo;
///
/// let net = zoo::by_name("vgg-d").unwrap();
/// assert_eq!(net.layer_counts(), (13, 3, 5));
/// assert!(zoo::by_name("lenet").is_none());
/// ```
pub fn by_name(name: &str) -> Option<Network> {
    match name {
        "alexnet" => Some(alexnet()),
        "zf" => Some(zf()),
        "cnn-s" => Some(cnn_s()),
        "overfeat-fast" => Some(overfeat_fast()),
        "overfeat-accurate" => Some(overfeat_accurate()),
        "googlenet" => Some(googlenet()),
        "vgg-a" => Some(vgg_a()),
        "vgg-d" => Some(vgg_d()),
        "vgg-e" => Some(vgg_e()),
        "resnet18" => Some(resnet18()),
        "resnet34" => Some(resnet34()),
        // Functional-scale proxies (not part of the Figure 15 suite).
        "alexnet-func" => Some(alexnet_func()),
        _ => None,
    }
}

/// Builds the full 11-network benchmark suite in Figure 15 order.
pub fn benchmark_suite() -> Vec<Network> {
    BENCHMARK_NAMES
        .iter()
        .map(|n| by_name(n).expect("benchmark names are exhaustive"))
        .collect()
}

/// The Figure 16/17/18 presentation order (ascending training cost):
/// AlexNet, ZF, ResNet18, GoogLeNet, CNN-S, OF-Fast, ResNet34, OF-Acc,
/// VGG-A, VGG-D, VGG-E.
pub const FIGURE16_ORDER: [&str; 11] = [
    "alexnet",
    "zf",
    "resnet18",
    "googlenet",
    "cnn-s",
    "overfeat-fast",
    "resnet34",
    "overfeat-accurate",
    "vgg-a",
    "vgg-d",
    "vgg-e",
];

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Figure 15 reference values:
    /// (name, conv, fc, samp, neurons M, weights M, connections B).
    /// Layer/SAMP counts for GoogLeNet and ResNet follow *our* per-conv
    /// counting (the paper groups inception modules); weight counts match
    /// the paper closely everywhere.
    const FIG15: [(&str, f64, f64); 11] = [
        // (name, weights M, neurons M)
        ("alexnet", 60.9, 0.65),
        ("zf", 62.3, 1.51),
        ("cnn-s", 80.4, 1.70),
        ("overfeat-fast", 145.9, 0.82),
        ("overfeat-accurate", 144.6, 2.05),
        ("googlenet", 6.8, 2.64),
        ("vgg-a", 132.8, 7.43),
        ("vgg-d", 138.3, 13.5),
        ("vgg-e", 143.6, 14.9),
        ("resnet18", 11.5, 2.31),
        ("resnet34", 21.1, 3.56),
    ];

    #[test]
    fn suite_has_eleven_networks() {
        assert_eq!(benchmark_suite().len(), 11);
    }

    #[test]
    fn weights_match_figure15_within_5_percent() {
        for (name, weights_m, _) in FIG15 {
            let net = by_name(name).unwrap();
            let a = net.analyze();
            let got = a.weights() as f64 / 1e6;
            let rel = (got - weights_m).abs() / weights_m;
            assert!(
                rel < 0.05,
                "{name}: weights {got:.2}M vs paper {weights_m}M ({:.1}% off)",
                rel * 100.0
            );
        }
    }

    #[test]
    fn neurons_match_figure15_within_10_percent() {
        for (name, _, neurons_m) in FIG15 {
            let net = by_name(name).unwrap();
            let got = fig15_neurons(&net) as f64 / 1e6;
            let rel = (got - neurons_m).abs() / neurons_m;
            assert!(
                rel < 0.10,
                "{name}: neurons {got:.2}M vs paper {neurons_m}M ({:.1}% off)",
                rel * 100.0
            );
        }
    }

    #[test]
    fn connections_have_figure15_magnitude() {
        // Connection counting conventions vary (the paper's GoogLeNet count
        // in particular appears to include auxiliary heads); assert the
        // order of magnitude and exact agreement for the VGGs and ResNets,
        // whose topologies are unambiguous.
        let exact = [
            ("vgg-d", 15.3),
            ("vgg-e", 19.4),
            ("resnet18", 1.79),
            ("resnet34", 3.64),
        ];
        for (name, conns_b) in exact {
            let net = by_name(name).unwrap();
            let got = net.analyze().connections() as f64 / 1e9;
            let rel = (got - conns_b).abs() / conns_b;
            assert!(
                rel < 0.06,
                "{name}: connections {got:.2}B vs paper {conns_b}B"
            );
        }
    }

    #[test]
    fn by_name_round_trips_names() {
        for name in BENCHMARK_NAMES {
            let net = by_name(name).unwrap();
            assert_eq!(net.name(), name);
        }
    }

    #[test]
    fn figure16_order_is_a_permutation() {
        let mut a = BENCHMARK_NAMES;
        let mut b = FIGURE16_ORDER;
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn chain_networks_have_paper_layer_counts() {
        // 11-layer nets of Figure 15: 5 CONV / 3 FC / 3 SAMP.
        for name in ["alexnet", "zf", "cnn-s", "overfeat-fast"] {
            let net = by_name(name).unwrap();
            assert_eq!(net.layer_counts(), (5, 3, 3), "{name}");
        }
        assert_eq!(
            by_name("overfeat-accurate").unwrap().layer_counts(),
            (6, 3, 3)
        );
        assert_eq!(by_name("vgg-a").unwrap().layer_counts(), (8, 3, 5));
        assert_eq!(by_name("vgg-d").unwrap().layer_counts(), (13, 3, 5));
        assert_eq!(by_name("vgg-e").unwrap().layer_counts(), (16, 3, 5));
        // ResNets: paper counts 17/33 CONV layers (option-A shortcuts are
        // parameter-free and not counted).
        let (c18, f18, _) = by_name("resnet18").unwrap().layer_counts();
        assert_eq!((c18, f18), (17, 1));
        let (c34, f34, _) = by_name("resnet34").unwrap().layer_counts();
        assert_eq!((c34, f34), (33, 1));
        let (_, fg, _) = by_name("googlenet").unwrap().layer_counts();
        assert_eq!(fg, 1);
    }

    #[test]
    fn all_networks_end_with_loss() {
        for net in benchmark_suite() {
            let last = net.layers().last().unwrap();
            assert_eq!(last.layer().type_tag(), "LOSS", "{}", net.name());
            // classifier fans out 1000 classes
            let cls = net.node(last.inputs()[0]);
            assert_eq!(cls.output_shape().elems(), 1000, "{}", net.name());
        }
    }
}
