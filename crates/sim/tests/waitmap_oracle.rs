//! Property tests pinning `WaitMap::wake_overlapping`'s boundary
//! semantics against a naive O(n) oracle: half-open overlap (adjacent
//! ranges do not touch), zero-length accesses overlap nothing, and
//! domains are fully isolated.

use proptest::prelude::*;
use scaledeep_sim::engine::{WaitMap, WaitRange};

/// The reference model: the documented semantics, written the slow
/// obvious way. `[a, a+al)` and `[b, b+bl)` overlap iff both are
/// non-empty and each starts before the other ends (saturating, like the
/// real table).
fn oracle_overlaps(a: u32, al: u32, b: u32, bl: u32) -> bool {
    al > 0 && bl > 0 && a < b.saturating_add(bl) && b < a.saturating_add(al)
}

/// Applies one wake to the naive model, returning the woken ids in
/// ascending order and removing all their entries.
fn oracle_wake(
    parked: &mut Vec<(usize, Vec<WaitRange>)>,
    domain: u16,
    addr: u32,
    len: u32,
) -> Vec<usize> {
    let mut woken: Vec<usize> = parked
        .iter()
        .filter(|(_, ranges)| {
            ranges
                .iter()
                .any(|&(d, start, l)| d == domain && oracle_overlaps(start, l, addr, len))
        })
        .map(|&(id, _)| id)
        .collect();
    woken.sort_unstable();
    parked.retain(|(id, _)| !woken.contains(id));
    woken
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64 })]

    fn wake_overlapping_matches_naive_oracle(
        parks in prop::collection::vec(
            prop::collection::vec((0u16..3, 0u32..16, 0u32..4), 1..4),
            1..12,
        ),
        wakes in prop::collection::vec((0u16..3, 0u32..16, 0u32..4), 1..24),
    ) {
        let mut map = WaitMap::new();
        let mut model: Vec<(usize, Vec<WaitRange>)> = Vec::new();
        for (waiter, ranges) in parks.iter().enumerate() {
            map.park(waiter, ranges.iter().copied());
            model.push((waiter, ranges.clone()));
        }
        for &(domain, addr, len) in &wakes {
            let woken = map.wake_overlapping(domain, addr, len);
            let expected = oracle_wake(&mut model, domain, addr, len);
            prop_assert_eq!(&woken, &expected, "wake({}, {}, {})", domain, addr, len);
            // A woken waiter loses all entries; the rest stay parked.
            for (waiter, _) in parks.iter().enumerate() {
                prop_assert_eq!(
                    map.is_parked(waiter),
                    model.iter().any(|&(id, _)| id == waiter),
                    "is_parked({}) after wake({}, {}, {})", waiter, domain, addr, len
                );
            }
        }
        prop_assert_eq!(map.waiter_count(), model.len());
    }
}

#[test]
fn adjacent_ranges_do_not_overlap() {
    let mut map = WaitMap::new();
    map.park(0, [(0u16, 0u32, 4u32)]); // [0, 4)
    map.park(1, [(0u16, 4u32, 4u32)]); // [4, 8)
                                       // Touching [4, 8) must not wake the [0, 4) waiter.
    assert_eq!(map.wake_overlapping(0, 4, 4), vec![1]);
    assert!(map.is_parked(0));
    // The shared boundary address wakes only the range it belongs to.
    map.park(1, [(0u16, 4u32, 4u32)]);
    assert_eq!(map.wake_overlapping(0, 3, 1), vec![0]);
    assert!(map.is_parked(1));
}

#[test]
fn zero_length_accesses_overlap_nothing() {
    let mut map = WaitMap::new();
    map.park(0, [(0u16, 0u32, 8u32)]);
    // A zero-length wake touches no bytes, even inside a parked range.
    assert!(map.wake_overlapping(0, 4, 0).is_empty());
    assert!(map.is_parked(0));
    // A zero-length parked entry covers no bytes, so nothing wakes it:
    // a wake sweeping the whole space picks up only the real range.
    map.park(1, [(0u16, 4u32, 0u32)]);
    assert_eq!(map.wake_overlapping(0, 0, 16), vec![0]);
    assert!(map.is_parked(1), "zero-length entry must stay parked");
}

#[test]
fn domains_are_isolated() {
    let mut map = WaitMap::new();
    map.park(0, [(0u16, 0u32, 8u32)]);
    map.park(1, [(1u16, 0u32, 8u32)]);
    assert!(map.wake_overlapping(2, 0, 8).is_empty());
    assert_eq!(map.wake_overlapping(1, 0, 8), vec![1]);
    assert!(map.is_parked(0));
    assert_eq!(map.wake_overlapping(0, 0, 8), vec![0]);
}
