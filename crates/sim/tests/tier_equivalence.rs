//! Tier-equivalence property: random *executable* programs covering all
//! 28 instruction forms must be bit-identical across execution tiers —
//! the interpreter ([`Machine::run`]) and the compiled tier
//! ([`Machine::run_lowered`]) must produce the same memory images (to
//! the bit, including NaN payloads) and the same [`RunStats`]
//! (instructions, stalls, cycles, per-tile split).
//!
//! Programs are assembled from self-contained *blocks*, one generator
//! per instruction form, so every case exercises the full ISA: scalar
//! ALU ops on scratch registers, bounded countdown loops and forward
//! skips for the branches, geometry-valid in-bounds data instructions
//! (including register-indirect addressing and external-memory DMA),
//! and benign runtime tracker arming. Blocks are shuffled and split
//! across two concurrent programs so the event-driven scheduler
//! interleaves them; scheduling is deterministic, so any divergence is
//! a tier bug, not a race.

use proptest::prelude::*;
use scaledeep_isa::{micro, ActKind, Addr, Inst, MemRef, PoolMode, Program, Reg, TileRef};
use scaledeep_sim::func::Machine;

const TILES: u16 = 2;
const CAPACITY: u32 = 1024;
const EXT_CAPACITY: usize = 256;

/// Deterministic operand source: proptest drives only `(seed, extras,
/// split)`, so a failing case shrinks over structure while operand
/// values stay reproducible from the seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    /// Uniform value in `0..n` (`n` ≥ 1).
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// Uniform value in `lo..=hi`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo + 1)
    }
}

/// A scratch ALU register (r0..r15): written and read freely by the
/// scalar blocks; wrapping arithmetic means any value is safe.
fn alu_reg(rng: &mut Rng) -> Reg {
    Reg::new(rng.below(16) as u8)
}

/// An address register (r16..r23): only ever written by a `Ldri` with a
/// small non-negative value immediately before the indirect use, so
/// register-indirect operands always resolve in bounds.
fn addr_reg(rng: &mut Rng) -> Reg {
    Reg::new(16 + rng.below(8) as u8)
}

/// A loop-counter register (r24..r31): private to one branch block.
fn loop_reg(rng: &mut Rng) -> Reg {
    Reg::new(24 + rng.below(8) as u8)
}

fn tile(rng: &mut Rng) -> TileRef {
    TileRef(rng.below(u64::from(TILES)) as u16)
}

/// A direct tile reference at a small address: every data region starts
/// below 64 and the largest generated access is under 192 elements, so
/// all ranges sit comfortably inside the 1024-word scratchpads.
fn mem_at(rng: &mut Rng) -> MemRef {
    MemRef {
        tile: tile(rng),
        addr: Addr::Imm(rng.below(64) as u32),
    }
}

/// A DMA-side reference: one in four points at external memory.
fn dma_mem(rng: &mut Rng) -> MemRef {
    if rng.below(4) == 0 {
        MemRef {
            tile: TileRef(u16::MAX),
            addr: Addr::Imm(rng.below(64) as u32),
        }
    } else {
        mem_at(rng)
    }
}

fn act_kind(rng: &mut Rng) -> ActKind {
    match rng.below(3) {
        0 => ActKind::Relu,
        1 => ActKind::Tanh,
        _ => ActKind::Sigmoid,
    }
}

fn pool_mode(rng: &mut Rng) -> PoolMode {
    if rng.below(2) == 0 {
        PoolMode::Max
    } else {
        PoolMode::Avg
    }
}

/// One executable block for instruction form `form` (0..28). Each block
/// is self-contained: it sets up any registers it depends on, keeps all
/// memory accesses in bounds, and terminates (loops count down from a
/// small constant).
fn block(form: usize, rng: &mut Rng) -> Vec<Inst> {
    let imm = |rng: &mut Rng| rng.range(0, 200) as i64 - 100;
    match form {
        // -------- scalar control (14) --------
        0 => vec![Inst::Ldri {
            rd: alu_reg(rng),
            value: imm(rng),
        }],
        1 => vec![Inst::Mov {
            rd: alu_reg(rng),
            rs: alu_reg(rng),
        }],
        2 => vec![Inst::Addr {
            rd: alu_reg(rng),
            rs1: alu_reg(rng),
            rs2: alu_reg(rng),
        }],
        3 => vec![Inst::Addri {
            rd: alu_reg(rng),
            rs: alu_reg(rng),
            imm: imm(rng),
        }],
        4 => vec![Inst::Subr {
            rd: alu_reg(rng),
            rs1: alu_reg(rng),
            rs2: alu_reg(rng),
        }],
        5 => vec![Inst::Subri {
            rd: alu_reg(rng),
            rs: alu_reg(rng),
            imm: imm(rng),
        }],
        6 => vec![Inst::Mulr {
            rd: alu_reg(rng),
            rs1: alu_reg(rng),
            rs2: alu_reg(rng),
        }],
        7 => vec![Inst::Inv {
            rd: alu_reg(rng),
            rs: alu_reg(rng),
        }],
        8 => {
            // Bounded countdown loop: Ldri n; Subri 1; Bnez -2.
            let r = loop_reg(rng);
            vec![
                Inst::Ldri {
                    rd: r,
                    value: rng.range(1, 3) as i64,
                },
                Inst::Subri {
                    rd: r,
                    rs: r,
                    imm: 1,
                },
                Inst::Bnez { rs: r, offset: -2 },
            ]
        }
        9 => {
            // Forward skip over a Nop, taken or not.
            let r = loop_reg(rng);
            vec![
                Inst::Ldri {
                    rd: r,
                    value: rng.below(2) as i64,
                },
                Inst::Beqz { rs: r, offset: 1 },
                Inst::Nop,
            ]
        }
        10 => {
            let r = loop_reg(rng);
            vec![
                Inst::Ldri {
                    rd: r,
                    value: rng.range(0, 2) as i64 - 1,
                },
                Inst::Bgtz { rs: r, offset: 1 },
                Inst::Nop,
            ]
        }
        11 => vec![Inst::Branch { offset: 1 }, Inst::Nop],
        12 => vec![], // Halt: appended once per program.
        13 => vec![Inst::Nop],
        // -------- coarse-grained data (2) --------
        14 => {
            // Geometry-valid convolution: ih,iw ≥ 3 and k ≤ 3 keep the
            // output dims positive for any stride/pad in range.
            let (ih, iw) = (rng.range(3, 6), rng.range(3, 6));
            let k = rng.range(1, 3);
            let stride = rng.range(1, 2);
            let pad = rng.below(k);
            let lanes = rng.range(1, 2);
            let oh = (ih + 2 * pad - k) / stride + 1;
            let ow = (iw + 2 * pad - k) / stride + 1;
            vec![Inst::NdConv {
                input: mem_at(rng),
                in_h: ih as u16,
                in_w: iw as u16,
                kernel: mem_at(rng),
                k: k as u8,
                stride: stride as u8,
                pad: pad as u8,
                lanes: lanes as u8,
                output: mem_at(rng),
                out_h: oh as u16,
                out_w: ow as u16,
                accumulate: rng.below(2) == 0,
                flip: rng.below(2) == 0,
            }]
        }
        15 => vec![Inst::MatMul {
            input: mem_at(rng),
            n_in: rng.range(1, 8) as u32,
            matrix: mem_at(rng),
            rows: rng.range(1, 8) as u32,
            output: mem_at(rng),
            accumulate: rng.below(2) == 0,
        }],
        // -------- MemHeavy offload (6) --------
        16 => {
            // Half the time, address the source indirectly so the
            // compiled tier's register resolution is exercised.
            let len = rng.range(1, 64) as u32;
            let src = if rng.below(2) == 0 {
                let r = addr_reg(rng);
                let a = rng.below(64);
                return vec![
                    Inst::Ldri {
                        rd: r,
                        value: a as i64,
                    },
                    Inst::NdActFn {
                        kind: act_kind(rng),
                        src: MemRef {
                            tile: tile(rng),
                            addr: Addr::Reg(r),
                        },
                        len,
                        dst: mem_at(rng),
                    },
                ];
            } else {
                mem_at(rng)
            };
            vec![Inst::NdActFn {
                kind: act_kind(rng),
                src,
                len,
                dst: mem_at(rng),
            }]
        }
        17 => vec![Inst::NdActBwd {
            kind: act_kind(rng),
            pre: mem_at(rng),
            err: mem_at(rng),
            len: rng.range(1, 64) as u32,
            dst: mem_at(rng),
        }],
        18 => vec![Inst::NdSubsamp {
            mode: pool_mode(rng),
            src: mem_at(rng),
            in_h: rng.range(3, 6) as u16,
            in_w: rng.range(3, 6) as u16,
            window: rng.range(1, 3) as u8,
            stride: rng.range(1, 2) as u8,
            pad: rng.below(2) as u8,
            ceil: rng.below(2) == 0,
            dst: mem_at(rng),
        }],
        19 => vec![Inst::NdUpsamp {
            mode: pool_mode(rng),
            err: mem_at(rng),
            fwd: mem_at(rng),
            in_h: rng.range(3, 6) as u16,
            in_w: rng.range(3, 6) as u16,
            window: rng.range(1, 3) as u8,
            stride: rng.range(1, 2) as u8,
            pad: rng.below(2) as u8,
            ceil: rng.below(2) == 0,
            dst: mem_at(rng),
        }],
        20 => vec![Inst::NdAcc {
            dst: mem_at(rng),
            src: mem_at(rng),
            len: rng.range(1, 64) as u32,
        }],
        21 => vec![Inst::VecScaleAcc {
            src: mem_at(rng),
            len: rng.range(1, 32) as u32,
            scalar: mem_at(rng),
            dst: mem_at(rng),
            elementwise: rng.below(2) == 0,
        }],
        // -------- MemHeavy data transfer (4) --------
        22 => vec![Inst::DmaLoad {
            src: dma_mem(rng),
            dst: dma_mem(rng),
            len: rng.range(1, 64) as u32,
            accumulate: rng.below(2) == 0,
        }],
        23 => vec![Inst::DmaStore {
            src: dma_mem(rng),
            dst: dma_mem(rng),
            len: rng.range(1, 64) as u32,
            accumulate: rng.below(2) == 0,
        }],
        24 => vec![Inst::Prefetch {
            src: dma_mem(rng),
            dst: dma_mem(rng),
            len: rng.range(1, 64) as u32,
        }],
        25 => vec![Inst::PassBuff {
            src: dma_mem(rng),
            dst: dma_mem(rng),
            len: rng.range(1, 64) as u32,
        }],
        // -------- data-flow track (2) --------
        // Fixed regions well above the data area, zero counts: armed but
        // never gating (0 updates → complete; 0 reads → unrestricted),
        // and every re-arm is spec-identical, hence idempotent.
        26 => vec![Inst::MemTrack {
            tile: tile(rng),
            addr: 800,
            len: 16,
            num_updates: 0,
            num_reads: 0,
        }],
        27 => vec![Inst::DmaMemTrack {
            tile: tile(rng),
            addr: 832,
            len: 16,
            num_updates: 0,
            num_reads: 0,
        }],
        _ => unreachable!("28 forms"),
    }
}

/// Builds the two concurrent programs for one case: a full pass over all
/// 28 forms plus `extras`, shuffled, split at `split` blocks.
fn build_programs(seed: u64, extras: &[usize], split: usize) -> Vec<Program> {
    let mut rng = Rng(seed | 1);
    let mut blocks: Vec<Vec<Inst>> = (0..28).map(|f| block(f, &mut rng)).collect();
    blocks.extend(extras.iter().map(|&f| block(f % 28, &mut rng)));
    // Fisher–Yates with the same deterministic source.
    for i in (1..blocks.len()).rev() {
        let j = rng.below(i as u64 + 1) as usize;
        blocks.swap(i, j);
    }
    let split = split.min(blocks.len());
    let mut progs = Vec::new();
    for (name, range) in [("alpha", 0..split), ("beta", split..blocks.len())] {
        let mut insts: Vec<Inst> = blocks[range].iter().flatten().copied().collect();
        insts.push(Inst::Halt);
        progs.push(Program::new(name, insts));
    }
    progs
}

/// Seeds a machine's memories with a mix of ordinary values and the
/// specials that expose ordering or copy-vs-recompute differences.
fn init_machine(seed: u64) -> Machine {
    let mut m = Machine::new(TILES as usize, CAPACITY);
    m.set_ext_capacity(EXT_CAPACITY);
    let mut rng = Rng(seed.rotate_left(17) | 1);
    let specials = [f32::NAN, f32::INFINITY, f32::NEG_INFINITY, -0.0, 1e-30];
    for t in 0..TILES {
        let mem = m.mem_mut(t);
        for v in mem.iter_mut().take(256) {
            *v = (rng.below(2000) as f32) / 7.0 - 140.0;
        }
        for (i, &s) in specials.iter().enumerate() {
            mem[(rng.below(200) as usize) + i] = s;
        }
    }
    for v in m.ext_mem_mut().iter_mut().take(192) {
        *v = (rng.below(2000) as f32) / 9.0 - 110.0;
    }
    m
}

fn bits(mem: &[f32]) -> Vec<u32> {
    mem.iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random executable programs over the whole ISA: interpreter and
    /// compiled tier agree bit-for-bit on memory and exactly on stats.
    #[test]
    fn random_programs_are_bit_identical_across_tiers(
        seed in any::<u64>(),
        extras in prop::collection::vec(0usize..28, 0..20),
        split in 0usize..48,
    ) {
        let programs = build_programs(seed, &extras, split);

        let mut interp = init_machine(seed);
        let a = interp.run(&programs, &[]).expect("interpreter runs");

        let lowered: Vec<_> = programs.iter().map(micro::lower).collect();
        let mut compiled = init_machine(seed);
        let b = compiled.run_lowered(&lowered, &[]).expect("compiled tier runs");

        prop_assert_eq!(a, b, "RunStats diverged across tiers");
        for t in 0..TILES {
            prop_assert_eq!(
                bits(interp.mem(t)),
                bits(compiled.mem(t)),
                "tile {} memory diverged", t
            );
        }
        prop_assert_eq!(
            bits(interp.ext_mem()),
            bits(compiled.ext_mem()),
            "external memory diverged"
        );
    }
}

/// The block table covers every instruction form exactly once in its
/// canonical pass — a compile-time-adjacent guard that a new form added
/// to the ISA forces this test to grow with it.
#[test]
fn block_table_covers_every_form() {
    assert_eq!(Inst::COUNT, 28, "block() matches forms 0..28");
    let mut rng = Rng(0x9E37_79B9_7F4A_7C15);
    // Every non-Halt form must emit its own opcode somewhere in the block.
    for form in 0..28 {
        let insts = block(form, &mut rng);
        if form == 12 {
            assert!(insts.is_empty(), "Halt is appended per program");
        } else {
            assert!(!insts.is_empty(), "form {form} generated no code");
        }
    }
}
