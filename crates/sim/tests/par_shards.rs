//! Shard-count invariance properties of the `par` subsystem: random
//! workloads through the sequential engines (the bit-identity oracles)
//! and their sharded counterparts must agree exactly.
//!
//! Two engines, two generators:
//!
//! * **Functional machine** — random programs confined to random tile
//!   pairs (so the machine splits into several connected components,
//!   occasionally re-joined through external memory), under random fault
//!   plans (bit-flips, dropped wakeups, tile failures, transient link
//!   faults). [`run_func_sharded`] must produce bit-identical
//!   [`RunStats`] and memory images at every shard count when the
//!   sequential run succeeds, and must fail whenever it fails.
//! * **Whole-node model** — random stage costs, replica counts, image
//!   streams and sync latencies, with and without link faults.
//!   [`run_node_sharded`] must reproduce [`run_node_sequential`]'s
//!   [`NodeOutcome`] exactly.
//!
//! Both properties additionally assert same-seed determinism: the
//! sharded engines run twice at shard counts 2 and 4 and must reproduce
//! themselves bit for bit (thread scheduling must never leak into
//! results).

use proptest::prelude::*;
use scaledeep_compiler::codegen::TrackerSpec;
use scaledeep_dnn::LayerId;
use scaledeep_isa::{ActKind, Addr, Inst, MemRef, Program, TileRef, EXT_MEM_TILE};
use scaledeep_sim::fault::{FaultKind, FaultPlan, LinkFaults};
use scaledeep_sim::func::{CycleCosts, Machine};
use scaledeep_sim::par::{run_func_sharded, run_node_sequential, run_node_sharded, NodeModel};
use scaledeep_sim::perf::StageCost;

const CAPACITY: u32 = 256;
const EXT_CAPACITY: usize = 128;

/// Deterministic operand source (xorshift), same idiom as
/// `tier_equivalence.rs`: proptest drives only the seed, so a failing
/// case shrinks over structure while values stay reproducible.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo + 1)
    }

    fn chance(&mut self, one_in: u64) -> bool {
        self.below(one_in) == 0
    }
}

/// A direct reference into one of the pair's two tiles, at a small
/// address so every generated access (len ≤ 32) stays in bounds.
fn pair_mem(rng: &mut Rng, a: u16, b: u16) -> MemRef {
    MemRef {
        tile: TileRef(if rng.chance(2) { a } else { b }),
        addr: Addr::Imm(rng.below(64) as u32),
    }
}

/// One random data instruction confined to tiles `a`/`b` (with an
/// occasional external-memory DMA when `ext` is allowed — that joins the
/// pair's component with every other ext-touching pair).
fn pair_inst(rng: &mut Rng, a: u16, b: u16, ext: bool) -> Inst {
    let len = rng.range(1, 32) as u32;
    match rng.below(6) {
        0 => Inst::NdAcc {
            dst: pair_mem(rng, a, b),
            src: pair_mem(rng, a, b),
            len,
        },
        1 => Inst::NdActFn {
            kind: match rng.below(3) {
                0 => ActKind::Relu,
                1 => ActKind::Tanh,
                _ => ActKind::Sigmoid,
            },
            src: pair_mem(rng, a, b),
            len,
            dst: pair_mem(rng, a, b),
        },
        2 => Inst::VecScaleAcc {
            src: pair_mem(rng, a, b),
            len,
            scalar: pair_mem(rng, a, b),
            dst: pair_mem(rng, a, b),
            elementwise: rng.chance(2),
        },
        3 => Inst::DmaStore {
            src: pair_mem(rng, a, b),
            dst: if ext && rng.chance(3) {
                MemRef {
                    tile: EXT_MEM_TILE,
                    addr: Addr::Imm(rng.below(64) as u32),
                }
            } else {
                pair_mem(rng, a, b)
            },
            len: len.min(32),
            accumulate: rng.chance(2),
        },
        4 => Inst::Ldri {
            rd: scaledeep_isa::Reg::new(rng.below(16) as u8),
            value: rng.range(0, 200) as i64 - 100,
        },
        _ => Inst::DmaLoad {
            src: pair_mem(rng, a, b),
            dst: pair_mem(rng, a, b),
            len,
            accumulate: rng.chance(2),
        },
    }
}

/// Builds one case's workload: `pairs` tile pairs, each carrying one or
/// two programs over its own tiles, some tracked, some streaming through
/// external memory.
fn build_workload(seed: u64, pairs: usize) -> (Vec<Program>, Vec<TrackerSpec>) {
    let mut rng = Rng(seed | 1);
    let mut programs = Vec::new();
    let mut specs = Vec::new();
    for i in 0..pairs {
        let (a, b) = ((2 * i) as u16, (2 * i + 1) as u16);
        let ext = rng.chance(3);
        for p in 0..rng.range(1, 2) {
            let mut insts: Vec<Inst> = (0..rng.range(1, 4))
                .map(|_| pair_inst(&mut rng, a, b, ext))
                .collect();
            insts.push(Inst::Halt);
            programs.push(Program::new(format!("p{i}_{p}"), insts));
        }
        if rng.chance(2) {
            // Armed but never gating (0 updates → complete, 0 reads →
            // unrestricted): arming order still matters for stats.
            specs.push(TrackerSpec {
                tile: a,
                addr: 128,
                len: 16,
                num_updates: 0,
                num_reads: 0,
            });
        }
    }
    (programs, specs)
}

/// A random fault plan over `tiles` tiles: scheduled events (bit-flips,
/// dropped wakeups, rarely a tile failure), sometimes a transient
/// link-fault model, always a generous watchdog.
fn build_plan(seed: u64, tiles: u16) -> FaultPlan {
    let mut rng = Rng(seed.rotate_left(23) | 1);
    let mut plan = FaultPlan::seeded(seed);
    for _ in 0..rng.below(4) {
        let at = rng.below(50);
        let tile = rng.below(u64::from(tiles) + 2) as u16; // sometimes untouched/OOB
        let kind = match rng.below(8) {
            0 => FaultKind::DroppedWakeup { tile },
            1 => FaultKind::TileFailure { tile },
            _ => FaultKind::BitFlip {
                tile,
                addr: rng.below(u64::from(CAPACITY)) as u32,
                bit: rng.below(32) as u8,
            },
        };
        plan = plan.with_fault(at, kind);
    }
    if rng.chance(3) {
        plan = plan.with_link_faults(LinkFaults {
            prob: 0.2,
            base_backoff: 4,
            max_retries: 3,
        });
    }
    plan
}

fn seeded_machine(seed: u64, tiles: usize) -> Machine {
    let mut m = Machine::new(tiles, CAPACITY);
    m.set_ext_capacity(EXT_CAPACITY);
    let mut rng = Rng(seed.rotate_left(41) | 1);
    let specials = [f32::NAN, f32::NEG_INFINITY, -0.0, 1e-30];
    for t in 0..tiles {
        let mem = m.mem_mut(t as u16);
        for v in mem.iter_mut() {
            *v = (rng.below(2000) as f32) / 7.0 - 140.0;
        }
        for (i, &s) in specials.iter().enumerate() {
            mem[(rng.below(100) as usize) + i] = s;
        }
    }
    for v in m.ext_mem_mut().iter_mut() {
        *v = (rng.below(2000) as f32) / 9.0 - 110.0;
    }
    m
}

fn memory_bits(tiles: usize, m: &Machine) -> Vec<Vec<u32>> {
    let mut out: Vec<Vec<u32>> = (0..tiles)
        .map(|t| m.mem(t as u16).iter().map(|v| v.to_bits()).collect())
        .collect();
    out.push(m.ext_mem().iter().map(|v| v.to_bits()).collect());
    out
}

/// One random whole-node model. Partial tail minibatches, single-replica
/// and sync-free (evaluation) shapes all fall out of the ranges.
fn build_node_model(seed: u64) -> NodeModel {
    let mut rng = Rng(seed.rotate_left(7) | 1);
    let stages = (0..rng.range(1, 5))
        .map(|s| StageCost {
            id: LayerId::from_index(s as usize),
            name: format!("s{s}"),
            service_cycles: rng.range(1, 60),
            useful_lane_cycles: 0.0,
            useful_sfu_cycles: 0.0,
            traffic: [0.0; 7],
            links: [0.0; 7],
        })
        .collect();
    NodeModel {
        stages,
        replicas: rng.range(1, 12) as usize,
        images: rng.range(2, 40) as usize,
        minibatch: rng.range(1, 9) as usize,
        sync: rng.below(400),
        barrier: !rng.chance(4),
        seed,
        link: if rng.chance(2) {
            Some(LinkFaults {
                prob: 0.3,
                base_backoff: 8,
                max_retries: 4,
            })
        } else {
            None
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Random component-structured workloads under random fault plans:
    /// the sharded functional engine reproduces the sequential oracle's
    /// stats and memories bit for bit at every shard count (and agrees
    /// on failure when the oracle fails).
    #[test]
    fn func_sharding_matches_the_sequential_oracle(seed in any::<u64>(), pairs in 1usize..6) {
        let tiles = pairs * 2;
        let (programs, specs) = build_workload(seed, pairs);
        let plan = build_plan(seed, tiles as u16);
        let costs = CycleCosts::default();

        let mut seq = seeded_machine(seed, tiles);
        let want = seq.run_faulted(&programs, &specs, &costs, &plan);

        for shards in [1usize, 2, 4, 8] {
            let mut m = seeded_machine(seed, tiles);
            let got = run_func_sharded(&mut m, &programs, &specs, &costs, &plan, shards);
            match (&want, &got) {
                (Ok(w), Ok(g)) => {
                    prop_assert_eq!(w, g, "RunStats diverged at {} shards", shards);
                    prop_assert_eq!(
                        memory_bits(tiles, &seq),
                        memory_bits(tiles, &m),
                        "memory diverged at {} shards", shards
                    );
                }
                (Err(_), Err(_)) => {}
                (w, g) => prop_assert!(
                    false,
                    "oracle {:?} vs {} shards {:?}",
                    w.as_ref().map(|_| "ok"), shards, g.as_ref().map(|_| "ok")
                ),
            }
        }

        // Same-seed determinism: the sharded engine reproduces itself.
        for shards in [2usize, 4] {
            let mut m1 = seeded_machine(seed, tiles);
            let r1 = run_func_sharded(&mut m1, &programs, &specs, &costs, &plan, shards);
            let mut m2 = seeded_machine(seed, tiles);
            let r2 = run_func_sharded(&mut m2, &programs, &specs, &costs, &plan, shards);
            match (r1, r2) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(a, b, "same-seed stats differ at {} shards", shards);
                    prop_assert_eq!(memory_bits(tiles, &m1), memory_bits(tiles, &m2));
                }
                (Err(_), Err(_)) => {}
                _ => prop_assert!(false, "same-seed runs disagree on failure at {} shards", shards),
            }
        }
    }

    /// Random whole-node models: the sharded node engine reproduces the
    /// sequential oracle's outcome exactly at every shard count, and
    /// reproduces itself run over run.
    #[test]
    fn node_sharding_matches_the_sequential_oracle(seed in any::<u64>()) {
        let model = build_node_model(seed);
        let oracle = run_node_sequential(&model);
        for shards in [1usize, 2, 4, 8] {
            prop_assert_eq!(
                &run_node_sharded(&model, shards),
                &oracle,
                "NodeOutcome diverged at {} shards", shards
            );
        }
        for shards in [2usize, 4] {
            prop_assert_eq!(
                run_node_sharded(&model, shards),
                run_node_sharded(&model, shards),
                "same-seed node runs differ at {} shards", shards
            );
        }
    }
}
