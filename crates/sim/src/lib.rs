//! The ScaleDeep architectural simulators (paper §5).
//!
//! Two simulators share one discrete-event core, [`engine`]: an
//! [`EventQueue`] (time-ordered dispatch with free-list slot recycling
//! and FIFO tie-breaking), a [`WaitMap`] (threads park on tracker
//! address-range conditions and are woken only by the update that
//! satisfies them — never re-polled), and a [`BusyTracker`] (shared
//! resource accounting).
//!
//! * [`perf`] — the **performance simulator**: an event-driven model of the
//!   nested pipeline (paper §3.2.3) over a compiled [`Mapping`]. It models
//!   the events the paper's simulator models — compute operations on the
//!   2D PE arrays and SFUs, on-/off-chip memory accesses, link transfers at
//!   every tier of the grid–wheel–ring interconnect, and minibatch-end
//!   gradient aggregation — and reports throughput (images/second),
//!   per-resource utilization, link utilization per class, and average
//!   power / energy efficiency via the calibrated power model.
//! * [`func`] — the **functional simulator**: a bit-accurate interpreter of
//!   compiled ScaleDeep ISA programs running one thread per CompHeavy tile
//!   program, with real f32 scratchpads and hardware data-flow trackers
//!   enforcing the MEMTRACK synchronization semantics (§3.2.4). Threads
//!   are scheduled event-driven on the shared engine: every instruction
//!   is priced in cycles by the §3.2-derived [`CycleCosts`] table, so a
//!   run yields both the final memory image (validated against the
//!   `scaledeep-tensor` reference executor) and a cycle count
//!   cross-checkable against [`perf`].
//!
//! Both simulators are instrumented with the `scaledeep-trace`
//! observability subsystem: the `*_traced` entry points
//! ([`func::Machine::run_traced`], [`perf::PerfSim::run_mapped_traced`])
//! accept a `Tracer` (cycle-stamped spans/instants on named tracks,
//! exportable to Chrome/Perfetto JSON or per-cycle CSV) and a
//! `MetricsRegistry` — the single source all run counters ([`RunStats`],
//! [`PerfResult`] scalars, fault statistics) are assembled from. The
//! untraced entry points delegate with a statically-free `NullSink`.
//!
//! [`RunStats`]: func::RunStats
//! [`PerfResult`]: perf::PerfResult
//! [`Mapping`]: scaledeep_compiler::Mapping
//! [`EventQueue`]: engine::EventQueue
//! [`WaitMap`]: engine::WaitMap
//! [`BusyTracker`]: engine::BusyTracker
//! [`CycleCosts`]: func::CycleCosts

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
mod error;
pub mod fault;
pub mod func;
pub mod par;
pub mod perf;

pub use error::{Error, Result};
