//! The ScaleDeep architectural simulators (paper §5).
//!
//! Two simulators share one discrete-event core:
//!
//! * [`perf`] — the **performance simulator**: an event-driven model of the
//!   nested pipeline (paper §3.2.3) over a compiled [`Mapping`]. It models
//!   the events the paper's simulator models — compute operations on the
//!   2D PE arrays and SFUs, on-/off-chip memory accesses, link transfers at
//!   every tier of the grid–wheel–ring interconnect, and minibatch-end
//!   gradient aggregation — and reports throughput (images/second),
//!   per-resource utilization, link utilization per class, and average
//!   power / energy efficiency via the calibrated power model.
//! * [`func`] — the **functional simulator**: a bit-accurate interpreter of
//!   compiled ScaleDeep ISA programs running one thread per CompHeavy tile
//!   program, with real f32 scratchpads and hardware data-flow trackers
//!   enforcing the MEMTRACK synchronization semantics (§3.2.4). Validated
//!   against the `scaledeep-tensor` reference executor.
//!
//! [`Mapping`]: scaledeep_compiler::Mapping

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
mod error;
pub mod func;
pub mod perf;

pub use error::{Error, Result};
