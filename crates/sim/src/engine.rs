//! Discrete-event simulation core shared by both simulators:
//! a monotonic event queue, a park/wake table for threads blocked on
//! address-range conditions, and busy-time resource accounting.
//!
//! The performance model ([`crate::perf`]) drives [`EventQueue`] directly
//! from its pipeline loop; the functional simulator ([`crate::func`])
//! layers [`WaitMap`] on top so that a thread blocked on a MEMTRACK
//! tracker parks exactly once and is re-scheduled only by the tracker
//! update that can satisfy it — no re-polling.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulation time in cycles.
pub type Cycle = u64;

/// A monotonic event queue: events pop in time order; ties pop in push
/// order (deterministic replay).
///
/// Event payloads live in an internal slot arena; slots freed by [`pop`]
/// are recycled by later [`push`] calls, so the arena's footprint is
/// bounded by the peak number of *pending* events, not by the total
/// number ever scheduled.
///
/// [`push`]: EventQueue::push
/// [`pop`]: EventQueue::pop
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(Cycle, u64, usize)>>,
    events: Vec<Option<E>>,
    free: Vec<usize>,
    seq: u64,
    now: Cycle,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time 0.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            events: Vec::new(),
            free: Vec::new(),
            seq: 0,
            now: 0,
        }
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (before the last popped event).
    pub fn push(&mut self, at: Cycle, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < {}",
            self.now
        );
        let idx = match self.free.pop() {
            Some(idx) => {
                debug_assert!(self.events[idx].is_none(), "free slot still occupied");
                self.events[idx] = Some(event);
                idx
            }
            None => {
                let idx = self.events.len();
                self.events.push(Some(event));
                idx
            }
        };
        self.heap.push(Reverse((at, self.seq, idx)));
        self.seq += 1;
    }

    /// Schedules `event` `delay` cycles from now, saturating at
    /// [`Cycle::MAX`] — fault back-off retries can ask for far-future
    /// times, and wrap-around would schedule into the past.
    pub fn push_after(&mut self, delay: Cycle, event: E) {
        let at = self.now.saturating_add(delay);
        self.push(at, event);
    }

    /// Pops the next event, advancing time.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        let Reverse((at, _, idx)) = self.heap.pop()?;
        self.now = at;
        let event = self.events[idx].take().expect("event popped once");
        self.free.push(idx);
        Some((at, event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Size of the internal slot arena — the high-water mark of pending
    /// events. Exposed so regression tests can pin the bound.
    pub fn slot_capacity(&self) -> usize {
        self.events.len()
    }
}

/// Identifies a parked entity (for the functional simulator: the thread's
/// index in the machine's program list).
pub type WaiterId = usize;

/// An address-range condition a waiter is parked on: `domain` scopes the
/// address space (for MEMTRACK: the tile id), `addr`/`len` the range.
pub type WaitRange = (u16, u32, u32);

/// Park/wake table keyed by address-range conditions.
///
/// A blocked entity *parks* once on the set of ranges its next step
/// touches. When the state guarding some range changes, the mutator calls
/// [`wake_overlapping`] with the touched range; every waiter with at
/// least one overlapping entry is removed (all its entries at once) and
/// returned for re-scheduling. Waiters are woken in id order, so replay
/// is deterministic regardless of entry insertion order.
///
/// The table does not evaluate readiness itself — a woken waiter
/// re-checks its condition and may park again. What it guarantees is
/// that a parked waiter is *only* revisited when a relevant range was
/// touched, which replaces the round-robin re-polling scheduler.
///
/// [`wake_overlapping`]: WaitMap::wake_overlapping
#[derive(Debug, Default)]
pub struct WaitMap {
    entries: Vec<(WaitRange, WaiterId)>,
}

impl WaitMap {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parks `waiter` on every range in `ranges`.
    ///
    /// # Panics
    ///
    /// Panics if `waiter` is already parked — a blocked entity must park
    /// exactly once per wait.
    pub fn park(&mut self, waiter: WaiterId, ranges: impl IntoIterator<Item = WaitRange>) {
        assert!(
            !self.is_parked(waiter),
            "waiter {waiter} parked twice without an intervening wake"
        );
        let before = self.entries.len();
        self.entries
            .extend(ranges.into_iter().map(|range| (range, waiter)));
        assert!(
            self.entries.len() > before,
            "waiter {waiter} parked on no ranges (would sleep forever)"
        );
    }

    /// Removes and returns (in ascending id order) every waiter with at
    /// least one entry overlapping `[addr, addr + len)` in `domain`.
    /// All entries of a woken waiter are removed, not just the matching
    /// one.
    pub fn wake_overlapping(&mut self, domain: u16, addr: u32, len: u32) -> Vec<WaiterId> {
        let mut woken: Vec<WaiterId> = self
            .entries
            .iter()
            .filter(|&&((d, start, l), _)| d == domain && overlaps(start, l, addr, len))
            .map(|&(_, waiter)| waiter)
            .collect();
        woken.sort_unstable();
        woken.dedup();
        if !woken.is_empty() {
            self.entries
                .retain(|(_, waiter)| woken.binary_search(waiter).is_err());
        }
        woken
    }

    /// True if `waiter` has at least one parked entry.
    pub fn is_parked(&self, waiter: WaiterId) -> bool {
        self.entries.iter().any(|&(_, w)| w == waiter)
    }

    /// Number of parked waiters (not entries).
    pub fn waiter_count(&self) -> usize {
        let mut ids: Vec<WaiterId> = self.entries.iter().map(|&(_, w)| w).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// True when nothing is parked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(range, waiter)` entries — deadlock diagnostics walk
    /// this to name what each stuck thread is waiting for.
    pub fn entries(&self) -> impl Iterator<Item = &(WaitRange, WaiterId)> {
        self.entries.iter()
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// Half-open range overlap; zero-length ranges overlap nothing — not
/// even when the other range encloses their position (the bare interval
/// formula would claim an interior zero-length touch overlaps).
fn overlaps(a_start: u32, a_len: u32, b_start: u32, b_len: u32) -> bool {
    if a_len == 0 || b_len == 0 {
        return false;
    }
    let a_end = a_start.saturating_add(a_len);
    let b_end = b_start.saturating_add(b_len);
    a_start < b_end && b_start < a_end
}

/// A cycle-budget fuse: an event loop consults it on every dispatch and
/// aborts the run once simulation time passes the budget, turning hangs
/// (livelock, lost wakeups) into a typed error instead of
/// non-termination.
///
/// An unarmed watchdog ([`Watchdog::unarmed`]) never blows, so the
/// fault-free path can consult it unconditionally with zero behavioral
/// difference.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Watchdog {
    budget: Option<Cycle>,
}

impl Watchdog {
    /// A fuse that blows when simulation time exceeds `max_cycles`.
    pub fn armed(max_cycles: Cycle) -> Self {
        Self {
            budget: Some(max_cycles),
        }
    }

    /// A fuse that never blows.
    pub fn unarmed() -> Self {
        Self { budget: None }
    }

    /// True once `now` exceeds the budget (an armed fuse tolerates
    /// dispatches *at* the budget cycle itself).
    pub fn expired(&self, now: Cycle) -> bool {
        self.budget.is_some_and(|max| now > max)
    }

    /// The configured budget, if armed.
    pub fn budget(&self) -> Option<Cycle> {
        self.budget
    }
}

/// Busy-time accounting for one resource (a PE array, an SFU pool, a link
/// class): accumulates busy cycles and reports utilization over a window.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BusyTracker {
    busy: f64,
    window_start: Cycle,
}

impl BusyTracker {
    /// A fresh tracker with its window starting at `start`.
    pub fn new(start: Cycle) -> Self {
        Self {
            busy: 0.0,
            window_start: start,
        }
    }

    /// Records `cycles` of busy time (fractional cycles allowed — a
    /// resource serving at partial width accumulates partial busy time).
    pub fn add(&mut self, cycles: f64) {
        debug_assert!(cycles >= 0.0, "negative busy time");
        self.busy += cycles;
    }

    /// Accumulated busy cycles.
    pub fn busy(&self) -> f64 {
        self.busy
    }

    /// Utilization over `[window_start, now]`, clamped to `[0, 1]`.
    /// Returns `0.0` (never NaN or inf) for an empty or inverted window
    /// (`now <= window_start`); accumulation error or double-charging
    /// that pushes busy time past the elapsed window reports `1.0`.
    pub fn utilization(&self, now: Cycle) -> f64 {
        let elapsed = now.saturating_sub(self.window_start);
        if elapsed == 0 {
            0.0
        } else {
            (self.busy / elapsed as f64).clamp(0.0, 1.0)
        }
    }

    /// Restarts the measurement window at `now`, discarding history
    /// (used to skip pipeline warm-up).
    pub fn reset(&mut self, now: Cycle) {
        self.busy = 0.0;
        self.window_start = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, "c");
        q.push(10, "a");
        q.push(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_pop_in_push_order() {
        let mut q = EventQueue::new();
        q.push(5, 1);
        q.push(5, 2);
        q.push(5, 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_pop_in_push_order_through_recycled_slots() {
        // Slot reuse must not perturb FIFO tie-breaking: recycle slots
        // via pops, then push a tied batch whose slot indices are in
        // reverse order of push order.
        let mut q = EventQueue::new();
        q.push(1, 0);
        q.push(1, 1);
        q.push(1, 2);
        while q.pop().is_some() {}
        q.push(5, 10);
        q.push(5, 11);
        q.push(5, 12);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![10, 11, 12]);
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.push(7, ());
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 7);
        q.push_after(3, ());
        assert_eq!(q.pop(), Some((10, ())));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.push(10, ());
        q.pop();
        q.push(5, ());
    }

    #[test]
    fn slot_arena_is_bounded_by_pending_events() {
        // Regression for the slot leak: a long run of push/pop pairs
        // must not grow the arena past the peak pending count.
        let mut q = EventQueue::new();
        q.push(0, 0u64);
        q.push(0, 1u64);
        q.push(0, 2u64);
        for i in 0..100_000u64 {
            let (_, e) = q.pop().expect("queue stays non-empty");
            q.push_after(1 + (e % 3), i);
        }
        assert_eq!(q.len(), 3);
        assert!(
            q.slot_capacity() <= 4,
            "slot arena leaked: {} slots for 3 pending events",
            q.slot_capacity()
        );
    }

    #[test]
    fn wait_map_wakes_overlapping_waiters_in_id_order() {
        let mut w = WaitMap::new();
        w.park(2, [(0, 100, 10)]);
        w.park(0, [(0, 105, 1), (1, 0, 4)]);
        w.park(1, [(0, 200, 8)]);
        // Touch [104, 108) on tile 0: hits waiters 2 and 0, not 1.
        let woken = w.wake_overlapping(0, 104, 4);
        assert_eq!(woken, vec![0, 2]);
        // Waiter 0's tile-1 entry went with it.
        assert!(!w.is_parked(0));
        assert!(w.is_parked(1));
        assert_eq!(w.waiter_count(), 1);
    }

    #[test]
    fn wait_map_respects_domain_and_bounds() {
        let mut w = WaitMap::new();
        w.park(7, [(3, 50, 10)]);
        assert!(w.wake_overlapping(2, 50, 10).is_empty(), "wrong domain");
        assert!(
            w.wake_overlapping(3, 60, 5).is_empty(),
            "adjacent, no overlap"
        );
        assert!(w.wake_overlapping(3, 40, 10).is_empty(), "ends at start");
        assert_eq!(w.wake_overlapping(3, 59, 1), vec![7]);
        assert!(w.is_empty());
    }

    #[test]
    fn wait_map_zero_length_touch_wakes_nothing() {
        let mut w = WaitMap::new();
        w.park(1, [(0, 10, 4)]);
        assert!(w.wake_overlapping(0, 10, 0).is_empty());
        assert!(w.is_parked(1));
    }

    #[test]
    #[should_panic(expected = "parked twice")]
    fn double_park_panics() {
        let mut w = WaitMap::new();
        w.park(4, [(0, 0, 1)]);
        w.park(4, [(0, 8, 1)]);
    }

    #[test]
    fn watchdog_unarmed_never_expires() {
        let w = Watchdog::unarmed();
        assert!(!w.expired(u64::MAX));
        assert_eq!(w.budget(), None);
    }

    #[test]
    fn watchdog_armed_expires_strictly_past_budget() {
        let w = Watchdog::armed(100);
        assert!(!w.expired(99));
        assert!(!w.expired(100), "dispatch at the budget cycle is allowed");
        assert!(w.expired(101));
        assert_eq!(w.budget(), Some(100));
    }

    #[test]
    fn busy_tracker_measures_utilization() {
        let mut b = BusyTracker::new(100);
        b.add(25.0);
        b.add(25.0);
        assert!((b.utilization(200) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn busy_tracker_reset_discards_history() {
        let mut b = BusyTracker::new(0);
        b.add(1000.0);
        b.reset(1000);
        assert_eq!(b.busy(), 0.0);
        b.add(10.0);
        assert!((b.utilization(1100) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_window_is_zero_utilization() {
        let b = BusyTracker::new(50);
        assert_eq!(b.utilization(50), 0.0);
    }

    #[test]
    fn utilization_is_finite_when_now_precedes_window() {
        let mut b = BusyTracker::new(100);
        b.add(40.0);
        // `now` before the window start: elapsed saturates to 0, and the
        // accumulated busy time must not turn that into inf or NaN.
        assert_eq!(b.utilization(50), 0.0);
        assert_eq!(b.utilization(100), 0.0);
    }

    #[test]
    fn utilization_clamps_busy_exceeding_elapsed() {
        let mut b = BusyTracker::new(0);
        // Double-charged busy time (e.g. two resources folded into one
        // tracker) must cap at 100%, not report >1.
        b.add(300.0);
        assert_eq!(b.utilization(100), 1.0);
    }

    #[test]
    fn push_after_saturates_near_cycle_max() {
        // Regression: a far-future back-off delay near Cycle::MAX must
        // saturate, not wrap into the past and panic.
        let mut q = EventQueue::new();
        q.push(10, "tick");
        q.pop();
        q.push_after(Cycle::MAX - 5, "far");
        assert_eq!(q.pop(), Some((Cycle::MAX, "far")));
        // And again from the saturated point itself.
        q.push_after(Cycle::MAX, "edge");
        assert_eq!(q.pop(), Some((Cycle::MAX, "edge")));
    }
}
