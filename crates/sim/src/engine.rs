//! Discrete-event simulation core shared by both simulators:
//! a monotonic event queue and busy-time resource accounting.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulation time in cycles.
pub type Cycle = u64;

/// A monotonic event queue: events pop in time order; ties pop in push
/// order (deterministic replay).
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(Cycle, u64, usize)>>,
    events: Vec<Option<E>>,
    seq: u64,
    now: Cycle,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time 0.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            events: Vec::new(),
            seq: 0,
            now: 0,
        }
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (before the last popped event).
    pub fn push(&mut self, at: Cycle, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < {}",
            self.now
        );
        let idx = self.events.len();
        self.events.push(Some(event));
        self.heap.push(Reverse((at, self.seq, idx)));
        self.seq += 1;
    }

    /// Schedules `event` `delay` cycles from now.
    pub fn push_after(&mut self, delay: Cycle, event: E) {
        let at = self.now.saturating_add(delay);
        self.push(at, event);
    }

    /// Pops the next event, advancing time.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        let Reverse((at, _, idx)) = self.heap.pop()?;
        self.now = at;
        let event = self.events[idx].take().expect("event popped once");
        Some((at, event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Busy-time accounting for one resource (a PE array, an SFU pool, a link
/// class): accumulates busy cycles and reports utilization over a window.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BusyTracker {
    busy: f64,
    window_start: Cycle,
}

impl BusyTracker {
    /// A fresh tracker with its window starting at `start`.
    pub fn new(start: Cycle) -> Self {
        Self {
            busy: 0.0,
            window_start: start,
        }
    }

    /// Records `cycles` of busy time (fractional cycles allowed — a
    /// resource serving at partial width accumulates partial busy time).
    pub fn add(&mut self, cycles: f64) {
        debug_assert!(cycles >= 0.0, "negative busy time");
        self.busy += cycles;
    }

    /// Accumulated busy cycles.
    pub fn busy(&self) -> f64 {
        self.busy
    }

    /// Utilization over `[window_start, now]`; 0 for an empty window.
    pub fn utilization(&self, now: Cycle) -> f64 {
        let elapsed = now.saturating_sub(self.window_start);
        if elapsed == 0 {
            0.0
        } else {
            self.busy / elapsed as f64
        }
    }

    /// Restarts the measurement window at `now`, discarding history
    /// (used to skip pipeline warm-up).
    pub fn reset(&mut self, now: Cycle) {
        self.busy = 0.0;
        self.window_start = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, "c");
        q.push(10, "a");
        q.push(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_pop_in_push_order() {
        let mut q = EventQueue::new();
        q.push(5, 1);
        q.push(5, 2);
        q.push(5, 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.push(7, ());
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 7);
        q.push_after(3, ());
        assert_eq!(q.pop(), Some((10, ())));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.push(10, ());
        q.pop();
        q.push(5, ());
    }

    #[test]
    fn busy_tracker_measures_utilization() {
        let mut b = BusyTracker::new(100);
        b.add(25.0);
        b.add(25.0);
        assert!((b.utilization(200) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn busy_tracker_reset_discards_history() {
        let mut b = BusyTracker::new(0);
        b.add(1000.0);
        b.reset(1000);
        assert_eq!(b.busy(), 0.0);
        b.add(10.0);
        assert!((b.utilization(1100) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_window_is_zero_utilization() {
        let b = BusyTracker::new(50);
        assert_eq!(b.utilization(50), 0.0);
    }
}
