//! Functional ISA simulator: executes compiled ScaleDeep programs
//! bit-accurately, one thread per compiled per-layer program,
//! synchronized purely by hardware data-flow trackers (paper §3.2.4).
//!
//! Scheduling runs on the shared discrete-event engine
//! ([`crate::engine`]): each instruction dispatch is an event priced by
//! the [`CycleCosts`] table (derived from the §3.2 tile parameters), so a
//! run yields a cycle count ([`RunStats::cycles`]) alongside the
//! bit-accurate memory state. A thread whose operands fail the MEMTRACK
//! readiness check parks once on the awaited address ranges and is
//! re-dispatched only by the tracker update that touches them — there is
//! no polling. The retired round-robin scheduler survives as
//! [`Machine::run_round_robin`], a timing-free oracle used by the
//! schedule-independence tests.

mod cost;
mod exec;
mod machine;
mod tracker;

pub use cost::CycleCosts;
pub use machine::{Machine, RunStats, TileStats};
pub use tracker::{Tracker, TrackerTable};

use crate::error::{Error, Result};
use crate::fault::FaultPlan;
use scaledeep_trace::{MetricsRegistry, TraceSink, Tracer};

use scaledeep_compiler::codegen::{
    conv_grads_to_output_major, conv_weights_to_input_major, fc_weights_transpose, BufferLoc,
    CompiledNetwork,
};
use scaledeep_compiler::CompiledArtifact;
use scaledeep_dnn::{Layer, LayerId, Network};
use scaledeep_isa::LoweredProgram;
use scaledeep_tensor::Executor;

/// Which execution tier dispatches a [`FuncSim`] run.
///
/// Both tiers share the event-driven scheduler, the tracker semantics and
/// the arithmetic kernels, so results, [`RunStats`] and trace events are
/// bit-identical; they differ only in per-dispatch decode work. The
/// interpreter is the oracle the compiled tier is cross-checked against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecBackend {
    /// Re-decode each [`scaledeep_isa::Inst`] on every dispatch (the
    /// original tier; bit-identity oracle).
    #[default]
    Interpreter,
    /// Dispatch pre-lowered micro-op streams
    /// ([`scaledeep_isa::LoweredProgram`]) produced by the compiler's
    /// `lower` phase.
    Compiled,
}

impl ExecBackend {
    /// Stable lowercase name (`"interpreter"` / `"compiled"`), used in
    /// CLI flags and BENCH JSON.
    pub fn name(self) -> &'static str {
        match self {
            ExecBackend::Interpreter => "interpreter",
            ExecBackend::Compiled => "compiled",
        }
    }

    /// Parses [`ExecBackend::name`] output.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "interpreter" => Some(ExecBackend::Interpreter),
            "compiled" => Some(ExecBackend::Compiled),
            _ => None,
        }
    }
}

/// A host-side snapshot of the learning state: per-layer weights, FC
/// weight transposes, and accumulated weight gradients, in their *raw*
/// compiled layouts.
///
/// Those layouts (input-major CONV kernels, row-major FC + transpose) are
/// a property of the network, not of the tile placement — a degraded
/// recompile moves buffers to different tiles/offsets but never changes
/// their element order. A checkpoint taken on one [`FuncSim`] therefore
/// restores onto a simulator built from a *different* (remapped) compile
/// of the same network, which is exactly the failure-recovery path:
/// checkpoint, remap around the dead tile, rebuild, restore, retry.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    layers: Vec<LayerCheckpoint>,
}

#[derive(Debug, Clone, Default, PartialEq)]
struct LayerCheckpoint {
    weights: Option<Vec<f32>>,
    weights_t: Option<Vec<f32>>,
    wgrad: Option<Vec<f32>>,
}

/// Host harness around the [`Machine`]: loads a [`CompiledNetwork`],
/// manages per-image buffer hygiene (zeroing error/gradient state the way
/// the host runtime would), imports parameters from a reference
/// [`Executor`], and applies the end-of-minibatch SGD update.
///
/// ```no_run
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use scaledeep_arch::presets;
/// use scaledeep_compiler::pipeline::{compile, CompileOptions};
/// use scaledeep_dnn::{Conv, Fc, FeatureShape, NetworkBuilder, Activation};
/// use scaledeep_sim::func::FuncSim;
/// use scaledeep_tensor::{Executor, Tensor};
///
/// let mut b = NetworkBuilder::new("toy", FeatureShape::new(1, 6, 6));
/// let c = b.conv("c", Conv { out_features: 2, kernel: 3, stride: 1, pad: 1,
///     groups: 1, bias: false, activation: Activation::Relu })?;
/// let f = b.fc_from("f", c, Fc { out_neurons: 3, bias: false,
///     activation: Activation::None })?;
/// let net = b.finish_with_loss(f)?;
///
/// let node = presets::single_precision();
/// let artifact = compile(&node, &net, &CompileOptions::default())?;
/// let reference = Executor::new(&net, 7)?;
/// let mut sim = FuncSim::from_artifact(&net, &artifact)?;
/// sim.import_params(&reference)?;
/// let x = Tensor::zeros(FeatureShape::new(1, 6, 6));
/// let golden = Tensor::zeros(FeatureShape::vector(3));
/// sim.run_iteration(x.as_slice(), golden.as_slice())?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FuncSim {
    net: Network,
    compiled: CompiledNetwork,
    lowered: Vec<LoweredProgram>,
    backend: ExecBackend,
    machine: Machine,
    capacity: u32,
}

impl FuncSim {
    /// Builds the simulator for a compiled network, sizing scratchpads to
    /// fit the compiled layout.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Setup`] when the compiled layout is inconsistent
    /// with the network.
    pub fn new(net: &Network, compiled: &CompiledNetwork) -> Result<Self> {
        if compiled.buffers.len() != net.len() {
            return Err(Error::Setup {
                detail: format!(
                    "compiled network has {} layers, graph has {}",
                    compiled.buffers.len(),
                    net.len()
                ),
            });
        }
        // Capacity: the highest end offset across all buffers.
        let mut capacity: u32 = 1;
        let mut scan = |b: Option<BufferLoc>| {
            if let Some(b) = b {
                capacity = capacity.max(b.offset + b.len);
            }
        };
        for lb in &compiled.buffers {
            scan(lb.output);
            scan(lb.pre);
            scan(lb.err);
            scan(lb.dz);
            scan(lb.weights);
            scan(lb.weights_t);
            scan(lb.wgrad);
            scan(lb.golden);
        }
        scan(Some(compiled.const_neg_one));
        scan(compiled.zeros);
        // The looped target's epoch token and scratch are single elements
        // allocated right after the zeros region; covering two extra slots
        // on every tile keeps them in range regardless of rotation.
        capacity += 2;
        let machine = Machine::new(compiled.mem_tiles, capacity);
        // Lower eagerly: one mechanical pass per program, so tier
        // switches never recompile and the compiled tier is always
        // available.
        let lowered = compiled
            .programs
            .iter()
            .map(scaledeep_isa::micro::lower)
            .collect();
        let mut sim = Self {
            net: net.clone(),
            compiled: compiled.clone(),
            lowered,
            backend: ExecBackend::default(),
            machine,
            capacity,
        };
        sim.write_buffer(compiled.const_neg_one, &[-1.0])?;
        Ok(sim)
    }

    /// Builds the simulator from a pipeline [`CompiledArtifact`] — the
    /// preferred construction path: sessions compile once and every
    /// consumer (perf, functional, traced) reads the same artifact. When
    /// the artifact carries the lower phase's micro-op streams they are
    /// used directly instead of re-lowering.
    ///
    /// # Errors
    ///
    /// Propagates the artifact's codegen-phase verdict when the network
    /// has no functional compilation (as [`Error::Compiler`]), plus
    /// [`FuncSim::new`]'s setup errors.
    pub fn from_artifact(net: &Network, artifact: &CompiledArtifact) -> Result<Self> {
        let compiled = artifact.functional().map_err(Error::Compiler)?;
        let mut sim = Self::new(net, compiled)?;
        if let Some(lowered) = artifact.lowered() {
            sim.lowered = lowered.to_vec();
        }
        Ok(sim)
    }

    /// Selects the execution tier for subsequent runs.
    pub fn set_backend(&mut self, backend: ExecBackend) {
        self.backend = backend;
    }

    /// Builder-style [`FuncSim::set_backend`].
    #[must_use]
    pub fn with_backend(mut self, backend: ExecBackend) -> Self {
        self.backend = backend;
        self
    }

    /// The currently selected execution tier.
    pub fn backend(&self) -> ExecBackend {
        self.backend
    }

    /// Scratchpad capacity per tile, in elements.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Writes raw data into a buffer.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Setup`] on length mismatch.
    pub fn write_buffer(&mut self, loc: BufferLoc, data: &[f32]) -> Result<()> {
        if data.len() != loc.len as usize {
            return Err(Error::Setup {
                detail: format!("buffer length {} != data length {}", loc.len, data.len()),
            });
        }
        self.machine.mem_mut(loc.tile)[loc.offset as usize..(loc.offset + loc.len) as usize]
            .copy_from_slice(data);
        Ok(())
    }

    /// Reads a buffer's contents.
    pub fn read_buffer(&self, loc: BufferLoc) -> Vec<f32> {
        self.machine.mem(loc.tile)[loc.offset as usize..(loc.offset + loc.len) as usize].to_vec()
    }

    /// Imports weights from the reference executor, converting to the
    /// compiled layouts (input-major CONV kernels, FC row-major + its
    /// transpose).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Setup`] when a parameterized layer lacks reference
    /// parameters.
    pub fn import_params(&mut self, reference: &Executor) -> Result<()> {
        let ids: Vec<LayerId> = self.net.layers().map(|n| n.id()).collect();
        for id in ids {
            let node = self.net.node(id).clone();
            let buffers = self.compiled.buffers[id.index()];
            match node.layer() {
                Layer::Conv(c) => {
                    let (w, _) = reference.params(id).ok_or_else(|| Error::Setup {
                        detail: format!("no reference params for {}", node.name()),
                    })?;
                    let in_shape = self.net.input_shapes(id)[0];
                    let im = conv_weights_to_input_major(
                        w,
                        in_shape.features,
                        c.out_features,
                        c.groups,
                        c.kernel,
                    );
                    let loc = buffers.weights.expect("conv weights allocated");
                    self.write_buffer(loc, &im)?;
                }
                Layer::Fc(f) => {
                    let (w, _) = reference.params(id).ok_or_else(|| Error::Setup {
                        detail: format!("no reference params for {}", node.name()),
                    })?;
                    let n_in = self.net.fan_in_elems(id);
                    self.write_buffer(buffers.weights.expect("fc weights"), w)?;
                    let wt = fc_weights_transpose(w, n_in, f.out_neurons);
                    self.write_buffer(buffers.weights_t.expect("fc weights_t"), &wt)?;
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Zeroes the per-image state: error and dz buffers (errors accumulate
    /// from multiple consumers) and shortcut outputs (whose padding
    /// features must read as zero).
    fn clear_image_state(&mut self) {
        let net = self.net.clone();
        for node in net.layers() {
            let b = self.compiled.buffers[node.id().index()];
            for loc in [b.err, b.dz].into_iter().flatten() {
                self.machine.mem_mut(loc.tile)
                    [loc.offset as usize..(loc.offset + loc.len) as usize]
                    .fill(0.0);
            }
            if matches!(node.layer(), Layer::Shortcut { .. }) {
                if let Some(loc) = b.output {
                    self.machine.mem_mut(loc.tile)
                        [loc.offset as usize..(loc.offset + loc.len) as usize]
                        .fill(0.0);
                }
            }
        }
    }

    /// Zeroes all weight-gradient accumulators (start of a minibatch).
    pub fn clear_gradients(&mut self) {
        for b in self.compiled.buffers.clone() {
            if let Some(loc) = b.wgrad {
                self.machine.mem_mut(loc.tile)
                    [loc.offset as usize..(loc.offset + loc.len) as usize]
                    .fill(0.0);
            }
        }
    }

    /// Runs one full training iteration (FP + BP + WG) for one image:
    /// loads the image and golden output, arms the data-flow trackers,
    /// launches every compiled program concurrently and runs to
    /// completion. Weight gradients accumulate across calls.
    ///
    /// # Errors
    ///
    /// Propagates machine faults ([`Error::Deadlock`],
    /// [`Error::OutOfBounds`], ...).
    pub fn run_iteration(&mut self, image: &[f32], golden: &[f32]) -> Result<RunStats> {
        self.run_iteration_faulted(image, golden, &FaultPlan::none())
    }

    /// Shared per-iteration setup: clears per-image state and loads the
    /// image and golden output into their compiled buffers.
    fn prepare_iteration(&mut self, image: &[f32], golden: &[f32]) -> Result<()> {
        if self.compiled.minibatch != 1 {
            return Err(Error::Setup {
                detail: "network compiled for a looped minibatch; use run_minibatch".into(),
            });
        }
        self.clear_image_state();
        let input_loc = self.compiled.buffers[self.net.input().id().index()]
            .output
            .ok_or_else(|| Error::Setup {
                detail: "input layer has no output buffer".into(),
            })?;
        self.write_buffer(input_loc, image)?;
        let loss_node = self
            .net
            .layers()
            .find(|n| matches!(n.layer(), Layer::Loss))
            .ok_or_else(|| Error::Setup {
                detail: "network has no loss head; use run_evaluation".into(),
            })?;
        let golden_loc = self.compiled.buffers[loss_node.id().index()]
            .golden
            .expect("loss has golden buffer");
        self.write_buffer(golden_loc, golden)
    }

    /// [`FuncSim::run_iteration`] under a [`FaultPlan`] (see
    /// [`Machine::run_faulted`] for the fault semantics). With the empty
    /// plan this is bit-identical to `run_iteration`.
    ///
    /// # Errors
    ///
    /// See [`FuncSim::run_iteration`], plus
    /// [`Error::TileFailed`](crate::Error::TileFailed) and
    /// [`Error::Watchdog`](crate::Error::Watchdog) from injected faults.
    pub fn run_iteration_faulted(
        &mut self,
        image: &[f32],
        golden: &[f32],
        plan: &FaultPlan,
    ) -> Result<RunStats> {
        let mut tracer = Tracer::disabled();
        let mut reg = MetricsRegistry::new();
        self.run_iteration_traced(image, golden, plan, &mut tracer, &mut reg)
    }

    /// Dispatches every compiled program through the selected
    /// [`ExecBackend`].
    fn dispatch_all<S: TraceSink>(
        &mut self,
        plan: &FaultPlan,
        tracer: &mut Tracer<S>,
        reg: &mut MetricsRegistry,
    ) -> Result<RunStats> {
        let costs = CycleCosts::default();
        match self.backend {
            ExecBackend::Interpreter => self.machine.run_traced(
                &self.compiled.programs,
                &self.compiled.trackers,
                &costs,
                plan,
                tracer,
                reg,
            ),
            ExecBackend::Compiled => self.machine.run_lowered_traced(
                &self.lowered,
                &self.compiled.trackers,
                &costs,
                plan,
                tracer,
                reg,
            ),
        }
    }

    /// [`FuncSim::run_iteration_faulted`] with observability: dispatches
    /// through [`Machine::run_traced`], emitting retire/park/wake/fault
    /// events into `tracer` and all run counters into `reg` (see
    /// [`Machine::run_traced`] for the track layout and metric names).
    ///
    /// # Errors
    ///
    /// See [`FuncSim::run_iteration_faulted`].
    pub fn run_iteration_traced<S: TraceSink>(
        &mut self,
        image: &[f32],
        golden: &[f32],
        plan: &FaultPlan,
        tracer: &mut Tracer<S>,
        reg: &mut MetricsRegistry,
    ) -> Result<RunStats> {
        self.prepare_iteration(image, golden)?;
        self.dispatch_all(plan, tracer, reg)
    }

    /// Snapshots the learning state (weights, FC transposes, gradient
    /// accumulators) in layout-invariant raw form; see [`Checkpoint`].
    pub fn checkpoint(&self) -> Checkpoint {
        let layers = self
            .compiled
            .buffers
            .iter()
            .map(|b| LayerCheckpoint {
                weights: b.weights.map(|loc| self.read_buffer(loc)),
                weights_t: b.weights_t.map(|loc| self.read_buffer(loc)),
                wgrad: b.wgrad.map(|loc| self.read_buffer(loc)),
            })
            .collect();
        Checkpoint { layers }
    }

    /// Restores a [`Checkpoint`] into this simulator's buffers — which
    /// may live at different tiles/offsets than where the snapshot was
    /// taken (degraded recompile).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Setup`] when the checkpoint's shape does not
    /// match this simulator's network (different layer count or buffer
    /// lengths).
    pub fn restore(&mut self, ckpt: &Checkpoint) -> Result<()> {
        if ckpt.layers.len() != self.compiled.buffers.len() {
            return Err(Error::Setup {
                detail: format!(
                    "checkpoint has {} layers, network has {}",
                    ckpt.layers.len(),
                    self.compiled.buffers.len()
                ),
            });
        }
        for (i, layer) in ckpt.layers.iter().enumerate() {
            let b = self.compiled.buffers[i];
            for (loc, data) in [
                (b.weights, &layer.weights),
                (b.weights_t, &layer.weights_t),
                (b.wgrad, &layer.wgrad),
            ] {
                match (loc, data) {
                    (Some(loc), Some(data)) => self.write_buffer(loc, data)?,
                    (None, None) => {}
                    _ => {
                        return Err(Error::Setup {
                            detail: format!("checkpoint/layout mismatch at layer {i}"),
                        })
                    }
                }
            }
        }
        Ok(())
    }

    /// Runs one full minibatch through programs compiled with a
    /// minibatch size of two or more (see
    /// [`scaledeep_compiler::pipeline::CompileOptions`]): the
    /// scalar loops inside each program iterate over the images, walking
    /// the input/golden arrays with register-indirect addressing, while
    /// the data-flow trackers' generation-wrap hands each reused buffer
    /// from producer to consumer image after image. Weight gradients
    /// accumulate across the whole batch.
    ///
    /// `images` and `goldens` hold the whole batch, concatenated.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Setup`] on length mismatches or when the network
    /// was compiled for single-image (unrolled) execution; propagates
    /// machine faults.
    pub fn run_minibatch(&mut self, images: &[f32], goldens: &[f32]) -> Result<RunStats> {
        let batch = self.compiled.minibatch;
        if batch < 2 {
            return Err(Error::Setup {
                detail: "network compiled for single images; use run_iteration".into(),
            });
        }
        let input_loc = self.compiled.buffers[self.net.input().id().index()]
            .output
            .ok_or_else(|| Error::Setup {
                detail: "input layer has no output buffer".into(),
            })?;
        if images.len() != input_loc.len as usize {
            return Err(Error::Setup {
                detail: format!(
                    "expected {} input elements ({} images), got {}",
                    input_loc.len,
                    batch,
                    images.len()
                ),
            });
        }
        self.write_buffer(input_loc, images)?;
        let loss_node = self
            .net
            .layers()
            .find(|n| matches!(n.layer(), Layer::Loss))
            .ok_or_else(|| Error::Setup {
                detail: "network has no loss head".into(),
            })?;
        let golden_loc = self.compiled.buffers[loss_node.id().index()]
            .golden
            .expect("loss has golden buffer");
        if goldens.len() != golden_loc.len as usize {
            return Err(Error::Setup {
                detail: format!(
                    "expected {} golden elements ({} images), got {}",
                    golden_loc.len,
                    batch,
                    goldens.len()
                ),
            });
        }
        self.write_buffer(golden_loc, goldens)?;
        let mut tracer = Tracer::disabled();
        let mut reg = MetricsRegistry::new();
        self.dispatch_all(&FaultPlan::none(), &mut tracer, &mut reg)
    }

    /// Runs forward propagation only (network evaluation): executes the FP
    /// programs, skipping BP/WG and the loss head.
    ///
    /// # Errors
    ///
    /// Propagates machine faults.
    pub fn run_evaluation(&mut self, image: &[f32]) -> Result<RunStats> {
        self.clear_image_state();
        let input_loc = self.compiled.buffers[self.net.input().id().index()]
            .output
            .ok_or_else(|| Error::Setup {
                detail: "input layer has no output buffer".into(),
            })?;
        self.write_buffer(input_loc, image)?;
        // The full-training tracker specs also serve FP-only runs: reads
        // become ready once all updates land, and within a single image no
        // buffer needs the (never-arriving) BP/WG reads before being
        // rewritten.
        match self.backend {
            ExecBackend::Interpreter => {
                let fp_programs: Vec<_> = self
                    .compiled
                    .programs
                    .iter()
                    .filter(|p| p.name().ends_with(".FP"))
                    .cloned()
                    .collect();
                self.machine.run(&fp_programs, &self.compiled.trackers)
            }
            ExecBackend::Compiled => {
                let fp_programs: Vec<_> = self
                    .lowered
                    .iter()
                    .filter(|p| p.name().ends_with(".FP"))
                    .cloned()
                    .collect();
                self.machine
                    .run_lowered(&fp_programs, &self.compiled.trackers)
            }
        }
    }

    /// The post-activation output of a layer after a run.
    pub fn layer_output(&self, id: LayerId) -> Option<Vec<f32>> {
        self.compiled.buffers[id.index()]
            .output
            .map(|loc| self.read_buffer(loc))
    }

    /// The accumulated error at a layer's output after a run.
    pub fn layer_error(&self, id: LayerId) -> Option<Vec<f32>> {
        self.compiled.buffers[id.index()]
            .err
            .map(|loc| self.read_buffer(loc))
    }

    /// The accumulated weight gradients of a layer, converted back to the
    /// reference executor's layout.
    pub fn layer_wgrad(&self, id: LayerId) -> Option<Vec<f32>> {
        let node = self.net.node(id);
        let loc = self.compiled.buffers[id.index()].wgrad?;
        let raw = self.read_buffer(loc);
        match node.layer() {
            Layer::Conv(c) => {
                let in_shape = self.net.input_shapes(id)[0];
                Some(conv_grads_to_output_major(
                    &raw,
                    in_shape.features,
                    c.out_features,
                    c.groups,
                    c.kernel,
                ))
            }
            _ => Some(raw),
        }
    }

    /// Applies the end-of-minibatch SGD update host-side (the paper
    /// distributes updated weights over the wheel arcs / ring after
    /// aggregating gradients): `w -= lr/batch * grad`, refreshing the FC
    /// transposed copies, then clears the gradients.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Setup`] if buffers are missing.
    pub fn apply_sgd(&mut self, lr: f32, batch: usize) -> Result<()> {
        let ids: Vec<LayerId> = self.net.layers().map(|n| n.id()).collect();
        for id in ids {
            let node = self.net.node(id).clone();
            let b = self.compiled.buffers[id.index()];
            let (Some(w_loc), Some(g_loc)) = (b.weights, b.wgrad) else {
                continue;
            };
            let mut w = self.read_buffer(w_loc);
            let g = self.read_buffer(g_loc);
            let scale = lr / batch as f32;
            for (wv, gv) in w.iter_mut().zip(&g) {
                *wv -= scale * gv;
            }
            self.write_buffer(w_loc, &w)?;
            if let Layer::Fc(f) = node.layer() {
                let n_in = self.net.fan_in_elems(id);
                let wt = fc_weights_transpose(&w, n_in, f.out_neurons);
                self.write_buffer(b.weights_t.expect("fc weights_t"), &wt)?;
            }
        }
        self.clear_gradients();
        Ok(())
    }
}
