//! Deterministic fault injection (the "what-if" layer of the simulator
//! stack).
//!
//! A [`FaultPlan`] describes, up front and reproducibly, every fault a
//! simulation run should experience:
//!
//! * **transient link errors** — a grid/wheel/ring transfer fails its CRC
//!   and is retried with exponential back-off ([`LinkFaults`], consumed by
//!   the performance pipeline);
//! * **permanent tile failures** — at a scheduled cycle a MemHeavy tile
//!   (and its CompHeavy partner) stops responding; any later access faults
//!   the run so the host can remap around the dead tile;
//! * **dropped tracker wakeups** — a MEMTRACK update's wake signal is
//!   lost, stranding parked threads (the silent-hang hazard the watchdog
//!   exists for);
//! * **scratchpad bit-flips** — a single bit of one stored f32 flips at a
//!   scheduled cycle.
//!
//! Determinism is load-bearing: the same plan against the same programs
//! produces the same fault sequence, cycle counts and memory image, so a
//! degradation curve is replayable. An **empty plan is guaranteed to be
//! behavior-preserving** — both simulators take the exact same code path
//! and produce bit-identical results to their fault-free entry points
//! (property-tested in `tests/fault_injection.rs`).

use crate::engine::Cycle;

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Simulation cycle at which the fault strikes (applied before the
    /// first dispatch at or after this cycle).
    pub at: Cycle,
    /// What breaks.
    pub kind: FaultKind,
}

/// The fault taxonomy covered by the functional machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultKind {
    /// A MemHeavy tile dies permanently: every subsequent instruction
    /// touching its scratchpad faults with
    /// [`Error::TileFailed`](crate::Error::TileFailed).
    TileFailure {
        /// The dead tile.
        tile: u16,
    },
    /// One bit of the f32 stored at `M<tile>:<addr>` flips.
    BitFlip {
        /// Scratchpad tile.
        tile: u16,
        /// Element address within the tile.
        addr: u32,
        /// Bit index (0..32; out-of-range masks to `bit % 32`).
        bit: u8,
    },
    /// The next tracker wakeup touching `tile` is silently lost: threads
    /// parked on its ranges are not re-dispatched. Without a watchdog the
    /// run ends in a deadlock report; with one, in
    /// [`Error::Watchdog`](crate::Error::Watchdog).
    DroppedWakeup {
        /// Tile whose next wake broadcast is dropped.
        tile: u16,
    },
}

/// Transient-fault model for link transfers (grid stage hand-offs, wheel
/// arcs, the ring), with bounded retry and exponential back-off.
///
/// Each transfer independently fails with probability `prob` per attempt;
/// attempt `i` (0-based) that fails costs `base_backoff << i` extra cycles
/// before the retry. Draws are counter-based (hashed from the plan seed
/// and the transfer's identity), so the fault pattern is independent of
/// event-queue ordering and identical across replays.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFaults {
    /// Per-attempt transient-failure probability in `[0, 1]`.
    pub prob: f64,
    /// Back-off of the first retry, in cycles (doubles per retry).
    pub base_backoff: Cycle,
    /// Retry budget per transfer; a transfer failing more often than this
    /// is charged the full back-off ladder and then forced through (the
    /// link-layer escalates to a stronger code rather than dropping data).
    pub max_retries: u32,
}

impl LinkFaults {
    /// Number of retries transfer `salt` suffers under `seed`: repeated
    /// per-attempt Bernoulli draws, capped at `max_retries`.
    pub fn retries(&self, seed: u64, salt: u64) -> u32 {
        if self.prob <= 0.0 {
            return 0;
        }
        let mut retries = 0;
        while retries < self.max_retries {
            let draw = hash64(seed ^ salt.rotate_left(17), u64::from(retries));
            // Top 53 bits -> uniform [0, 1).
            let u = (draw >> 11) as f64 / (1u64 << 53) as f64;
            if u >= self.prob {
                break;
            }
            retries += 1;
        }
        retries
    }

    /// Total extra latency of `retries` exponentially backed-off retries:
    /// `base + 2*base + ... = base * (2^retries - 1)`, saturating.
    pub fn backoff_cycles(&self, retries: u32) -> Cycle {
        if retries == 0 {
            return 0;
        }
        let ladder = 1u64
            .checked_shl(retries)
            .map_or(u64::MAX, |p| p.saturating_sub(1));
        self.base_backoff.saturating_mul(ladder)
    }
}

/// SplitMix64-style counter hash: deterministic, order-independent draws.
fn hash64(seed: u64, counter: u64) -> u64 {
    let mut z = seed
        .wrapping_add(counter.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A complete, seeded fault schedule for one simulation run.
///
/// ```
/// use scaledeep_sim::fault::{FaultKind, FaultPlan};
///
/// let plan = FaultPlan::seeded(42)
///     .with_watchdog(1_000_000)
///     .with_fault(200, FaultKind::BitFlip { tile: 0, addr: 16, bit: 23 })
///     .with_fault(500, FaultKind::TileFailure { tile: 3 });
/// assert_eq!(plan.events().len(), 2);
/// assert!(!plan.is_empty());
/// assert!(FaultPlan::none().is_empty());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    events: Vec<FaultEvent>,
    link: Option<LinkFaults>,
    watchdog: Option<Cycle>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// The empty plan: injects nothing, guarantees bit-identical behavior
    /// to the fault-free entry points.
    pub fn none() -> Self {
        Self::seeded(0)
    }

    /// An empty plan carrying `seed` for the stochastic models
    /// ([`LinkFaults`] draws).
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            events: Vec::new(),
            link: None,
            watchdog: None,
        }
    }

    /// Adds one scheduled fault (kept sorted by cycle; ties keep insertion
    /// order).
    #[must_use]
    pub fn with_fault(mut self, at: Cycle, kind: FaultKind) -> Self {
        let pos = self.events.partition_point(|e| e.at <= at);
        self.events.insert(pos, FaultEvent { at, kind });
        self
    }

    /// Enables the transient link-error model.
    #[must_use]
    pub fn with_link_faults(mut self, link: LinkFaults) -> Self {
        self.link = Some(link);
        self
    }

    /// Arms the watchdog fuse: a run still active past `max_cycles`
    /// terminates with [`Error::Watchdog`](crate::Error::Watchdog) and
    /// per-thread parked-range diagnostics instead of hanging.
    #[must_use]
    pub fn with_watchdog(mut self, max_cycles: Cycle) -> Self {
        self.watchdog = Some(max_cycles);
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Scheduled fault events, sorted by cycle.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The transient link-error model, if enabled.
    pub fn link_faults(&self) -> Option<&LinkFaults> {
        self.link.as_ref()
    }

    /// The watchdog budget, if armed.
    pub fn watchdog(&self) -> Option<Cycle> {
        self.watchdog
    }

    /// True when the plan injects nothing and arms no watchdog: the
    /// behavior-preserving identity plan.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.link.is_none() && self.watchdog.is_none()
    }

    /// A copy with every [`FaultKind::TileFailure`] removed — the plan to
    /// re-run a faulted iteration under after the host remapped around the
    /// dead tiles (re-injecting a failure for a tile nothing maps to
    /// would be meaningless).
    #[must_use]
    pub fn without_tile_failures(&self) -> Self {
        let mut plan = self.clone();
        plan.events
            .retain(|e| !matches!(e.kind, FaultKind::TileFailure { .. }));
        plan
    }

    /// Tiles condemned by this plan's permanent failures, in schedule
    /// order.
    pub fn condemned_tiles(&self) -> Vec<u16> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::TileFailure { tile } => Some(tile),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::none().is_empty());
        assert!(FaultPlan::seeded(7).is_empty());
        assert!(!FaultPlan::none().with_watchdog(10).is_empty());
    }

    #[test]
    fn events_stay_sorted_by_cycle() {
        let plan = FaultPlan::seeded(1)
            .with_fault(50, FaultKind::TileFailure { tile: 1 })
            .with_fault(
                10,
                FaultKind::BitFlip {
                    tile: 0,
                    addr: 0,
                    bit: 0,
                },
            )
            .with_fault(50, FaultKind::DroppedWakeup { tile: 2 });
        let cycles: Vec<Cycle> = plan.events().iter().map(|e| e.at).collect();
        assert_eq!(cycles, vec![10, 50, 50]);
        // Tie keeps insertion order.
        assert_eq!(
            plan.events()[1].kind,
            FaultKind::TileFailure { tile: 1 },
            "first-inserted tie comes first"
        );
    }

    #[test]
    fn link_retries_are_deterministic_and_seed_sensitive() {
        let f = LinkFaults {
            prob: 0.5,
            base_backoff: 10,
            max_retries: 8,
        };
        let a: Vec<u32> = (0..64).map(|s| f.retries(1, s)).collect();
        let b: Vec<u32> = (0..64).map(|s| f.retries(1, s)).collect();
        assert_eq!(a, b, "same seed, same draws");
        let c: Vec<u32> = (0..64).map(|s| f.retries(2, s)).collect();
        assert_ne!(a, c, "different seed, different pattern");
        assert!(a.iter().any(|&r| r > 0), "p=0.5 must fault sometimes");
        assert!(a.contains(&0), "p=0.5 must also succeed");
    }

    #[test]
    fn certain_faults_exhaust_the_retry_budget() {
        let f = LinkFaults {
            prob: 1.0,
            base_backoff: 4,
            max_retries: 5,
        };
        assert_eq!(f.retries(9, 0), 5);
        // 4 + 8 + 16 + 32 + 64 = 4 * (2^5 - 1).
        assert_eq!(f.backoff_cycles(5), 4 * 31);
    }

    #[test]
    fn zero_probability_never_faults() {
        let f = LinkFaults {
            prob: 0.0,
            base_backoff: 100,
            max_retries: 8,
        };
        assert!((0..1000).all(|s| f.retries(3, s) == 0));
        assert_eq!(f.backoff_cycles(0), 0);
    }

    #[test]
    fn backoff_saturates_instead_of_overflowing() {
        let f = LinkFaults {
            prob: 1.0,
            base_backoff: u64::MAX / 2,
            max_retries: 64,
        };
        assert_eq!(f.backoff_cycles(64), u64::MAX);
    }

    #[test]
    fn without_tile_failures_strips_only_tile_failures() {
        let plan = FaultPlan::seeded(1)
            .with_fault(1, FaultKind::TileFailure { tile: 0 })
            .with_fault(
                2,
                FaultKind::BitFlip {
                    tile: 0,
                    addr: 0,
                    bit: 1,
                },
            )
            .with_watchdog(99);
        assert_eq!(plan.condemned_tiles(), vec![0]);
        let stripped = plan.without_tile_failures();
        assert_eq!(stripped.events().len(), 1);
        assert!(stripped.condemned_tiles().is_empty());
        assert_eq!(stripped.watchdog(), Some(99));
    }
}
