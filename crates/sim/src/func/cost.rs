//! Per-instruction-group cycle costs for the functional machine.
//!
//! The functional simulator is bit-accurate but executes each data
//! instruction atomically; this table grounds every dispatch in cycles so
//! [`super::RunStats::cycles`] approximates the time a ScaleDeep chip
//! would take. A compiled program's thread stands for one layer *role*
//! (FP, BP or WG), which the mapper places on a chip column of tiles —
//! so rates are per column, matching the performance model's role unit:
//!
//! | group          | work unit       | rate (source, §3.2 / Figure 14)        |
//! |----------------|-----------------|----------------------------------------|
//! | ScalarControl  | 1 instruction   | 1 cycle (scalar control PE)            |
//! | DataFlowTrack  | 1 tracker arm   | 1 cycle (MEMTRACK entry write)         |
//! | CoarseData conv| MACs            | rows × CompHeavy FMA lanes (ConvLayer) |
//! | CoarseData fc  | MACs            | rows × CompHeavy FMA lanes (FcLayer)   |
//! | MemOffload     | output elements | rows × MemHeavy SFU count              |
//! | DataTransfer   | elements moved  | column CompHeavy↔MemHeavy link bytes   |
//!
//! The table is a throughput model, not a latency model: issue overheads
//! and bank conflicts are folded into the minimum cost of one cycle per
//! instruction.

use crate::engine::Cycle;
use scaledeep_arch::NodeConfig;
use scaledeep_isa::micro::CostClass;
use scaledeep_isa::{Inst, InstGroup};

/// Cycle-cost table for one chip column of CompHeavy/MemHeavy tile pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleCosts {
    /// Cycles per scalar-control instruction.
    pub scalar_cycles: Cycle,
    /// Cycles to arm one data-flow tracker.
    pub track_cycles: Cycle,
    /// Convolution multiply-accumulates retired per cycle (a ConvLayer
    /// column's FMA lanes).
    pub conv_macs_per_cycle: u64,
    /// Matrix-multiply MACs retired per cycle (an FcLayer column's FMA
    /// lanes).
    pub fc_macs_per_cycle: u64,
    /// Special-function operations retired per cycle (a column's MemHeavy
    /// SFUs).
    pub sfu_ops_per_cycle: u64,
    /// Elements moved per cycle over a column's CompHeavy↔MemHeavy links.
    pub transfer_elems_per_cycle: u64,
}

impl CycleCosts {
    /// Derives the table from a node configuration: ConvLayer-chip column
    /// rates for convolutions, SFU work and transfers, FcLayer-chip
    /// column rate for matrix multiplies.
    pub fn from_node(node: &NodeConfig) -> Self {
        let conv = &node.cluster.conv_chip;
        let fc = &node.cluster.fc_chip;
        let hz = node.frequency_mhz * 1e6;
        // Each tile pair in the column has two CompHeavy<->MemHeavy links;
        // single-precision elements are 4 bytes.
        let link_elems = (conv.comp_mem_bw / hz * (conv.rows * 2) as f64 / 4.0) as u64;
        Self {
            scalar_cycles: 1,
            track_cycles: 1,
            conv_macs_per_cycle: (conv.rows * conv.comp_heavy.total_lanes()).max(1) as u64,
            fc_macs_per_cycle: (fc.rows * fc.comp_heavy.total_lanes()).max(1) as u64,
            sfu_ops_per_cycle: (conv.rows * conv.mem_heavy.num_sfu).max(1) as u64,
            transfer_elems_per_cycle: link_elems.max(1),
        }
    }

    /// Cycles to execute `inst`, never less than one.
    pub fn cost(&self, inst: &Inst) -> Cycle {
        let per = |work: u64, rate: u64| work.div_ceil(rate.max(1)).max(1);
        match *inst {
            Inst::NdConv {
                k,
                lanes,
                out_h,
                out_w,
                ..
            } => {
                let macs = u64::from(lanes)
                    * u64::from(out_h)
                    * u64::from(out_w)
                    * u64::from(k)
                    * u64::from(k);
                per(macs, self.conv_macs_per_cycle)
            }
            Inst::MatMul { n_in, rows, .. } => {
                per(u64::from(rows) * u64::from(n_in), self.fc_macs_per_cycle)
            }
            Inst::NdActFn { len, .. }
            | Inst::NdActBwd { len, .. }
            | Inst::NdAcc { len, .. }
            | Inst::VecScaleAcc { len, .. } => per(u64::from(len), self.sfu_ops_per_cycle),
            Inst::NdSubsamp { in_h, in_w, .. } | Inst::NdUpsamp { in_h, in_w, .. } => {
                per(u64::from(in_h) * u64::from(in_w), self.sfu_ops_per_cycle)
            }
            Inst::DmaLoad { len, .. }
            | Inst::DmaStore { len, .. }
            | Inst::Prefetch { len, .. }
            | Inst::PassBuff { len, .. } => per(u64::from(len), self.transfer_elems_per_cycle),
            _ => match inst.group() {
                InstGroup::DataFlowTrack => self.track_cycles,
                _ => self.scalar_cycles,
            },
        }
    }

    /// Cycles for a pre-classified micro-op cost, never less than one.
    /// Identical pricing to [`CycleCosts::cost`] — the lowering
    /// pre-multiplies the same work amounts the instruction match would
    /// derive (pinned by the `lowered_costs_match_instruction_costs`
    /// test), so both tiers report bit-identical cycle counts.
    pub fn class_cost(&self, class: CostClass) -> Cycle {
        let per = |work: u64, rate: u64| work.div_ceil(rate.max(1)).max(1);
        match class {
            CostClass::Scalar => self.scalar_cycles,
            CostClass::Track => self.track_cycles,
            CostClass::ConvMacs(macs) => per(macs, self.conv_macs_per_cycle),
            CostClass::FcMacs(macs) => per(macs, self.fc_macs_per_cycle),
            CostClass::SfuOps(ops) => per(ops, self.sfu_ops_per_cycle),
            CostClass::TransferElems(elems) => per(elems, self.transfer_elems_per_cycle),
        }
    }
}

impl Default for CycleCosts {
    /// The baseline single-precision node of Figure 14.
    fn default() -> Self {
        Self::from_node(&scaledeep_arch::presets::single_precision())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scaledeep_isa::{MemRef, TileRef};

    #[test]
    fn default_table_matches_figure14_columns() {
        let c = CycleCosts::default();
        assert_eq!(c.conv_macs_per_cycle, 576); // 6 rows x (8x3x4) lanes
        assert_eq!(c.fc_macs_per_cycle, 192); // 6 rows x (4x8x1) lanes
        assert_eq!(c.sfu_ops_per_cycle, 192); // 6 rows x 32 SFUs
                                              // 24 GB/s / 600 MHz = 40 B/cycle per link, 12 links, 4 B/elem.
        assert_eq!(c.transfer_elems_per_cycle, 120);
    }

    #[test]
    fn matmul_cost_scales_with_macs() {
        let c = CycleCosts::default();
        let mk = |rows| Inst::MatMul {
            input: MemRef::at(TileRef(0), 0),
            n_in: 192,
            matrix: MemRef::at(TileRef(0), 0),
            rows,
            output: MemRef::at(TileRef(0), 0),
            accumulate: false,
        };
        assert_eq!(c.cost(&mk(1)), 1); // 192 MACs / 192 lanes
        assert_eq!(c.cost(&mk(10)), 10);
    }

    #[test]
    fn lowered_costs_match_instruction_costs() {
        use scaledeep_isa::micro::lower_inst;
        use scaledeep_isa::{ActKind, MicroOp, PoolMode, Reg};
        let c = CycleCosts::default();
        let m = MemRef::at(TileRef(0), 0);
        let insts = [
            Inst::NdConv {
                input: m,
                in_h: 13,
                in_w: 13,
                kernel: m,
                k: 3,
                stride: 1,
                pad: 1,
                lanes: 7,
                output: m,
                out_h: 13,
                out_w: 13,
                accumulate: false,
                flip: false,
            },
            Inst::MatMul {
                input: m,
                n_in: 300,
                matrix: m,
                rows: 17,
                output: m,
                accumulate: true,
            },
            Inst::NdActFn {
                kind: ActKind::Relu,
                src: m,
                len: 1000,
                dst: m,
            },
            Inst::NdActBwd {
                kind: ActKind::Tanh,
                pre: m,
                err: m,
                len: 77,
                dst: m,
            },
            Inst::NdSubsamp {
                mode: PoolMode::Max,
                src: m,
                in_h: 28,
                in_w: 28,
                window: 3,
                stride: 2,
                pad: 0,
                ceil: true,
                dst: m,
            },
            Inst::NdUpsamp {
                mode: PoolMode::Avg,
                err: m,
                fwd: m,
                in_h: 28,
                in_w: 28,
                window: 2,
                stride: 2,
                pad: 0,
                ceil: false,
                dst: m,
            },
            Inst::NdAcc {
                dst: m,
                src: m,
                len: 500,
            },
            Inst::VecScaleAcc {
                src: m,
                len: 33,
                scalar: m,
                dst: m,
                elementwise: false,
            },
            Inst::DmaLoad {
                src: m,
                dst: m,
                len: 1234,
                accumulate: false,
            },
            Inst::Prefetch {
                src: m,
                dst: m,
                len: 5,
            },
            Inst::MemTrack {
                tile: TileRef(0),
                addr: 0,
                len: 8,
                num_updates: 1,
                num_reads: 1,
            },
            Inst::Nop,
            Inst::Ldri {
                rd: Reg::R0,
                value: 9,
            },
            Inst::Branch { offset: 1 },
        ];
        for inst in insts {
            let class = match lower_inst(&inst) {
                MicroOp::Data(d) => d.cost,
                MicroOp::Track { .. } => CostClass::Track,
                MicroOp::Scalar(_) => CostClass::Scalar,
            };
            assert_eq!(c.cost(&inst), c.class_cost(class), "{inst}");
        }
    }

    #[test]
    fn every_instruction_costs_at_least_one_cycle() {
        let c = CycleCosts::default();
        let tiny = Inst::DmaLoad {
            src: MemRef::at(TileRef(0), 0),
            dst: MemRef::at(TileRef(0), 4),
            len: 1,
            accumulate: false,
        };
        assert_eq!(c.cost(&tiny), 1);
        assert_eq!(c.cost(&Inst::Nop), 1);
        assert_eq!(c.cost(&Inst::Halt), 1);
    }
}
