//! The tile machine: one thread per compiled program, round-robin
//! scheduled, synchronized only by the data-flow trackers.

use super::exec::{self, MemView, ScalarOutcome};
use super::tracker::TrackerTable;
use crate::error::{Error, Result};
use scaledeep_compiler::codegen::TrackerSpec;
use scaledeep_isa::{Inst, InstGroup, Program, NUM_REGS};

/// Default instruction budget per [`Machine::run`] call — a backstop
/// against runaway control flow, far above any compiled program's needs.
pub const DEFAULT_FUEL: u64 = 500_000_000;

/// Statistics from one machine run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Instructions executed (completed, not counting blocked polls).
    pub instructions: u64,
    /// Scheduler rounds taken.
    pub rounds: u64,
    /// Times a thread found an operand range not yet ready and stalled —
    /// the synchronization traffic MEMTRACK absorbs.
    pub stalls: u64,
}

struct Thread {
    program: Program,
    pc: usize,
    regs: [i64; NUM_REGS],
    halted: bool,
}

impl Thread {
    fn new(program: Program) -> Self {
        let halted = program.is_empty();
        Self {
            program,
            pc: 0,
            regs: [0; NUM_REGS],
            halted,
        }
    }
}

/// The functional machine: MemHeavy scratchpads, an external memory, the
/// tracker table, and a set of tile threads.
#[derive(Debug)]
pub struct Machine {
    mems: Vec<Vec<f32>>,
    ext: Vec<f32>,
    trackers: TrackerTable,
    fuel: u64,
}

impl Machine {
    /// A machine with `tiles` scratchpads of `capacity` f32 elements each.
    pub fn new(tiles: usize, capacity: u32) -> Self {
        Self {
            mems: vec![vec![0.0; capacity as usize]; tiles],
            ext: Vec::new(),
            trackers: TrackerTable::new(tiles),
            fuel: DEFAULT_FUEL,
        }
    }

    /// Overrides the instruction budget.
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// Sizes the external memory (elements).
    pub fn set_ext_capacity(&mut self, elems: usize) {
        self.ext.resize(elems, 0.0);
    }

    /// Read access to one tile's scratchpad.
    ///
    /// # Panics
    ///
    /// Panics when `tile` does not exist.
    pub fn mem(&self, tile: u16) -> &[f32] {
        &self.mems[tile as usize]
    }

    /// Mutable access to one tile's scratchpad (host-side setup).
    ///
    /// # Panics
    ///
    /// Panics when `tile` does not exist.
    pub fn mem_mut(&mut self, tile: u16) -> &mut [f32] {
        &mut self.mems[tile as usize]
    }

    /// External memory view.
    pub fn ext_mem(&self) -> &[f32] {
        &self.ext
    }

    /// Mutable external memory view.
    pub fn ext_mem_mut(&mut self) -> &mut Vec<f32> {
        &mut self.ext
    }

    /// Runs the given programs to completion: trackers are re-armed from
    /// `specs` (the host pre-arm; program MEMTRACK preambles then re-execute
    /// as no-ops), threads run round-robin, and the call returns when every
    /// thread halts.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Deadlock`] when no thread can progress,
    /// [`Error::ControlFault`] on fuel exhaustion or control-flow faults,
    /// and memory/tracker errors from instruction execution.
    pub fn run(&mut self, programs: &[Program], specs: &[TrackerSpec]) -> Result<RunStats> {
        self.trackers.clear();
        for s in specs {
            self.trackers
                .arm(s.tile, s.addr, s.len, s.num_updates, s.num_reads)?;
        }
        let mut threads: Vec<Thread> = programs.iter().cloned().map(Thread::new).collect();
        let mut stats = RunStats::default();
        loop {
            if threads.iter().all(|t| t.halted) {
                return Ok(stats);
            }
            stats.rounds += 1;
            let mut progressed = false;
            for t in &mut threads {
                if t.halted {
                    continue;
                }
                match Self::step(
                    &mut self.mems,
                    &mut self.ext,
                    &mut self.trackers,
                    t,
                )? {
                    StepOutcome::Executed => {
                        progressed = true;
                        stats.instructions += 1;
                        if stats.instructions > self.fuel {
                            return Err(Error::ControlFault {
                                program: t.program.name().to_string(),
                                detail: format!("fuel exhausted after {} instructions", self.fuel),
                            });
                        }
                    }
                    StepOutcome::Blocked => stats.stalls += 1,
                    StepOutcome::Halted => {
                        progressed = true;
                    }
                }
            }
            if !progressed {
                let stuck = threads
                    .iter()
                    .filter(|t| !t.halted)
                    .map(|t| t.program.name().to_string())
                    .collect();
                return Err(Error::Deadlock { stuck });
            }
        }
    }

    fn step(
        mems: &mut [Vec<f32>],
        ext: &mut Vec<f32>,
        trackers: &mut TrackerTable,
        t: &mut Thread,
    ) -> Result<StepOutcome> {
        let name = t.program.name().to_string();
        let Some(&inst) = t.program.insts().get(t.pc) else {
            return Err(Error::ControlFault {
                program: name,
                detail: format!("fell off program end at pc {}", t.pc),
            });
        };
        match inst.group() {
            InstGroup::ScalarControl => {
                match exec::execute_scalar(&inst, t.pc, &mut t.regs, &name)? {
                    ScalarOutcome::Next(pc) => {
                        if pc > t.program.len() {
                            return Err(Error::ControlFault {
                                program: name,
                                detail: format!("branch target {pc} out of range"),
                            });
                        }
                        t.pc = pc;
                        Ok(StepOutcome::Executed)
                    }
                    ScalarOutcome::Halt => {
                        t.halted = true;
                        Ok(StepOutcome::Halted)
                    }
                }
            }
            InstGroup::DataFlowTrack => {
                let (tile, addr, len, updates, reads) = match inst {
                    Inst::MemTrack {
                        tile,
                        addr,
                        len,
                        num_updates,
                        num_reads,
                    }
                    | Inst::DmaMemTrack {
                        tile,
                        addr,
                        len,
                        num_updates,
                        num_reads,
                    } => (tile, addr, len, num_updates, num_reads),
                    _ => unreachable!("group covers exactly the two track insts"),
                };
                trackers.arm(tile.0, addr, len, updates, reads)?;
                t.pc += 1;
                Ok(StepOutcome::Executed)
            }
            _ => {
                let access = exec::accesses(&inst, &t.regs, &name)?
                    .expect("data groups always resolve accesses");
                // External-memory ranges (tile u16::MAX) are host-managed
                // and untracked.
                let ready = access
                    .reads
                    .iter()
                    .filter(|r| r.0 != u16::MAX)
                    .all(|&(tile, addr, len)| trackers.read_ready(tile, addr, len))
                    && access
                        .writes
                        .iter()
                        .filter(|r| r.0 != u16::MAX)
                        .all(|&(tile, addr, len)| trackers.write_ready(tile, addr, len));
                if !ready {
                    return Ok(StepOutcome::Blocked);
                }
                {
                    let mut view = MemView { tiles: mems, ext };
                    exec::execute(&inst, &t.regs, &mut view, &name)?;
                }
                for &(tile, addr, len) in &access.reads {
                    if tile != u16::MAX {
                        trackers.record_read(tile, addr, len);
                    }
                }
                for &(tile, addr, len) in &access.writes {
                    if tile != u16::MAX {
                        trackers.record_write(tile, addr, len);
                    }
                }
                t.pc += 1;
                Ok(StepOutcome::Executed)
            }
        }
    }
}

enum StepOutcome {
    Executed,
    Blocked,
    Halted,
}

#[cfg(test)]
mod tests {
    use super::*;
    use scaledeep_isa::{Inst, MemRef, Reg, TileRef};

    fn prog(name: &str, insts: Vec<Inst>) -> Program {
        Program::new(name, insts)
    }

    #[test]
    fn single_thread_runs_to_halt() {
        let mut m = Machine::new(1, 16);
        m.mem_mut(0)[0] = 5.0;
        let p = prog(
            "t",
            vec![
                Inst::DmaLoad {
                    src: MemRef::at(TileRef(0), 0),
                    dst: MemRef::at(TileRef(0), 1),
                    len: 1,
                    accumulate: false,
                },
                Inst::Halt,
            ],
        );
        let stats = m.run(&[p], &[]).unwrap();
        assert_eq!(m.mem(0)[1], 5.0);
        assert_eq!(stats.instructions, 1);
    }

    #[test]
    fn trackers_order_producer_consumer() {
        // Producer writes [0,4) in two chunks; consumer copies [0,4) to
        // [4,8) but must observe both chunks (tracker updates=2).
        let mut m = Machine::new(1, 16);
        let producer = prog(
            "producer",
            vec![
                // Scalar detour so the consumer polls first in round 1.
                Inst::Nop,
                Inst::Nop,
                Inst::Ldri {
                    rd: Reg::R0,
                    value: 8,
                },
                Inst::DmaLoad {
                    src: MemRef::at(TileRef(0), 8),
                    dst: MemRef::at(TileRef(0), 0),
                    len: 2,
                    accumulate: false,
                },
                Inst::DmaLoad {
                    src: MemRef::at(TileRef(0), 10),
                    dst: MemRef::at(TileRef(0), 2),
                    len: 2,
                    accumulate: false,
                },
                Inst::Halt,
            ],
        );
        let consumer = prog(
            "consumer",
            vec![
                Inst::DmaLoad {
                    src: MemRef::at(TileRef(0), 0),
                    dst: MemRef::at(TileRef(0), 4),
                    len: 4,
                    accumulate: false,
                },
                Inst::Halt,
            ],
        );
        m.mem_mut(0)[8..12].copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let specs = [TrackerSpec {
            tile: 0,
            addr: 0,
            len: 4,
            num_updates: 2,
            num_reads: 1,
        }];
        let stats = m.run(&[consumer, producer], &specs).unwrap();
        assert_eq!(&m.mem(0)[4..8], &[1.0, 2.0, 3.0, 4.0]);
        assert!(stats.stalls > 0, "consumer must have stalled at least once");
    }

    #[test]
    fn deadlock_is_detected() {
        // Consumer waits for an update that never comes.
        let mut m = Machine::new(1, 8);
        let consumer = prog(
            "starved",
            vec![
                Inst::DmaLoad {
                    src: MemRef::at(TileRef(0), 0),
                    dst: MemRef::at(TileRef(0), 4),
                    len: 2,
                    accumulate: false,
                },
                Inst::Halt,
            ],
        );
        let specs = [TrackerSpec {
            tile: 0,
            addr: 0,
            len: 2,
            num_updates: 1,
            num_reads: 1,
        }];
        let err = m.run(&[consumer], &specs).unwrap_err();
        match err {
            Error::Deadlock { stuck } => assert_eq!(stuck, vec!["starved".to_string()]),
            other => panic!("expected deadlock, got {other}"),
        }
    }

    #[test]
    fn missing_halt_is_a_control_fault() {
        let mut m = Machine::new(1, 8);
        let p = prog("nohalt", vec![Inst::Nop]);
        let err = m.run(&[p], &[]).unwrap_err();
        assert!(matches!(err, Error::ControlFault { .. }));
    }

    #[test]
    fn accumulating_writers_commute() {
        // Two writers accumulate into the same range in either order; a
        // reader waits for both. Result independent of scheduling order.
        let mk_writer = |name: &str, src: u32| {
            prog(
                name,
                vec![
                    Inst::DmaStore {
                        src: MemRef::at(TileRef(0), src),
                        dst: MemRef::at(TileRef(0), 0),
                        len: 1,
                        accumulate: true,
                    },
                    Inst::Halt,
                ],
            )
        };
        let reader = prog(
            "reader",
            vec![
                Inst::DmaLoad {
                    src: MemRef::at(TileRef(0), 0),
                    dst: MemRef::at(TileRef(0), 3),
                    len: 1,
                    accumulate: false,
                },
                Inst::Halt,
            ],
        );
        let specs = [TrackerSpec {
            tile: 0,
            addr: 0,
            len: 1,
            num_updates: 2,
            num_reads: 1,
        }];
        for order in [[0usize, 1, 2], [2, 1, 0], [1, 2, 0]] {
            let mut m = Machine::new(1, 8);
            m.mem_mut(0)[1] = 10.0;
            m.mem_mut(0)[2] = 32.0;
            let progs = [mk_writer("w1", 1), mk_writer("w2", 2), reader.clone()];
            let ordered: Vec<Program> = order.iter().map(|&i| progs[i].clone()).collect();
            m.run(&ordered, &specs).unwrap();
            assert_eq!(m.mem(0)[3], 42.0, "order {order:?}");
        }
    }

    #[test]
    fn fuel_exhaustion_is_reported() {
        let mut m = Machine::new(1, 8);
        m.set_fuel(10);
        let p = prog(
            "spin",
            vec![Inst::Branch { offset: -1 }],
        );
        let err = m.run(&[p], &[]).unwrap_err();
        assert!(matches!(err, Error::ControlFault { .. }));
    }
}
